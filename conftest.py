"""Repo-level pytest configuration.

Registers the ``timeout`` marker so the live cluster acceptance tests
can declare per-test deadlines without making pytest-timeout a hard
local dependency: CI installs the plugin (and runs with a global
``--timeout``), so a hung promotion fails the job fast; a bare local
environment simply ignores the marker instead of erroring on it.
"""


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "timeout(seconds): per-test deadline, enforced when the "
        "pytest-timeout plugin is installed (CI); inert otherwise",
    )
