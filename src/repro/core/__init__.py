"""Core model of the SimFS reproduction: step arithmetic, contexts,
performance model, status objects, and the exception hierarchy."""

from repro.core.context import ContextConfig, SimulationContext
from repro.core.errors import (
    ChecksumUnavailableError,
    ConnectionLostError,
    ContextError,
    ErrorCode,
    FileNotInContextError,
    InvalidArgumentError,
    ProtocolError,
    RestartFailedError,
    SimFSError,
)
from repro.core.perfmodel import PerformanceModel, ScalingModel
from repro.core.status import AcquireRequest, FileState, Status
from repro.core.steps import StepGeometry

__all__ = [
    "AcquireRequest",
    "ChecksumUnavailableError",
    "ConnectionLostError",
    "ContextConfig",
    "ContextError",
    "ErrorCode",
    "FileNotInContextError",
    "FileState",
    "InvalidArgumentError",
    "PerformanceModel",
    "ProtocolError",
    "RestartFailedError",
    "ScalingModel",
    "SimFSError",
    "SimulationContext",
    "Status",
    "StepGeometry",
]
