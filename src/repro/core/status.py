"""Status and request objects returned by the ``SIMFS_*`` API (Sec. III-C).

``SIMFS_Acquire`` and friends return a :class:`Status` carrying the error
state (e.g. *restart failed*) and the estimated waiting time until the
requested files become available; analyses use the estimate for profiling or
to checkpoint themselves and resume later (paper Sec. III-C2).
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field

__all__ = ["FileState", "Status", "AcquireRequest"]


class FileState(enum.Enum):
    """Availability state of one requested file."""

    ON_DISK = "on_disk"          #: present in the context storage area
    SIMULATING = "simulating"    #: a re-simulation producing it is running
    QUEUED = "queued"            #: re-simulation created but not started yet
    FAILED = "failed"            #: the re-simulation job failed
    UNKNOWN = "unknown"


@dataclass
class Status:
    """Outcome of an acquire/wait/test call.

    Attributes
    ----------
    error:
        ``0`` on success; otherwise an :class:`repro.core.errors.ErrorCode`.
    estimated_wait:
        Estimated seconds until all files of the request are available
        (0.0 when everything is already on disk).
    file_states:
        Per-file availability at the time the status was produced.
    """

    error: int = 0
    estimated_wait: float = 0.0
    file_states: dict[str, FileState] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when the call succeeded."""
        return self.error == 0


@dataclass
class AcquireRequest:
    """Handle for a non-blocking acquire (``SIMFS_Acquire_nb``).

    Completion of individual files is signalled by the DVLib client through
    :meth:`mark_ready`; ``SIMFS_Wait/Test/Waitsome/Testsome`` consume it.
    The object is thread-safe: the DVLib notification listener marks files
    ready from its own thread.
    """

    filenames: list[str]
    _ready: set[str] = field(default_factory=set)
    _failed: set[str] = field(default_factory=set)
    _consumed: set[str] = field(default_factory=set)
    _cond: threading.Condition = field(default_factory=threading.Condition, repr=False)

    def mark_ready(self, filename: str) -> None:
        """Record that ``filename`` is now on disk and wake any waiter."""
        with self._cond:
            self._ready.add(filename)
            self._cond.notify_all()

    def mark_failed(self, filename: str) -> None:
        """Record that the re-simulation for ``filename`` failed."""
        with self._cond:
            self._failed.add(filename)
            self._cond.notify_all()

    @property
    def complete(self) -> bool:
        """True when every requested file is either ready or failed."""
        with self._cond:
            return self._done_locked()

    @property
    def any_failed(self) -> bool:
        with self._cond:
            return bool(self._failed)

    def ready_files(self) -> list[str]:
        """Files currently available, in request order."""
        with self._cond:
            return [f for f in self.filenames if f in self._ready]

    def wait(self, timeout: float | None = None) -> bool:
        """Block until all files are resolved; returns ``complete``."""
        with self._cond:
            self._cond.wait_for(self._done_locked, timeout=timeout)
            return self._done_locked()

    def wait_some(self, timeout: float | None = None) -> list[int]:
        """Block until at least one not-yet-consumed file resolves.

        Returns the indices (into ``filenames``) of newly resolved files and
        marks them consumed, mirroring ``SIMFS_Waitsome`` semantics.  An
        empty list means the timeout expired or everything was already
        consumed.
        """
        with self._cond:
            self._cond.wait_for(self._some_locked, timeout=timeout)
            fresh = [
                idx
                for idx, f in enumerate(self.filenames)
                if f not in self._consumed and (f in self._ready or f in self._failed)
            ]
            for idx in fresh:
                self._consumed.add(self.filenames[idx])
            return fresh

    def test_some(self) -> list[int]:
        """Non-blocking variant of :meth:`wait_some` (``SIMFS_Testsome``)."""
        with self._cond:
            fresh = [
                idx
                for idx, f in enumerate(self.filenames)
                if f not in self._consumed and (f in self._ready or f in self._failed)
            ]
            for idx in fresh:
                self._consumed.add(self.filenames[idx])
            return fresh

    # ------------------------------------------------------------------ #
    def _done_locked(self) -> bool:
        return all(f in self._ready or f in self._failed for f in self.filenames)

    def _some_locked(self) -> bool:
        if self._done_locked():
            return True
        return any(
            f not in self._consumed and (f in self._ready or f in self._failed)
            for f in self.filenames
        )
