"""Output/restart step arithmetic (paper Sec. II-A).

A forward-in-time simulation advances in *timesteps* ``t=0, 1, 2, ...``.
Two cadences are overlaid on the timestep axis:

* every ``delta_d`` timesteps the simulator emits an **output step**
  (the files analyses read), and
* every ``delta_r`` timesteps it emits a **restart step** (a checkpoint the
  simulation can be restarted from).

Output steps are indexed ``d_1, d_2, ...`` with ``d_i`` at timestep
``i * delta_d``; restart steps are indexed ``r_0, r_1, ...`` with ``r_j`` at
timestep ``j * delta_r`` (``r_0`` is the initial condition, always available).

To (re)produce output step ``d_i`` the simulation restarts from the closest
previous restart step ``R(d_i) = floor(i*delta_d / delta_r)`` and, to exploit
spatial locality, runs until at least the *next* restart step
``ceil(i*delta_d / delta_r)``.

The **miss cost** of ``d_i`` (used by the BCL/DCL replacement schemes,
Sec. III-D) is its distance, in output steps, from its closest previous
restart step.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.errors import InvalidArgumentError

__all__ = ["StepGeometry"]


@dataclass(frozen=True)
class StepGeometry:
    """Immutable description of a simulation's output/restart cadence.

    Parameters
    ----------
    delta_d:
        Number of timesteps between two consecutive output steps (``Δd``).
    delta_r:
        Number of timesteps between two consecutive restart steps (``Δr``).
    num_timesteps:
        Total length of the original simulation in timesteps, or ``None``
        for an unbounded (still running / arbitrarily long) simulation.
    """

    delta_d: int
    delta_r: int
    num_timesteps: int | None = None

    def __post_init__(self) -> None:
        if self.delta_d <= 0:
            raise InvalidArgumentError(f"delta_d must be positive, got {self.delta_d}")
        if self.delta_r <= 0:
            raise InvalidArgumentError(f"delta_r must be positive, got {self.delta_r}")
        if self.num_timesteps is not None and self.num_timesteps < 0:
            raise InvalidArgumentError(
                f"num_timesteps must be non-negative, got {self.num_timesteps}"
            )

    # ------------------------------------------------------------------ #
    # Counts
    # ------------------------------------------------------------------ #
    @property
    def num_output_steps(self) -> int:
        """``n_o = floor(n / Δd)`` — output steps of the full simulation."""
        if self.num_timesteps is None:
            raise InvalidArgumentError("geometry is unbounded (num_timesteps=None)")
        return self.num_timesteps // self.delta_d

    @property
    def num_restart_steps(self) -> int:
        """``n_r = floor(n / Δr)`` — restart steps of the full simulation.

        This counts restarts ``r_1 .. r_nr``; the initial condition ``r_0``
        exists regardless.
        """
        if self.num_timesteps is None:
            raise InvalidArgumentError("geometry is unbounded (num_timesteps=None)")
        return self.num_timesteps // self.delta_r

    @property
    def outputs_per_restart_interval(self) -> float:
        """Average number of output steps per restart interval (``Δr/Δd``)."""
        return self.delta_r / self.delta_d

    # ------------------------------------------------------------------ #
    # Index <-> timestep mapping
    # ------------------------------------------------------------------ #
    def timestep_of_output(self, i: int) -> int:
        """Timestep at which output step ``d_i`` is emitted."""
        self._check_output_index(i)
        return i * self.delta_d

    def timestep_of_restart(self, j: int) -> int:
        """Timestep at which restart step ``r_j`` is emitted."""
        if j < 0:
            raise InvalidArgumentError(f"restart index must be >= 0, got {j}")
        return j * self.delta_r

    def output_at_or_before(self, timestep: int) -> int:
        """Index of the last output step emitted at or before ``timestep``."""
        if timestep < 0:
            raise InvalidArgumentError(f"timestep must be >= 0, got {timestep}")
        return timestep // self.delta_d

    # ------------------------------------------------------------------ #
    # Restart placement (paper Sec. II-A)
    # ------------------------------------------------------------------ #
    def restart_before(self, i: int) -> int:
        """``R(d_i)``: closest restart step *strictly* before ``d_i``.

        A re-simulation producing ``d_i`` must start from ``r_{R(d_i)}``.
        The paper writes ``R(d_i) = floor(i*Δd / Δr)``; the two definitions
        differ only when ``d_i`` coincides with a restart step, where the
        paper's formula would start the simulation *at* ``d_i`` and produce
        nothing.  Production windows are exclusive of the starting
        checkpoint (a job from ``r_s`` emits outputs in ``(s*Δr, e*Δr]``,
        exactly the SIM#1/SIM#2 windows of the paper's Figs. 7-10), so the
        strictly-previous restart is the one that actually (re)produces an
        aligned output step.
        """
        self._check_output_index(i)
        return (i * self.delta_d - 1) // self.delta_r

    def restart_after(self, i: int) -> int:
        """Closest restart step at or after output step ``d_i``.

        Re-simulations run until at least this restart step to exploit
        spatial locality.  With the strictly-previous ``restart_before``
        this is always ``restart_before(i) + 1``: the canonical job spans
        exactly one restart interval.
        """
        self._check_output_index(i)
        return math.ceil(i * self.delta_d / self.delta_r)

    def is_restart_aligned(self, i: int) -> bool:
        """True if output step ``d_i`` coincides with a restart step."""
        self._check_output_index(i)
        return (i * self.delta_d) % self.delta_r == 0

    # ------------------------------------------------------------------ #
    # Re-simulation extents and costs
    # ------------------------------------------------------------------ #
    def miss_cost(self, i: int) -> int:
        """Distance, in output steps, of ``d_i`` from its previous restart.

        This is the number of output steps a re-simulation starting at
        ``r_{R(d_i)}`` must produce up to and including ``d_i``; concretely
        ``i - floor(R(d_i)*Δr / Δd)``, always in
        ``[1, ceil(Δr/Δd)]`` (producing any output step costs at least one
        output-step production, even one aligned with a restart).
        """
        self._check_output_index(i)
        restart_ts = self.restart_before(i) * self.delta_r
        return i - restart_ts // self.delta_d

    def resim_outputs(self, i: int) -> range:
        """Output-step indices produced by the canonical re-simulation of ``d_i``.

        The re-simulation runs from ``r_{R(d_i)}`` to ``r_{restart_after(i)}``
        (exactly one restart interval), emitting every output step whose
        timestep lies in that window, *excluding* outputs at or before the
        starting checkpoint.
        """
        self._check_output_index(i)
        start_r = self.restart_before(i)
        stop_r = self.restart_after(i)
        first = start_r * self.delta_r // self.delta_d + 1
        last = stop_r * self.delta_r // self.delta_d
        if self.num_timesteps is not None:
            last = min(last, self.num_output_steps)
        return range(first, last + 1)

    def resim_job_extent(self, i: int) -> tuple[int, int]:
        """(start restart index, stop restart index) of the canonical job."""
        return self.restart_before(i), self.restart_after(i)

    def outputs_between_restarts(self, start_r: int, stop_r: int) -> range:
        """Output steps produced by a job running from ``r_start`` to ``r_stop``."""
        if stop_r <= start_r:
            raise InvalidArgumentError(
                f"stop restart {stop_r} must be > start restart {start_r}"
            )
        first = start_r * self.delta_r // self.delta_d + 1
        last = stop_r * self.delta_r // self.delta_d
        if self.num_timesteps is not None:
            last = min(last, self.num_output_steps)
        return range(first, last + 1)

    def round_up_to_restart_outputs(self, n: int) -> int:
        """Round a re-simulation length ``n`` (in output steps) up to a
        whole number of restart intervals (paper Sec. IV-B1a).

        Works in timestep space so that non-divisible ``Δr/Δd`` ratios are
        handled exactly: the job spans ``ceil(n*Δd / Δr)`` restart intervals
        and the result is the number of output steps inside that span.
        """
        if n <= 0:
            raise InvalidArgumentError(f"re-simulation length must be > 0, got {n}")
        intervals = math.ceil(n * self.delta_d / self.delta_r)
        return (intervals * self.delta_r) // self.delta_d

    # ------------------------------------------------------------------ #
    def _check_output_index(self, i: int) -> None:
        if i < 1:
            raise InvalidArgumentError(f"output step index must be >= 1, got {i}")
        if self.num_timesteps is not None and i > self.num_output_steps:
            raise InvalidArgumentError(
                f"output step {i} beyond simulation end "
                f"(last is {self.num_output_steps})"
            )
