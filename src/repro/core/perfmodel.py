"""Simulation/analysis performance model (paper Sec. IV-A).

The paper deliberately keeps the model simulator-agnostic:

* ``alpha_sim(p)`` — *restart latency*: non-functional delay before a
  re-simulation starts producing output (queueing time, checkpoint read,
  model initialization), as a function of the parallelism level ``p``.
* ``tau_sim(p)`` — *inter-production time*: seconds between two consecutive
  output steps once the simulation is running.
* ``T_sim(n, p) = alpha_sim(p) + n * tau_sim(p)`` — time to simulate ``n``
  output steps.
* ``tau_cli(k)`` — analysis-side time between two consecutive ``k``-strided
  accesses.

Parallelism levels are small integers ``0 .. max_level``; the mapping from a
level to a concrete node count is simulator-specific and owned by the
simulation driver (paper Sec. III-B), which lets SimFS raise parallelism
without knowing the simulator's allocation constraints.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import InvalidArgumentError

__all__ = ["PerformanceModel", "ScalingModel"]


@dataclass(frozen=True)
class ScalingModel:
    """Strong-scaling model for ``tau_sim(p)``.

    ``tau_sim(level)`` is derived from the base inter-production time at
    level 0 with an Amdahl-style speedup over the node count the driver
    assigns to each level:

    ``tau(p) = tau0 * (serial + (1 - serial) / (nodes(p) / nodes(0)))``

    A ``serial`` fraction of 0 gives perfect scaling; 1 gives none.
    """

    serial_fraction: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 <= self.serial_fraction <= 1.0:
            raise InvalidArgumentError(
                f"serial_fraction must be in [0, 1], got {self.serial_fraction}"
            )

    def speedup(self, node_ratio: float) -> float:
        """Amdahl speedup for ``nodes(p)/nodes(0) = node_ratio``."""
        if node_ratio <= 0:
            raise InvalidArgumentError(f"node ratio must be > 0, got {node_ratio}")
        s = self.serial_fraction
        return 1.0 / (s + (1.0 - s) / node_ratio)


@dataclass(frozen=True)
class PerformanceModel:
    """Calibrated (αsim, τsim) model for one simulation context.

    Parameters
    ----------
    tau_sim:
        Inter-production time at the default parallelism level (seconds per
        output step).
    alpha_sim:
        Restart latency at the default parallelism level (seconds), not
        including batch-queue waiting time (which the batch substrate adds).
    nodes_per_level:
        Node count for each parallelism level; index 0 is the default.
        The paper's COSMO context, e.g., runs P=100 nodes at level 0.
    scaling:
        Strong-scaling model applied when the parallelism level is raised.
    alpha_scales_with_nodes:
        If True, the non-queueing part of the restart latency (checkpoint
        read, init) shrinks with the same speedup as ``tau_sim``; real
        systems often see flat or *growing* startup at scale, so the default
        keeps αsim constant across levels.
    """

    tau_sim: float
    alpha_sim: float
    nodes_per_level: tuple[int, ...] = (1,)
    scaling: ScalingModel = field(default_factory=ScalingModel)
    alpha_scales_with_nodes: bool = False

    def __post_init__(self) -> None:
        if self.tau_sim <= 0:
            raise InvalidArgumentError(f"tau_sim must be > 0, got {self.tau_sim}")
        if self.alpha_sim < 0:
            raise InvalidArgumentError(f"alpha_sim must be >= 0, got {self.alpha_sim}")
        if not self.nodes_per_level:
            raise InvalidArgumentError("nodes_per_level must not be empty")
        if any(n <= 0 for n in self.nodes_per_level):
            raise InvalidArgumentError("node counts must be positive")
        if list(self.nodes_per_level) != sorted(self.nodes_per_level):
            raise InvalidArgumentError("nodes_per_level must be non-decreasing")

    # ------------------------------------------------------------------ #
    @property
    def max_level(self) -> int:
        """Highest valid parallelism level."""
        return len(self.nodes_per_level) - 1

    def nodes(self, level: int = 0) -> int:
        """Node count used at parallelism ``level``."""
        self._check_level(level)
        return self.nodes_per_level[level]

    def tau(self, level: int = 0) -> float:
        """``tau_sim(p)`` — seconds per output step at parallelism ``level``."""
        self._check_level(level)
        if level == 0:
            return self.tau_sim
        ratio = self.nodes_per_level[level] / self.nodes_per_level[0]
        return self.tau_sim / self.scaling.speedup(ratio)

    def alpha(self, level: int = 0) -> float:
        """``alpha_sim(p)`` — restart latency at parallelism ``level``."""
        self._check_level(level)
        if level == 0 or not self.alpha_scales_with_nodes:
            return self.alpha_sim
        ratio = self.nodes_per_level[level] / self.nodes_per_level[0]
        return self.alpha_sim / self.scaling.speedup(ratio)

    def simulation_time(self, n_outputs: int, level: int = 0) -> float:
        """``T_sim(n, p) = alpha_sim(p) + n * tau_sim(p)`` (seconds)."""
        if n_outputs < 0:
            raise InvalidArgumentError(f"n_outputs must be >= 0, got {n_outputs}")
        return self.alpha(level) + n_outputs * self.tau(level)

    def next_level_is_faster(self, level: int) -> bool:
        """Whether raising parallelism beyond ``level`` still reduces τsim.

        The forward-prefetch strategy (1) keeps raising the level while this
        is true and the max level is not reached (paper Sec. IV-B1b).
        """
        if level >= self.max_level:
            return False
        return self.tau(level + 1) < self.tau(level)

    # ------------------------------------------------------------------ #
    def _check_level(self, level: int) -> None:
        if not 0 <= level <= self.max_level:
            raise InvalidArgumentError(
                f"parallelism level {level} out of range [0, {self.max_level}]"
            )
