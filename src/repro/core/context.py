"""Simulation contexts (paper Sec. II-A, *Simulation Contexts*).

A *simulation context* couples a simulator with one of its configurations:
the output/restart cadence (``Δd``, ``Δr``), the file naming convention, the
storage area (a directory with a maximum size), the cache replacement scheme,
and the prefetching parameters.  Analyses always operate within a context;
multiple contexts may share the same restart files and offer differently
grained outputs at different re-simulation speeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from repro.core.errors import InvalidArgumentError
from repro.core.perfmodel import PerformanceModel
from repro.core.steps import StepGeometry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulators.driver import SimulationDriver

__all__ = ["ContextConfig", "SimulationContext"]


@dataclass(frozen=True)
class ContextConfig:
    """Declarative configuration of a simulation context.

    This is the Python equivalent of SimFS's per-context section of the DV
    configuration file (the original uses JSON + LUA driver scripts).

    Attributes
    ----------
    name:
        Context name; analyses select a context by name (via the
        ``SIMFS_CONTEXT`` environment variable in transparent mode or the
        ``SIMFS_Init`` argument).
    delta_d / delta_r / num_timesteps:
        Output/restart cadence, see :class:`repro.core.steps.StepGeometry`.
    max_storage_bytes:
        Maximum size of the context storage area; the DV evicts output steps
        when the area would exceed it.  ``None`` disables eviction.
    replacement_policy:
        One of ``lru``, ``lirs``, ``arc``, ``bcl``, ``dcl`` (paper default:
        ``dcl``).
    smax:
        Maximum number of re-simulations of this context that may run
        concurrently (bounds prefetch strategy (2), Sec. IV-B1b / VI).
    prefetch_enabled:
        Enable prefetch agents for analyses on this context.
    prefetch_ramp_doubling:
        Start with one prefetched simulation and double per prefetch step
        instead of launching ``s_opt`` at once.  Off by default — the paper
        launches ``s_opt`` directly and offers the doubling ramp as an
        opt-in safeguard against over-prefetching (Sec. IV-B1b).
    ema_smoothing:
        Smoothing factor of the exponential moving average used to estimate
        restart latencies (Sec. IV-C1c); 1.0 keeps only the latest sample.
    default_parallelism_level:
        Parallelism level used for re-simulations unless the prefetch agent
        raises it (strategy (1)).
    output_step_bytes / restart_step_bytes:
        Nominal file sizes, used by the cost models and by the virtual-time
        mode where no real files exist.  Real mode measures actual sizes.
    """

    name: str
    delta_d: int
    delta_r: int
    num_timesteps: int | None = None
    max_storage_bytes: int | None = None
    replacement_policy: str = "dcl"
    smax: int = 8
    prefetch_enabled: bool = True
    prefetch_ramp_doubling: bool = False
    ema_smoothing: float = 0.5
    default_parallelism_level: int = 0
    output_step_bytes: int = 1
    restart_step_bytes: int = 1

    _POLICIES = ("lru", "lirs", "arc", "bcl", "dcl")

    def __post_init__(self) -> None:
        if not self.name:
            raise InvalidArgumentError("context name must be non-empty")
        if self.replacement_policy not in self._POLICIES:
            raise InvalidArgumentError(
                f"unknown replacement policy {self.replacement_policy!r}; "
                f"expected one of {self._POLICIES}"
            )
        if self.smax < 1:
            raise InvalidArgumentError(f"smax must be >= 1, got {self.smax}")
        if not 0.0 < self.ema_smoothing <= 1.0:
            raise InvalidArgumentError(
                f"ema_smoothing must be in (0, 1], got {self.ema_smoothing}"
            )
        if self.output_step_bytes <= 0 or self.restart_step_bytes <= 0:
            raise InvalidArgumentError("step sizes must be positive")
        # Validate cadence eagerly by building the geometry.
        StepGeometry(self.delta_d, self.delta_r, self.num_timesteps)

    @property
    def geometry(self) -> StepGeometry:
        """Step geometry implied by this configuration."""
        return StepGeometry(self.delta_d, self.delta_r, self.num_timesteps)

    def with_overrides(self, **kwargs) -> "ContextConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


@dataclass
class SimulationContext:
    """A live context: configuration + simulation driver + performance model.

    The DV holds one of these per registered context; DVLib clients refer to
    it by name.  ``checksums`` backs ``SIMFS_Bitrep`` (Sec. III-C2): it maps
    output file names to the checksum recorded when the *initial* simulation
    ran, populated by the ``simfs-ctl record-checksums`` utility or by the
    driver at initial-simulation time.
    """

    config: ContextConfig
    driver: "SimulationDriver"
    perf: PerformanceModel
    checksums: dict[str, str] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.config.name

    @property
    def geometry(self) -> StepGeometry:
        return self.config.geometry

    # ------------------------------------------------------------------ #
    # Naming convention (delegated to the driver, Sec. III-B)
    # ------------------------------------------------------------------ #
    def key_of(self, filename: str) -> int:
        """Monotone integer key of an output file (driver ``key`` function)."""
        return self.driver.key(filename)

    def filename_of(self, key: int) -> str:
        """Output file name for the output step with the given key."""
        return self.driver.filename(key)

    def restart_name_of(self, restart_index: int) -> str:
        """Restart file name for restart step ``r_j``."""
        return self.driver.restart_filename(restart_index)

    # ------------------------------------------------------------------ #
    def record_checksum(self, filename: str, checksum: str) -> None:
        """Record the reference checksum of ``filename`` (initial run)."""
        self.checksums[filename] = checksum

    def reference_checksum(self, filename: str) -> str | None:
        """Reference checksum of ``filename``, or ``None`` if not recorded."""
        return self.checksums.get(filename)
