"""Exception hierarchy and error codes for the SimFS reproduction.

The original SimFS C/C++ code reports errors through integer return codes
(mirroring MPI-style APIs).  The Python library raises exceptions internally
and maps them onto :class:`ErrorCode` values at the ``SIMFS_*`` API boundary
(see :mod:`repro.client.api`).
"""

from __future__ import annotations

import enum


class ErrorCode(enum.IntEnum):
    """Integer error codes returned by the C-style ``SIMFS_*`` API."""

    SUCCESS = 0
    ERR_CONTEXT = 1          #: unknown or invalid simulation context
    ERR_RESTART_FAILED = 2   #: a re-simulation job failed to start or crashed
    ERR_NOT_FOUND = 3        #: file name does not belong to the context
    ERR_PENDING = 4          #: operation still in flight (non-blocking calls)
    ERR_EVICTED = 5          #: file was produced but evicted before access
    ERR_PROTOCOL = 6         #: malformed message on the DV wire protocol
    ERR_CONNECTION = 7       #: DV daemon unreachable
    ERR_INVALID = 8          #: invalid argument
    ERR_CHECKSUM = 9         #: no reference checksum recorded for the file


#: Stable substrings of error ``detail`` strings that cross-process
#: retry logic keys on (the cluster gateway's re-attach, the clients'
#: reconnect races).  The producers — :meth:`ContextShard.client_connect`
#: / ``handle_*`` in shard.py, duplicate-hello rejection in server.py —
#: must keep these phrases in their messages; consumers must match via
#: these constants, never ad-hoc literals.
DETAIL_ALREADY_ATTACHED = "already attached"
DETAIL_NOT_ATTACHED = "not attached"
DETAIL_ALREADY_CONNECTED = "already connected"


class SimFSError(Exception):
    """Base class of all SimFS errors."""

    code: ErrorCode = ErrorCode.ERR_INVALID


class ContextError(SimFSError):
    """Raised for unknown contexts or invalid context configuration."""

    code = ErrorCode.ERR_CONTEXT


class RestartFailedError(SimFSError):
    """Raised when a re-simulation could not be started or crashed."""

    code = ErrorCode.ERR_RESTART_FAILED


class FileNotInContextError(SimFSError):
    """Raised when a file name cannot be mapped to an output step."""

    code = ErrorCode.ERR_NOT_FOUND


class ProtocolError(SimFSError):
    """Raised on malformed DV protocol messages."""

    code = ErrorCode.ERR_PROTOCOL


class ConnectionLostError(SimFSError):
    """Raised when the DV daemon connection drops."""

    code = ErrorCode.ERR_CONNECTION


class DVConnectionLost(ConnectionLostError):
    """The TCP link to a DV daemon died mid-session (socket error, peer
    crash, daemon restart).  Unlike the generic :class:`ConnectionLostError`
    (also used for handshake failures and RPC timeouts), this one means a
    previously working connection is gone — the signal the failover paths
    (:meth:`SimFSSession.reconnect`, the cluster client) key on."""


class InvalidArgumentError(SimFSError):
    """Raised on invalid user-supplied arguments."""

    code = ErrorCode.ERR_INVALID


class ChecksumUnavailableError(SimFSError):
    """Raised by ``SIMFS_Bitrep`` when no reference checksum is recorded."""

    code = ErrorCode.ERR_CHECKSUM
