"""DV wire protocol: newline-delimited JSON over TCP (paper Fig. 4).

The original SimFS exchanges control messages between DVLib and the DV over
TCP/IP; data moves through the parallel file system.  The reproduction uses
the same split with a simple framed-JSON protocol.

Client -> DV requests (each carries a ``req`` sequence number):

===========  =============================================================
``hello``    attach a client to a context (``SIMFS_Init``)
``open``     request one file (transparent open / blocking acquire)
``acquire``  request a set of files (``SIMFS_Acquire``)
``release``  drop the reference to a file (``SIMFS_Release`` / read close)
``wclose``   a *simulator* closed an output file (file-ready signal)
``bitrep``   compare a file against its recorded checksum
``finalize`` detach the client (``SIMFS_Finalize``)
``batch``    pipelined sub-ops: ``{"op": "batch", "ops": [...]}`` executes
             the listed sub-ops in order and returns their reply payloads
             as ``results`` in one frame (no nested ``batch``/``hello``)
``stats``    snapshot of the DV metrics plane (per-shard summaries plus
             every counter/gauge/histogram)
===========  =============================================================

DV -> client messages: ``reply`` (matched to ``req``) and unsolicited
``ready`` notifications for files the client waits on.
"""

from __future__ import annotations

import json
import socket
from typing import Any

from repro.core.errors import ProtocolError

__all__ = [
    "encode_message",
    "decode_message",
    "MessageReader",
    "send_message",
]

_MAX_MESSAGE = 1 << 20  # 1 MiB of JSON is far beyond any legal message


def encode_message(message: dict[str, Any]) -> bytes:
    """Serialize one protocol message to a newline-terminated JSON line."""
    if "op" not in message:
        raise ProtocolError("message missing 'op'")
    line = json.dumps(message, separators=(",", ":"), sort_keys=True)
    if "\n" in line:
        raise ProtocolError("message payload must not contain newlines")
    return line.encode("utf-8") + b"\n"


def decode_message(line: bytes) -> dict[str, Any]:
    """Parse one JSON line into a message dict."""
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed protocol line: {exc}") from exc
    if not isinstance(message, dict) or "op" not in message:
        raise ProtocolError("protocol message must be an object with 'op'")
    return message


def send_message(sock: socket.socket, message: dict[str, Any]) -> None:
    """Send one message over a connected socket."""
    sock.sendall(encode_message(message))


class MessageReader:
    """Incremental newline-framed reader over a socket."""

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._buffer = bytearray()

    def read_message(self) -> dict[str, Any] | None:
        """Read the next message; returns ``None`` on orderly EOF."""
        while True:
            newline = self._buffer.find(b"\n")
            if newline >= 0:
                line = bytes(self._buffer[:newline])
                del self._buffer[: newline + 1]
                if not line.strip():
                    continue
                return decode_message(line)
            if len(self._buffer) > _MAX_MESSAGE:
                raise ProtocolError("protocol line exceeds maximum size")
            chunk = self._sock.recv(65536)
            if not chunk:
                if self._buffer.strip():
                    raise ProtocolError("connection closed mid-message")
                return None
            self._buffer += chunk
