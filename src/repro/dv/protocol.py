"""DV wire protocol: framed messages over TCP (paper Fig. 4).

The original SimFS exchanges control messages between DVLib and the DV over
TCP/IP; data moves through the parallel file system.  The reproduction uses
the same split with two interchangeable *codecs* on the control channel:

``legacy``
    Newline-delimited JSON, one message per line.  This is the v1 wire
    format every client and server understands; it is also the format of
    the ``hello`` handshake, so codec negotiation itself never needs a
    codec.
``binary``
    Length-prefixed frames: a compact 8-byte struct header
    ``(magic, kind, reserved, payload_length)`` followed by the payload.
    The hot ops — ``open``/``release`` requests, their replies, and
    ``ready`` notifications — are packed as fixed struct layouts; every
    other message is carried as compact (non-sorted) JSON under
    ``KIND_JSON``.  No newline scanning, no key sorting, no escaping on
    the critical path.

Codec negotiation rides on ``hello``: a v2 client sends
``{"op": "hello", ..., "vers": 2, "codec": "binary"}``.  A v2 server
answers the (always-legacy) hello reply with ``"codec": "binary"`` and
both sides switch for every subsequent frame.  A v1 server ignores the
unknown fields and answers without ``codec``, so the client silently
stays on newline JSON — old and new deployments interoperate in both
directions.

Client -> DV requests (each carries a ``req`` sequence number):

===========  =============================================================
``hello``    attach a client to a context (``SIMFS_Init``); negotiates
             the wire codec via optional ``vers``/``codec`` fields
``open``     request one file (transparent open / blocking acquire)
``acquire``  request a set of files (``SIMFS_Acquire``)
``release``  drop the reference to a file (``SIMFS_Release`` / read close)
``wclose``   a *simulator* closed an output file (file-ready signal)
``bitrep``   compare a file against its recorded checksum
``finalize`` detach the client (``SIMFS_Finalize``)
``batch``    pipelined sub-ops: ``{"op": "batch", "ops": [...]}`` executes
             the listed sub-ops in order and returns their reply payloads
             as ``results`` in one frame (no nested ``batch``/``hello``)
``stats``    snapshot of the DV metrics plane (per-shard summaries plus
             every counter/gauge/histogram)
===========  =============================================================

DV -> client messages: ``reply`` (matched to ``req``) and unsolicited
``ready`` notifications for files the client waits on.

Peer-to-peer (cluster tier, :mod:`repro.cluster`) — DV daemons exchange
three additional ops over the very same wire (any codec; they travel as
JSON payloads inside the binary framing):

=============  ===========================================================
``fwd``        gateway forwarding: ``{"op": "fwd", "req": n, "origin":
               node_id, "client": client_id, "inner": {...}}`` asks the
               receiving daemon to execute ``inner`` on behalf of
               ``client`` connected at ``origin``.  Sent ingress -> owner
               for client ops; sent owner -> ingress (without ``req``)
               to route a ``ready`` notification back to the client's
               ingress node.
``fwd_reply``  the owner's answer to a ``fwd``: ``{"op": "fwd_reply",
               "req": n, "error": 0, "payload": {...}}`` where
               ``payload`` is exactly the reply body ``inner`` would
               have produced had the client been connected directly.
``gossip``     membership heartbeat: carries the sender's peer-table
               view (node ids, addresses, generations, aliveness, ring
               epoch); the receiver merges it and replies with its own
               view under ``view``.
=============  ===========================================================

Trace propagation (:mod:`repro.obs`) rides the same negotiation: a
tracing-capable peer adds ``"trace": 1`` to its ``hello`` and the server
echoes it back when it can record spans.  After that, any message may
carry a ``tc`` field — the compact trace-context wire string.  On the
legacy codec (and on binary JSON payloads) ``tc`` is just another JSON
key, so it crosses legacy peers untouched as an opaque extra field.  On
packed binary frames the kind byte gets the ``0x80`` trace bit and the
payload is prefixed with a packed 17-byte ``(trace_id, span_id, flags)``
struct; traced packed kinds are only ever sent once both sides
negotiated tracing, because v2 decoders reject unknown kinds.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any

from repro.core.errors import ProtocolError
from repro.obs.trace import TraceContext, parse_wire as _parse_trace

__all__ = [
    "PROTOCOL_VERSION",
    "CODEC_LEGACY",
    "CODEC_BINARY",
    "SUPPORTED_CODECS",
    "OP_FWD",
    "OP_FWD_REPLY",
    "OP_GOSSIP",
    "make_fwd",
    "unwrap_fwd",
    "encode_message",
    "decode_message",
    "encode_binary",
    "encode_frame",
    "encode_open_reply",
    "encode_open_request",
    "negotiate_codec",
    "negotiate_trace",
    "StreamDecoder",
    "MessageReader",
    "send_message",
]

#: Protocol version this library speaks; v2 adds codec negotiation.
PROTOCOL_VERSION = 2

CODEC_LEGACY = "legacy"
CODEC_BINARY = "binary"
SUPPORTED_CODECS = (CODEC_LEGACY, CODEC_BINARY)

_MAX_MESSAGE = 1 << 20  # 1 MiB per frame is far beyond any legal message

#: Cluster-tier op names (peer-to-peer traffic; see module docstring).
OP_FWD = "fwd"
OP_FWD_REPLY = "fwd_reply"
OP_GOSSIP = "gossip"


def make_fwd(origin: str, client_id: str, inner: dict[str, Any],
             req: Any = None) -> dict[str, Any]:
    """Wrap ``inner`` for peer-to-peer forwarding on behalf of a client.

    With ``req`` the frame is a request expecting a ``fwd_reply``;
    without it, it is a one-way routed notification (owner -> ingress
    ``ready`` delivery).
    """
    message: dict[str, Any] = {
        "op": OP_FWD, "origin": origin, "client": client_id, "inner": inner,
    }
    if req is not None:
        message["req"] = req
    return message


def unwrap_fwd(message: dict[str, Any]) -> tuple[str, str, dict[str, Any]]:
    """Validate and split a ``fwd`` frame into (origin, client, inner)."""
    origin = message.get("origin")
    client_id = message.get("client")
    inner = message.get("inner")
    if not isinstance(origin, str) or not isinstance(client_id, str):
        raise ProtocolError("fwd frame needs string 'origin' and 'client'")
    if not isinstance(inner, dict) or "op" not in inner:
        raise ProtocolError("fwd frame needs an 'inner' message with 'op'")
    if inner["op"] in (OP_FWD, "hello", "batch"):
        raise ProtocolError(f"op {inner['op']!r} cannot be forwarded")
    return origin, client_id, inner

# --------------------------------------------------------------------- #
# Legacy codec: newline-delimited JSON
# --------------------------------------------------------------------- #


def encode_message(message: dict[str, Any], canonical: bool = False) -> bytes:
    """Serialize one message to a newline-terminated JSON line.

    ``canonical=True`` sorts keys for byte-stable output (golden files,
    checksummed transcripts); the hot path skips the sort.
    """
    if "op" not in message:
        raise ProtocolError("message missing 'op'")
    line = json.dumps(message, separators=(",", ":"), sort_keys=canonical)
    if "\n" in line:
        raise ProtocolError("message payload must not contain newlines")
    return line.encode("utf-8") + b"\n"


def decode_message(line: bytes) -> dict[str, Any]:
    """Parse one JSON line into a message dict."""
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed protocol line: {exc}") from exc
    if not isinstance(message, dict) or "op" not in message:
        raise ProtocolError("protocol message must be an object with 'op'")
    return message


# --------------------------------------------------------------------- #
# Binary codec: length-prefixed frames with packed hot-op payloads
# --------------------------------------------------------------------- #

_MAGIC = 0xDF
_HEADER = struct.Struct("!BBHI")  # magic, kind, reserved, payload length

_KIND_JSON = 0        # payload: compact JSON of the whole message
_KIND_OPEN = 1        # !IHH req, len(context), len(file) + strings
_KIND_RELEASE = 2     # same layout as OPEN
_KIND_READY = 3       # !BHH ok, len(context), len(file) + strings
_KIND_OPEN_REPLY = 4  # !IBBd req, available, state index, wait
_KIND_OK_REPLY = 5    # !I   req (empty success reply)

#: Kind-byte bit marking a packed frame that carries a trace context:
#: the payload is prefixed with ``_TRACE_CTX`` and the remainder decodes
#: as the base kind.  Only sent after tracing was negotiated on hello.
_KIND_TRACED = 0x80
_TRACE_CTX = struct.Struct("!QQB")  # trace_id, span_id, flags

_REQ_STRINGS = struct.Struct("!IHH")
_READY_HDR = struct.Struct("!BHH")
_OPEN_REPLY = struct.Struct("!IBBd")
_OK_REPLY = struct.Struct("!I")

#: File states a packed open-reply can carry (index = wire byte).
_STATES = ("on_disk", "simulating", "queued", "failed", "unknown")
_STATE_INDEX = {name: idx for idx, name in enumerate(_STATES)}


def _is_req(value: Any) -> bool:
    return (
        isinstance(value, int)
        and not isinstance(value, bool)
        and 0 <= value < 1 << 32
    )


def _pack_strings(head: bytes, context: str, filename: str) -> bytes:
    return head + context.encode("utf-8") + filename.encode("utf-8")


def _pack_trace(tc: Any) -> bytes | None:
    """Packed 17-byte trace prefix, or ``None`` when ``tc`` is not a
    trace context (invalid values degrade to untraced, never an error)."""
    if isinstance(tc, str):
        tc = _parse_trace(tc)
    if not isinstance(tc, TraceContext):
        return None
    return _TRACE_CTX.pack(tc.trace_id, tc.span_id, tc.flags)


def encode_binary(message: dict[str, Any]) -> bytes:
    """Serialize one message as a binary frame.

    The hot ops get fixed struct layouts; anything else falls back to a
    JSON payload inside the binary framing.  The packed forms round-trip
    exactly (``decode`` of an ``encode`` reproduces the input dict).

    A ``tc`` trace-context field does not cost a hot op its packed form:
    the frame is packed without it and the kind byte gets the
    ``_KIND_TRACED`` bit with the packed context prefixed to the payload.
    On the JSON fallback ``tc`` simply stays an inline key.
    """
    op = message.get("op")
    if op is None:
        raise ProtocolError("message missing 'op'")
    trace = None
    if "tc" in message:
        trace = _pack_trace(message["tc"])
        if trace is not None:
            body = {k: v for k, v in message.items() if k != "tc"}
            kind, payload = _pack_payload(op, body)
            if kind == _KIND_JSON:
                trace = None  # tc rides inline in the JSON payload
            else:
                kind |= _KIND_TRACED
                payload = trace + payload
    if trace is None:
        kind, payload = _pack_payload(op, message)
    if len(payload) > _MAX_MESSAGE:
        raise ProtocolError("binary frame exceeds maximum size")
    return _HEADER.pack(_MAGIC, kind, 0, len(payload)) + payload


def _pack_payload(op: str, message: dict[str, Any]) -> tuple[int, bytes]:
    n = len(message)
    if op in ("open", "release") and n == 4:
        req = message.get("req")
        context = message.get("context")
        filename = message.get("file")
        if (
            _is_req(req)
            and isinstance(context, str)
            and isinstance(filename, str)
        ):
            ctx = context.encode("utf-8")
            fname = filename.encode("utf-8")
            if len(ctx) < 1 << 16 and len(fname) < 1 << 16:
                kind = _KIND_OPEN if op == "open" else _KIND_RELEASE
                return kind, _REQ_STRINGS.pack(req, len(ctx), len(fname)) + ctx + fname
    elif op == "ready" and n == 4:
        context = message.get("context")
        filename = message.get("file")
        ok = message.get("ok")
        if (
            isinstance(context, str)
            and isinstance(filename, str)
            and isinstance(ok, bool)
        ):
            ctx = context.encode("utf-8")
            fname = filename.encode("utf-8")
            if len(ctx) < 1 << 16 and len(fname) < 1 << 16:
                return _KIND_READY, _READY_HDR.pack(ok, len(ctx), len(fname)) + ctx + fname
    elif op == "reply" and message.get("error") == 0:
        req = message.get("req")
        if n == 3 and _is_req(req):
            return _KIND_OK_REPLY, _OK_REPLY.pack(req)
        if n == 6 and _is_req(req):
            available = message.get("available")
            state = message.get("state")
            wait = message.get("wait")
            if (
                isinstance(available, bool)
                and state in _STATE_INDEX
                and isinstance(wait, float)
            ):
                return _KIND_OPEN_REPLY, _OPEN_REPLY.pack(
                    req, available, _STATE_INDEX[state], wait
                )
    blob = json.dumps(message, separators=(",", ":")).encode("utf-8")
    return _KIND_JSON, blob


def _unpack_strings(payload: bytes, offset: int, ctx_len: int, fname_len: int
                    ) -> tuple[str, str]:
    end = offset + ctx_len + fname_len
    if end != len(payload):
        raise ProtocolError("binary frame length does not match its payload")
    try:
        context = payload[offset : offset + ctx_len].decode("utf-8")
        filename = payload[offset + ctx_len : end].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"malformed binary string: {exc}") from exc
    return context, filename


def _decode_binary_payload(kind: int, payload: bytes) -> dict[str, Any]:
    if kind & _KIND_TRACED:
        base = kind & ~_KIND_TRACED
        if base == _KIND_JSON or len(payload) < _TRACE_CTX.size:
            raise ProtocolError(f"malformed traced binary frame kind {kind}")
        tid, sid, flags = _TRACE_CTX.unpack_from(payload)
        message = _decode_binary_payload(base, payload[_TRACE_CTX.size:])
        message["tc"] = f"{tid:016x}-{sid:016x}-{flags:02x}"
        return message
    if kind == _KIND_JSON:
        try:
            message = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"malformed binary JSON payload: {exc}") from exc
        if not isinstance(message, dict) or "op" not in message:
            raise ProtocolError("protocol message must be an object with 'op'")
        return message
    try:
        if kind in (_KIND_OPEN, _KIND_RELEASE):
            req, ctx_len, fname_len = _REQ_STRINGS.unpack_from(payload)
            context, filename = _unpack_strings(
                payload, _REQ_STRINGS.size, ctx_len, fname_len
            )
            op = "open" if kind == _KIND_OPEN else "release"
            return {"op": op, "req": req, "context": context, "file": filename}
        if kind == _KIND_READY:
            ok, ctx_len, fname_len = _READY_HDR.unpack_from(payload)
            context, filename = _unpack_strings(
                payload, _READY_HDR.size, ctx_len, fname_len
            )
            return {"op": "ready", "context": context, "file": filename,
                    "ok": bool(ok)}
        if kind == _KIND_OPEN_REPLY:
            if len(payload) != _OPEN_REPLY.size:
                raise ProtocolError("binary frame length does not match its payload")
            req, available, state_idx, wait = _OPEN_REPLY.unpack(payload)
            if state_idx >= len(_STATES):
                raise ProtocolError(f"unknown file-state index {state_idx}")
            return {"op": "reply", "req": req, "error": 0,
                    "available": bool(available), "state": _STATES[state_idx],
                    "wait": wait}
        if kind == _KIND_OK_REPLY:
            if len(payload) != _OK_REPLY.size:
                raise ProtocolError("binary frame length does not match its payload")
            (req,) = _OK_REPLY.unpack(payload)
            return {"op": "reply", "req": req, "error": 0}
    except struct.error as exc:
        raise ProtocolError(f"truncated binary frame: {exc}") from exc
    raise ProtocolError(f"unknown binary frame kind {kind}")


def encode_frame(message: dict[str, Any], codec: str = CODEC_LEGACY) -> bytes:
    """Serialize one message with the given codec."""
    if codec == CODEC_BINARY:
        return encode_binary(message)
    if codec == CODEC_LEGACY:
        return encode_message(message)
    raise ProtocolError(f"unknown codec {codec!r}")


def encode_open_reply(
    req: Any, available: bool, state: str, wait: float, codec: str,
    tc: Any = None,
) -> bytes:
    """Fast path for the single hottest server frame: pack an ``open``
    reply straight from the handler result, skipping the intermediate
    message dict (and its field-by-field re-validation) entirely.

    Produces byte-identical output to ``encode_frame`` of the equivalent
    reply dict; anything unpackable falls back to the generic encoder.
    ``tc`` (only for trace-negotiated peers) prefixes the packed trace
    context and sets the traced kind bit; ``tc=None`` output is
    bit-for-bit what pre-tracing builds emitted.
    """
    if codec == CODEC_BINARY and _is_req(req):
        state_idx = _STATE_INDEX.get(state)
        if state_idx is not None:
            payload = _OPEN_REPLY.pack(req, available, state_idx, wait)
            kind = _KIND_OPEN_REPLY
            trace = _pack_trace(tc) if tc is not None else None
            if trace is not None:
                kind |= _KIND_TRACED
                payload = trace + payload
            return _HEADER.pack(_MAGIC, kind, 0, len(payload)) + payload
    message = {"op": "reply", "req": req, "error": 0, "available": available,
               "state": state, "wait": wait}
    if tc is not None:
        message["tc"] = tc if isinstance(tc, str) else tc.to_wire()
    return encode_frame(message, codec)


def encode_open_request(req: Any, context: str, filename: str, codec: str,
                        tc: Any = None) -> bytes:
    """Client-side twin of :func:`encode_open_reply`: pack an ``open``
    request straight from its fields (byte-identical to ``encode_frame``
    of the equivalent dict; falls back for unpackable values).  ``tc``
    behaves exactly as in :func:`encode_open_reply`."""
    if codec == CODEC_BINARY and _is_req(req):
        ctx = context.encode("utf-8")
        fname = filename.encode("utf-8")
        if len(ctx) < 1 << 16 and len(fname) < 1 << 16:
            payload = _REQ_STRINGS.pack(req, len(ctx), len(fname)) + ctx + fname
            kind = _KIND_OPEN
            trace = _pack_trace(tc) if tc is not None else None
            if trace is not None:
                kind |= _KIND_TRACED
                payload = trace + payload
            return _HEADER.pack(_MAGIC, kind, 0, len(payload)) + payload
    message = {"op": "open", "req": req, "context": context, "file": filename}
    if tc is not None:
        message["tc"] = tc if isinstance(tc, str) else tc.to_wire()
    return encode_frame(message, codec)


def negotiate_codec(hello: dict[str, Any]) -> str:
    """Server-side codec choice for a ``hello`` message.

    Returns :data:`CODEC_BINARY` when the client advertises protocol
    version >= 2 and asks for it; anything else stays legacy, which keeps
    v1 clients working unchanged.
    """
    try:
        vers = int(hello.get("vers", 1))
    except (TypeError, ValueError):
        return CODEC_LEGACY
    if vers >= 2 and hello.get("codec") == CODEC_BINARY:
        return CODEC_BINARY
    return CODEC_LEGACY


def negotiate_trace(hello: dict[str, Any]) -> bool:
    """Server-side tracing choice for a ``hello`` message.

    True when the client advertises protocol version >= 2 and asks for
    tracing (``"trace": 1``).  Gates the traced *packed* binary kinds
    only — JSON-carried ``tc`` fields need no negotiation.
    """
    try:
        vers = int(hello.get("vers", 1))
    except (TypeError, ValueError):
        return False
    return vers >= 2 and bool(hello.get("trace"))


# --------------------------------------------------------------------- #
# Incremental decoding
# --------------------------------------------------------------------- #


class StreamDecoder:
    """Incremental, codec-switchable frame decoder over a byte stream.

    Feed raw bytes with :meth:`feed`; pull complete messages with
    :meth:`next_message` (``None`` means more bytes are needed).  The
    buffer survives :meth:`set_codec`, so a connection can switch codecs
    mid-stream at the negotiated point (after the ``hello`` exchange).
    """

    def __init__(self, codec: str = CODEC_LEGACY) -> None:
        if codec not in SUPPORTED_CODECS:
            raise ProtocolError(f"unknown codec {codec!r}")
        self.codec = codec
        self._buffer = bytearray()
        #: Total bytes ever fed (client-side wire accounting).
        self.bytes_fed = 0

    def set_codec(self, codec: str) -> None:
        if codec not in SUPPORTED_CODECS:
            raise ProtocolError(f"unknown codec {codec!r}")
        self.codec = codec

    def feed(self, data: bytes) -> None:
        self._buffer += data
        self.bytes_fed += len(data)

    def has_partial(self) -> bool:
        """True when the buffer holds an incomplete frame (EOF here is a
        mid-message cut, not an orderly close)."""
        if self.codec == CODEC_LEGACY:
            return bool(self._buffer.strip())
        return bool(self._buffer)

    def next_message(self) -> dict[str, Any] | None:
        if self.codec == CODEC_LEGACY:
            return self._next_legacy()
        return self._next_binary()

    def _next_legacy(self) -> dict[str, Any] | None:
        while True:
            newline = self._buffer.find(b"\n")
            if newline < 0:
                if len(self._buffer) > _MAX_MESSAGE:
                    raise ProtocolError("protocol line exceeds maximum size")
                return None
            line = bytes(self._buffer[:newline])
            del self._buffer[: newline + 1]
            if not line.strip():
                continue
            return decode_message(line)

    def _next_binary(self) -> dict[str, Any] | None:
        if len(self._buffer) < _HEADER.size:
            return None
        magic, kind, _reserved, length = _HEADER.unpack_from(self._buffer)
        if magic != _MAGIC:
            raise ProtocolError(f"bad binary frame magic 0x{magic:02x}")
        if length > _MAX_MESSAGE:
            raise ProtocolError("binary frame exceeds maximum size")
        end = _HEADER.size + length
        if len(self._buffer) < end:
            return None
        payload = bytes(self._buffer[_HEADER.size : end])
        del self._buffer[:end]
        return _decode_binary_payload(kind, payload)


def send_message(
    sock: socket.socket, message: dict[str, Any], codec: str = CODEC_LEGACY
) -> None:
    """Send one message over a connected (blocking) socket."""
    sock.sendall(encode_frame(message, codec))


class MessageReader:
    """Blocking framed reader over a socket (client side and tests)."""

    def __init__(self, sock: socket.socket, codec: str = CODEC_LEGACY) -> None:
        self._sock = sock
        self._decoder = StreamDecoder(codec)

    def set_codec(self, codec: str) -> None:
        """Switch codecs at the negotiated point; buffered bytes carry over."""
        self._decoder.set_codec(codec)

    @property
    def bytes_read(self) -> int:
        """Total bytes received off the socket so far."""
        return self._decoder.bytes_fed

    def read_message(self) -> dict[str, Any] | None:
        """Read the next message; returns ``None`` on orderly EOF."""
        while True:
            message = self._decoder.next_message()
            if message is not None:
                return message
            chunk = self._sock.recv(65536)
            if not chunk:
                if self._decoder.has_partial():
                    raise ProtocolError("connection closed mid-message")
                return None
            self._decoder.feed(chunk)
