"""Executor-side forwarding gateway: the cluster ring, inside one node.

Each shard-executor process embeds an :class:`ExecutorGateway` in its
:class:`~repro.dv.server.DVServer`, wired through the same hooks the
cluster tier uses (``route_op`` / ``ready_router`` / ``hello_extra`` /
``drop_hook`` plus a registered ``fwd`` op).  The gateway holds the
executor's view of the internal :class:`~repro.cluster.ring.HashRing`
(``context name -> executor id``) and forwards ops for contexts owned by
a sibling executor over per-pair Unix-socket
:class:`~repro.cluster.link.PeerLink` channels carrying the binary wire
codec — the identical ``fwd``/``fwd_reply`` frames that cross TCP in the
cluster tier cross a socketpair-cheap AF_UNIX stream here.

Unlike a cluster node, an executor never *decides* membership: the
supervisor is the single oracle, pushing ``ctl.ring`` updates with the
authoritative executor set, socket paths and active-context list.  On a
dead sibling the gateway just retries (bounded by the RPC deadline)
until the supervisor's next update reassigns the context; stranded
forwarded waits are then replayed against the new owner exactly like the
cluster tier's dead-owner replay.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.cluster.link import PeerLink, PeerTimeout
from repro.cluster.ring import HashRing
from repro.core.context import SimulationContext
from repro.core.errors import (
    DETAIL_ALREADY_ATTACHED,
    DETAIL_NOT_ATTACHED,
    DVConnectionLost,
    ErrorCode,
    ProtocolError,
    SimFSError,
)
from repro.dv.coordinator import Notification
from repro.dv.protocol import OP_FWD, make_fwd, unwrap_fwd
from repro.dv.server import _ROUTABLE_OPS, DVServer

__all__ = ["ExecutorCatalogEntry", "ExecutorGateway"]


@dataclass
class ExecutorCatalogEntry:
    """How to activate one context on this executor (mirrors the cluster
    tier's ContextSpec; every executor ships the full catalog and
    activates only its ring-assigned slice)."""

    context: SimulationContext
    output_dir: str
    restart_dir: str
    alpha_delay: float = 0.0
    tau_delay: float = 0.0


@dataclass
class _ProxyClient:
    """Owner-side stand-in for a client whose TCP connection lives on a
    sibling executor (same shape the cluster tier uses: quacks like
    ``_ClientConn`` where op handlers care)."""

    client_id: str
    origin: str | None = None
    peer_client_id: str | None = None
    conn: object | None = None
    contexts: set[str] = field(default_factory=set)


class ExecutorGateway:
    """Ring routing + peer forwarding for one shard-executor process."""

    def __init__(
        self,
        executor_id: str,
        server: DVServer,
        catalog: dict[str, ExecutorCatalogEntry],
        vnodes: int = 32,
        rpc_timeout: float = 10.0,
        workers: int = 1,
    ) -> None:
        self.executor_id = executor_id
        self.server = server
        self.catalog = catalog
        self.rpc_timeout = rpc_timeout
        self.workers = workers
        self.ring = HashRing(vnodes)
        #: Serializes ring/paths/active/activation state; never held
        #: across a peer round trip.
        self._lock = threading.RLock()
        self._paths: dict[str, str] = {}
        self._active_view: set[str] = set()
        self._active_here: set[str] = set()
        self._links: dict[str, PeerLink] = {}
        self._links_lock = threading.Lock()
        self._proxies: dict[str, _ProxyClient] = {}
        self._ingress_ctx: dict[str, dict[str, str]] = {}
        self._pending: dict[tuple[str, str, str], str] = {}
        metrics = server.metrics
        self._m_fwd_sent = metrics.counter("mc.fwd_sent")
        self._m_fwd_recv = metrics.counter("mc.fwd_received")
        self._m_ready_routed = metrics.counter("mc.ready_routed")
        self._m_replayed = metrics.counter("mc.replayed_waits")
        self._m_epoch = metrics.gauge("mc.ring_epoch")

        server.register_op(
            OP_FWD, self._op_fwd, reply_op="fwd_reply", needs_worker=True
        )
        server.set_cluster_hooks(
            route_op=self._route_op,
            ready_router=self._ready_router,
            hello_extra=self._hello_extra,
            drop_hook=self._drop_hook,
        )

    # ------------------------------------------------------------------ #
    # Membership (supervisor-driven)
    # ------------------------------------------------------------------ #
    def apply_ring(
        self, executors: dict[str, str], active: list[str]
    ) -> tuple[list[tuple[str, str]], list[tuple[str, str, str]]]:
        """Reconcile with the supervisor's view: ``executors`` maps every
        live executor id to its Unix socket path; ``active`` is the
        node-wide set of contexts that should be served at all (the full
        catalog standalone, the cluster-owned subset in engine mode).

        Returns the re-attaches and waiter replays the caller must run
        *after* replying to the supervisor — replays forward to siblings
        that may only learn the same update moments later, so running
        them before the reply could stall a serial broadcast.
        """
        reattaches: list[tuple[str, str]] = []
        replays: list[tuple[str, str, str]] = []
        with self._lock:
            member_ids = set(executors)
            for exec_id in self.ring.nodes():
                if exec_id not in member_ids:
                    self.ring.remove_node(exec_id)
            for exec_id in sorted(member_ids):
                if exec_id not in self.ring:
                    self.ring.add_node(exec_id)
            self._paths = dict(executors)
            self._active_view = set(active)
            self._m_epoch.set(self.ring.epoch)
            for name in sorted(self.catalog):
                owned = (
                    name in self._active_view
                    and self.ring.owner(name) == self.executor_id
                )
                if owned and name not in self._active_here:
                    self._activate(name)
                elif not owned and name in self._active_here:
                    attached, waits = self._deactivate(name)
                    reattaches.extend(attached)
                    replays.extend(waits)
            # Forwarded state recorded against an executor that no longer
            # owns the context: re-register and replay with the new owner.
            for client_id, attachments in self._ingress_ctx.items():
                for context_name, owner in list(attachments.items()):
                    if self.ring.owner(context_name) != owner:
                        reattaches.append((client_id, context_name))
            for key, owner in list(self._pending.items()):
                client_id, context_name, filename = key
                if self.ring.owner(context_name) != owner:
                    replays.append((client_id, context_name, filename))
                    del self._pending[key]
        # Links to departed siblings die on their own; drop closed ones.
        with self._links_lock:
            for exec_id in list(self._links):
                if exec_id not in member_ids or self._links[exec_id].closed:
                    self._links.pop(exec_id).close()
        return reattaches, replays

    def _activate(self, name: str) -> None:
        entry = self.catalog[name]
        self.server.add_context(
            entry.context, entry.output_dir, entry.restart_dir,
            alpha_delay=entry.alpha_delay, tau_delay=entry.tau_delay,
        )
        self._active_here.add(name)

    def _deactivate(
        self, name: str
    ) -> tuple[list[tuple[str, str]], list[tuple[str, str, str]]]:
        self._active_here.discard(name)
        return self.server.coordinator.release_context(name)

    def release_for_handoff(
        self, name: str
    ) -> tuple[list[tuple[str, str]], list[tuple[str, str, str]]]:
        """Cluster engine mode: the context is leaving this *node* — give
        the captured waiters to the supervisor (which relays them to the
        cluster tier for replay at the new owning node) instead of
        replaying them internally."""
        with self._lock:
            self._active_view.discard(name)
            if name not in self._active_here:
                return [], []
            return self._deactivate(name)

    def active_contexts(self) -> list[str]:
        with self._lock:
            return sorted(self._active_here)

    # ------------------------------------------------------------------ #
    # Ingress side (this executor holds the client's TCP connection)
    # ------------------------------------------------------------------ #
    def _route_op(self, conn, message: dict) -> dict:
        inner = {k: v for k, v in message.items() if k != "req"}
        payload, owner = self._forward_routed(conn.client_id, inner)
        self._track_ingress(conn.client_id, inner, payload, owner)
        return payload

    def _track_ingress(
        self, client_id: str, inner: dict, payload: dict, owner: str
    ) -> None:
        op = inner.get("op")
        context = inner.get("context")
        if payload.get("error") or not isinstance(context, str):
            return
        with self._lock:
            if op == "attach":
                self._ingress_ctx.setdefault(client_id, {})[context] = owner
            elif op == "finalize":
                self._ingress_ctx.get(client_id, {}).pop(context, None)
            elif op == "open" and not payload.get("available"):
                self._pending[(client_id, context, inner.get("file"))] = owner
            elif op == "release":
                self._pending.pop((client_id, context, inner.get("file")), None)
            elif op == "acquire":
                for result in payload.get("results", ()):
                    if not result.get("available"):
                        key = (client_id, context, result.get("file"))
                        self._pending[key] = owner

    def _forward_routed(
        self, client_id: str, inner: dict
    ) -> tuple[dict, str]:
        """Route one op to the context's owning executor, riding out a
        dead sibling (the supervisor reassigns within a heartbeat) and
        activation lag on the new owner."""
        context = inner.get("context")
        deadline = time.monotonic() + self.rpc_timeout
        while True:
            with self._lock:
                owner = self.ring.owner(context) if context else None
                serves = (
                    isinstance(context, str)
                    and context in self.catalog
                    and context in self._active_view
                )
                if owner == self.executor_id and serves \
                        and context not in self._active_here:
                    self._activate(context)
            if owner is None or not serves:
                return {
                    "error": int(ErrorCode.ERR_CONTEXT),
                    "detail": f"no executor serves context {context!r}",
                }, self.executor_id
            if owner == self.executor_id:
                return self._execute_local(client_id, inner), owner
            tc = inner.get("tc")
            try:
                link = self._link_to(owner)
                self._m_fwd_sent.inc()
                frame = make_fwd(self.executor_id, client_id, inner)
                if tc is not None:
                    # Hoisted trace context: the owning executor's
                    # dispatch timing records an ``op.fwd`` span for the
                    # forwarded hop without unwrapping the payload.
                    frame["tc"] = tc
                fwd_began = self.server.obs.now()
                reply = link.call(frame, timeout=self.rpc_timeout)
                if tc is not None:
                    self.server.obs.record(
                        "fwd", tc, fwd_began, self.server.obs.now(),
                        op=inner.get("op"), context=context, peer=owner,
                    )
            except PeerTimeout:
                return {
                    "error": int(ErrorCode.ERR_CONNECTION),
                    "detail": f"executor {owner!r} timed out on {context!r}",
                }, owner
            except (DVConnectionLost, OSError):
                # Dead or restarting sibling: membership is the
                # supervisor's call, not ours — wait for its ctl.ring
                # update to move the context, within the op deadline.
                self._drop_link(owner)
                if time.monotonic() >= deadline:
                    return {
                        "error": int(ErrorCode.ERR_CONNECTION),
                        "detail": f"executor {owner!r} is unreachable",
                    }, owner
                time.sleep(0.02)
                continue
            payload = reply.get("payload")
            if not isinstance(payload, dict):
                payload = {
                    "error": reply.get("error", int(ErrorCode.ERR_PROTOCOL)),
                    "detail": reply.get("detail", "malformed fwd_reply"),
                }
            if (
                payload.get("error") == int(ErrorCode.ERR_CONTEXT)
                and time.monotonic() < deadline
            ):
                # The owner has not activated the context yet (its view
                # of the ring update lags ours) — give it a beat.
                time.sleep(0.05)
                continue
            if (
                payload.get("error") == int(ErrorCode.ERR_INVALID)
                and DETAIL_NOT_ATTACHED in payload.get("detail", "")
                and inner.get("op") not in ("attach", "finalize")
                and context in self._ingress_ctx.get(client_id, {})
                and time.monotonic() < deadline
            ):
                if self._ensure_attached(client_id, context):
                    continue
            return payload, owner

    def _execute_local(self, client_id: str, inner: dict) -> dict:
        op = inner.get("op")
        handler = self.server._handlers.get(op)
        if handler is None or op not in _ROUTABLE_OPS:
            return {
                "error": int(ErrorCode.ERR_PROTOCOL),
                "detail": f"op {op!r} cannot be executed for a routed client",
            }
        proxy = self._proxies.get(client_id)
        if proxy is None:
            proxy = self._proxies.setdefault(client_id, _ProxyClient(client_id))
        payload = self.server._run_op(proxy, handler, inner)
        payload.setdefault("error", int(ErrorCode.SUCCESS))
        if not payload.get("error") and op == "finalize" and not proxy.contexts:
            self._proxies.pop(client_id, None)
        return payload

    def _ensure_attached(self, client_id: str, context_name: str) -> bool:
        payload, owner = self._forward_routed(
            client_id, {"op": "attach", "context": context_name}
        )
        error = payload.get("error")
        ok = not error or (
            error == int(ErrorCode.ERR_INVALID)
            and DETAIL_ALREADY_ATTACHED in payload.get("detail", "")
        )
        if ok:
            with self._lock:
                attachments = self._ingress_ctx.get(client_id)
                if attachments is not None and context_name in attachments:
                    attachments[context_name] = owner
        return ok

    def replay(
        self,
        reattaches: list[tuple[str, str]],
        replays: list[tuple[str, str, str]],
    ) -> None:
        """Re-register displaced clients with the new owning executor and
        re-issue stranded forwarded opens (the post-``ctl.ring`` work)."""
        seen: set[tuple[str, str]] = set()
        for client_id, context_name in reattaches:
            if (client_id, context_name) not in seen:
                seen.add((client_id, context_name))
                self._ensure_attached(client_id, context_name)
        for client_id, context_name, filename in replays:
            if (client_id, context_name) not in seen:
                seen.add((client_id, context_name))
                if not self._ensure_attached(client_id, context_name):
                    self.server._push_ready(
                        Notification(client_id, context_name, filename, ok=False)
                    )
                    continue
            payload, owner = self._forward_routed(
                client_id,
                {"op": "open", "context": context_name, "file": filename},
            )
            self._m_replayed.inc()
            if payload.get("error"):
                self.server._push_ready(
                    Notification(client_id, context_name, filename, ok=False)
                )
            elif payload.get("available"):
                self.server._push_ready(
                    Notification(client_id, context_name, filename, ok=True)
                )
            else:
                with self._lock:
                    self._pending[(client_id, context_name, filename)] = owner

    # ------------------------------------------------------------------ #
    # Owner side (a sibling forwarded a client op here)
    # ------------------------------------------------------------------ #
    def _op_fwd(self, conn, message: dict) -> dict | None:
        origin, client_id, inner = unwrap_fwd(message)
        self._m_fwd_recv.inc()
        if inner.get("op") == "ready":
            self._deliver_routed_ready(client_id, inner)
            return None
        proxy = self._proxies.get(client_id)
        if proxy is None:
            proxy = self._proxies.setdefault(client_id, _ProxyClient(client_id))
        proxy.origin = origin
        proxy.peer_client_id = getattr(conn, "client_id", None)
        proxy.conn = conn
        return {"payload": self._execute_local(client_id, inner)}

    def _ready_router(self, notification: Notification) -> None:
        proxy = self._proxies.get(notification.client_id)
        if proxy is None or proxy.conn is None:
            return
        frame = make_fwd(self.executor_id, notification.client_id, {
            "op": "ready",
            "context": notification.context_name,
            "file": notification.filename,
            "ok": notification.ok,
        })
        try:
            self.server._send(proxy.conn, frame)
            self._m_ready_routed.inc()
        except (OSError, SimFSError):
            pass

    def _on_peer_fwd(self, message: dict) -> None:
        try:
            _origin, client_id, inner = unwrap_fwd(message)
        except ProtocolError:
            return
        if inner.get("op") == "ready":
            self._deliver_routed_ready(client_id, inner)

    def _deliver_routed_ready(self, client_id: str, inner: dict) -> None:
        context = inner.get("context")
        filename = inner.get("file")
        ok = bool(inner.get("ok", True))
        with self._lock:
            self._pending.pop((client_id, context, filename), None)
        self.server._push_ready(
            Notification(client_id, context, filename, ok=ok)
        )

    # ------------------------------------------------------------------ #
    # Peer links and remaining hooks
    # ------------------------------------------------------------------ #
    def _link_to(self, exec_id: str) -> PeerLink:
        with self._links_lock:
            link = self._links.get(exec_id)
            if link is not None and not link.closed:
                return link
        with self._lock:
            path = self._paths.get(exec_id)
        if path is None:
            raise DVConnectionLost(f"executor {exec_id!r} is not a member")
        fresh = PeerLink(
            self.executor_id, exec_id, "", 0,
            on_fwd=self._on_peer_fwd,
            on_down=self._drop_link,
            path=path,
            connect_timeout=2.0,
        )
        with self._links_lock:
            link = self._links.get(exec_id)
            if link is not None and not link.closed:
                fresh.close()
                return link
            self._links[exec_id] = fresh
        return fresh

    def _drop_link(self, exec_id: str) -> None:
        with self._links_lock:
            link = self._links.pop(exec_id, None)
        if link is not None:
            link.close()

    def _hello_extra(self) -> dict:
        with self._lock:
            return {
                "multicore": {
                    "executor": self.executor_id,
                    "workers": self.workers,
                    "epoch": self.ring.epoch,
                    "executors": self.ring.nodes(),
                    # Context -> owning executor: lets a locality-aware
                    # client reconnect until the kernel's REUSEPORT hash
                    # lands it on the executor that owns its context.
                    "owners": {
                        name: self.ring.owner(name)
                        for name in sorted(self._active_view)
                    },
                }
            }

    def _drop_hook(self, client_id: str) -> None:
        if client_id.startswith("node:"):
            # A sibling's peer link died: disconnect every client it
            # proxied through us (it replays them elsewhere).
            orphans = [
                p for p in list(self._proxies.values())
                if p.peer_client_id == client_id
            ]
            for proxy in orphans:
                self._proxies.pop(proxy.client_id, None)
                for context in list(proxy.contexts):
                    try:
                        self.server.coordinator.client_disconnect(
                            proxy.client_id, context, time.time()
                        )
                    except SimFSError:
                        pass
            return
        with self._lock:
            for key in [k for k in self._pending if k[0] == client_id]:
                del self._pending[key]
            forwarded = self._ingress_ctx.pop(client_id, {})
        for context in forwarded:
            try:
                self._forward_routed(
                    client_id, {"op": "finalize", "context": context}
                )
            except Exception:
                pass

    def close(self) -> None:
        with self._links_lock:
            links, self._links = list(self._links.values()), {}
        for link in links:
            link.close()
