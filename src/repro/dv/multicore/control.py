"""Supervisor <-> executor control plane.

Each executor process keeps exactly one :class:`ControlChannel` to the
supervisor: a Unix socketpair created before the fork, carrying binary
wire-codec frames (:mod:`repro.dv.protocol`) in both directions.  The
channel is symmetric — either side issues requests (``req`` / a
``ctl.reply`` frame echoing ``reply_to``) and one-way frames; incoming
requests are dispatched on their own threads so a blocked handler (the
supervisor fanning a ``ctl.stats`` query back out to every executor,
including the one that asked) can never deadlock the channel.

``ctl.conn`` frames may carry one file descriptor as SCM_RIGHTS
ancillary data — the fd-passing acceptor tier ships accepted client
sockets to executors this way.  Because ancillary data rides the byte
stream, a receiving channel created with ``recv_fds=True`` always reads
through :func:`socket.recv_fds` and matches received descriptors to
decoded ``ctl.conn`` frames in FIFO order (only ``ctl.conn`` sends ever
attach one).

EOF or a socket error fires ``on_down`` exactly once and fails every
outstanding call with :class:`~repro.core.errors.DVConnectionLost`; the
supervisor treats that as the executor's death certificate (a ``kill
-9`` closes the socketpair's far end immediately, long before a missed
heartbeat would).
"""

from __future__ import annotations

import itertools
import os
import queue
import socket
import threading
from collections.abc import Callable

from repro.core.errors import DVConnectionLost, SimFSError
from repro.dv.protocol import CODEC_BINARY, StreamDecoder, encode_frame

__all__ = [
    "CTL_HELLO",
    "CTL_RING",
    "CTL_PING",
    "CTL_STATS",
    "CTL_STATS_ALL",
    "CTL_OBS",
    "CTL_OBS_ALL",
    "CTL_DRAIN",
    "CTL_STOP",
    "CTL_CONN",
    "CTL_DEACTIVATE",
    "CTL_REPLY",
    "ControlChannel",
]

#: Executor -> supervisor, one-way: ``{executor, pid, path}`` — sent once
#: after the executor's listeners are up; unblocks the spawn barrier.
CTL_HELLO = "ctl.hello"
#: Supervisor -> executor, request: ``{epoch, executors: {id: path},
#: active: [context, ...]}`` — the authoritative membership + activation
#: view.  The executor reconciles before replying; stranded waiter
#: replays run after the reply so serial broadcasts cannot deadlock.
CTL_RING = "ctl.ring"
#: Supervisor -> executor, request: liveness/hang probe.
CTL_PING = "ctl.ping"
#: Supervisor -> executor, request: one executor's stats snapshot.
CTL_STATS = "ctl.stats"
#: Executor -> supervisor, request: the merged all-executor stats payload
#: (what a client's ``stats`` op should see).
CTL_STATS_ALL = "ctl.stats_all"
#: Supervisor -> executor, request: ``{kind: "trace"|"slow", trace_id |
#: limit}`` — one executor's recorded spans for the query.
CTL_OBS = "ctl.obs"
#: Executor -> supervisor, request: the pool-merged span payload (what a
#: client's ``trace`` / ``trace_slow`` op should see).
CTL_OBS_ALL = "ctl.obs_all"
#: Supervisor -> executor, request: ``{timeout}`` — phase one of the
#: graceful stop: close client listeners, drain in-flight work.
CTL_DRAIN = "ctl.drain"
#: Supervisor -> executor, request: phase two — tear down and exit.
CTL_STOP = "ctl.stop"
#: Supervisor -> executor, one-way with one SCM_RIGHTS fd: an accepted
#: client socket to adopt (fd-passing acceptor mode).
CTL_CONN = "ctl.conn"
#: Supervisor -> executor, request (cluster engine mode): ``{context}`` —
#: release a context shard, returning captured waiters for replay.
CTL_DEACTIVATE = "ctl.deactivate"
#: Reply frame for any request: echoes the request's ``req`` as
#: ``reply_to``.
CTL_REPLY = "ctl.reply"

_RECV_SIZE = 65536
_MAX_FDS_PER_RECV = 32


class ControlChannel:
    """One side of a supervisor<->executor control socketpair."""

    def __init__(
        self,
        sock: socket.socket,
        handler: Callable[[dict, int | None], dict | None] | None = None,
        name: str = "ctl",
        on_down: Callable[[], None] | None = None,
        recv_fds: bool = False,
    ) -> None:
        self._sock = sock
        self._sock.setblocking(True)
        self._handler = handler
        self.name = name
        self._on_down = on_down
        self._recv_fds = recv_fds
        self._decoder = StreamDecoder(CODEC_BINARY)
        self._fd_fifo: "queue.SimpleQueue[int]" = queue.SimpleQueue()
        self._reqs = itertools.count(1)
        self._waiters: dict[int, queue.Queue] = {}
        self._lock = threading.Lock()
        self._send_lock = threading.Lock()
        self._closed = False
        self._listener: threading.Thread | None = None

    def start(self) -> None:
        self._listener = threading.Thread(
            target=self._listen, name=f"simfs-{self.name}", daemon=True
        )
        self._listener.start()

    # ------------------------------------------------------------------ #
    def send(self, message: dict) -> None:
        """One-way frame (no reply expected)."""
        data = encode_frame(message, CODEC_BINARY)
        try:
            with self._send_lock:
                self._sock.sendall(data)
        except OSError as exc:
            raise DVConnectionLost(
                f"control channel {self.name!r} died on send: {exc}"
            ) from exc

    def send_with_fd(self, message: dict, fd: int) -> None:
        """One-way frame carrying one file descriptor (``ctl.conn``)."""
        data = encode_frame(message, CODEC_BINARY)
        try:
            with self._send_lock:
                socket.send_fds(self._sock, [data], [fd])
        except OSError as exc:
            raise DVConnectionLost(
                f"control channel {self.name!r} died on fd send: {exc}"
            ) from exc

    def call(self, message: dict, timeout: float = 10.0) -> dict:
        """Request/reply round trip; :class:`DVConnectionLost` when the
        channel dies, ``TimeoutError`` when the peer does not answer."""
        if self._closed:
            raise DVConnectionLost(f"control channel {self.name!r} is closed")
        req = next(self._reqs)
        message = dict(message)
        message["req"] = req
        waiter: queue.Queue = queue.Queue(maxsize=1)
        with self._lock:
            self._waiters[req] = waiter
        try:
            self.send(message)
            reply = waiter.get(timeout=timeout)
        except queue.Empty:
            raise TimeoutError(
                f"control peer {self.name!r} did not answer "
                f"{message.get('op')!r} within {timeout}s"
            ) from None
        finally:
            with self._lock:
                self._waiters.pop(req, None)
        if reply is None:
            raise DVConnectionLost(
                f"control channel {self.name!r} died mid-call"
            )
        return reply

    # ------------------------------------------------------------------ #
    def _recv_chunk(self) -> bytes:
        if not self._recv_fds:
            return self._sock.recv(_RECV_SIZE)
        msg, fds, _flags, _addr = socket.recv_fds(
            self._sock, _RECV_SIZE, _MAX_FDS_PER_RECV
        )
        for fd in fds:
            self._fd_fifo.put(fd)
        return msg

    def _listen(self) -> None:
        try:
            while not self._closed:
                chunk = self._recv_chunk()
                if not chunk:
                    break
                self._decoder.feed(chunk)
                while True:
                    message = self._decoder.next_message()
                    if message is None:
                        break
                    self._dispatch(message)
        except (OSError, SimFSError):
            pass
        self._drain_stray_fds()
        self._fail_outstanding()
        if not self._closed and self._on_down is not None:
            try:
                self._on_down()
            except Exception:
                pass

    def _dispatch(self, message: dict) -> None:
        if message.get("op") == CTL_REPLY:
            with self._lock:
                waiter = self._waiters.pop(message.get("reply_to"), None)
            if waiter is not None:
                waiter.put(message)
            return
        fd: int | None = None
        if message.get("op") == CTL_CONN:
            try:
                fd = self._fd_fifo.get_nowait()
            except queue.Empty:
                return  # truncated ancillary data: nothing to adopt
        # Each request runs on its own thread: a handler blocking on a
        # round trip back through this very channel (merged stats) must
        # not stall pings, replies or later requests.
        threading.Thread(
            target=self._handle,
            args=(message, fd),
            name=f"simfs-{self.name}-req",
            daemon=True,
        ).start()

    def _handle(self, message: dict, fd: int | None) -> None:
        reply: dict | None = None
        try:
            if self._handler is not None:
                reply = self._handler(message, fd)
            elif fd is not None:
                _close_fd(fd)
        except Exception as exc:
            reply = {"error": 1, "detail": f"{type(exc).__name__}: {exc}"}
        req = message.get("req")
        if req is None or reply is None:
            return
        reply = dict(reply)
        reply["op"] = CTL_REPLY
        reply["reply_to"] = req
        try:
            self.send(reply)
        except DVConnectionLost:
            pass

    def _drain_stray_fds(self) -> None:
        while True:
            try:
                _close_fd(self._fd_fifo.get_nowait())
            except queue.Empty:
                return

    def _fail_outstanding(self) -> None:
        with self._lock:
            waiters = list(self._waiters.values())
            self._waiters.clear()
        for waiter in waiters:
            waiter.put(None)

    # ------------------------------------------------------------------ #
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass


def _close_fd(fd: int) -> None:
    try:
        os.close(fd)
    except OSError:
        pass
