"""The multi-core supervisor: lifecycle, membership oracle, acceptor tier.

:class:`MultiCoreServer` is the drop-in multi-process counterpart of a
single :class:`~repro.dv.server.DVServer`: same ``add_context`` /
``start`` / ``stop(drain_timeout)`` surface, but behind it N
shard-executor processes (default ``os.cpu_count()``) each run their own
selector event loop and own the context shards an internal
:class:`~repro.cluster.ring.HashRing` assigns to them.

The supervisor is the *only* membership authority: executors never gossip.
It spawns the fleet, binds the acceptor tier (SO_REUSEPORT port sharing
where the kernel supports it, an fd-passing acceptor otherwise),
broadcasts ``ctl.ring`` views, pings for liveness (a ``kill -9`` shows
up even sooner, as EOF on the control socketpair), restarts crashed
executors, and re-broadcasts so the survivors replay stranded waiters —
the cluster tier's reassignment dance, one machine tall.

``accept="none"`` turns the pool into a cluster node's local engine: no
client plane at all; the owning :class:`~repro.cluster.node.ClusterNode`
forwards ops in over supervisor-held peer links (:meth:`forward`) and
gets ``ready`` notifications back through ``ready_router``.
"""

from __future__ import annotations

import multiprocessing
import os
import socket
import tempfile
import threading
import time
from dataclasses import dataclass, field

from repro.cluster.link import PeerLink, PeerTimeout
from repro.cluster.ring import HashRing
from repro.core.context import SimulationContext
from repro.core.errors import (
    DETAIL_ALREADY_ATTACHED,
    DETAIL_NOT_ATTACHED,
    DVConnectionLost,
    ErrorCode,
    InvalidArgumentError,
    ProtocolError,
)
from repro.dv.coordinator import Notification
from repro.dv.multicore.control import (
    CTL_CONN,
    CTL_DEACTIVATE,
    CTL_DRAIN,
    CTL_HELLO,
    CTL_OBS,
    CTL_OBS_ALL,
    CTL_PING,
    CTL_RING,
    CTL_STATS,
    CTL_STATS_ALL,
    CTL_STOP,
    ControlChannel,
)
from repro.dv.multicore.executor import ExecutorSpec, run_executor
from repro.dv.multicore.gateway import ExecutorCatalogEntry
from repro.dv.protocol import make_fwd, unwrap_fwd
from repro.dv.server import DVServer
from repro.metrics import MetricsRegistry, merge_snapshots

__all__ = ["MultiCoreServer"]


@dataclass
class _ExecutorHandle:
    """Supervisor-side record of one executor process."""

    executor_id: str
    incarnation: int
    process: object
    channel: ControlChannel
    path: str
    alive: bool = True
    pid: int | None = None
    ready: threading.Event = field(default_factory=threading.Event)


def pick_accept_mode() -> str:
    """Kernel-dependent acceptor choice: SO_REUSEPORT load balancing
    where available, single-acceptor fd passing otherwise."""
    if hasattr(socket, "SO_REUSEPORT") and hasattr(socket, "send_fds"):
        return "reuseport"
    if hasattr(socket, "send_fds"):
        return "fdpass"
    raise OSError("neither SO_REUSEPORT nor fd passing is available")


class MultiCoreServer:
    """Supervisor over N shared-nothing shard-executor processes."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int | None = None,
        accept: str | None = None,
        vnodes: int = 32,
        start_method: str | None = None,
        restart_crashed: bool = True,
        heartbeat_interval: float = 0.5,
        heartbeat_misses: int = 4,
        rpc_timeout: float = 10.0,
        io_workers: int | None = None,
        spawn_timeout: float = 30.0,
        ready_router=None,
        data_endpoint: tuple[str, int] | None = None,
    ) -> None:
        if accept is None:
            accept = pick_accept_mode()
        if accept not in ("reuseport", "fdpass", "none"):
            raise InvalidArgumentError(f"unknown accept mode {accept!r}")
        self._host = host
        self._port = port
        self.workers = workers or os.cpu_count() or 1
        self.accept = accept
        self.vnodes = vnodes
        self.restart_crashed = restart_crashed
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_misses = heartbeat_misses
        self.rpc_timeout = rpc_timeout
        self._io_workers = io_workers
        self._spawn_timeout = spawn_timeout
        self._start_method = start_method
        #: Bulk data plane advertised by every executor's ``fetch_info``
        #: (the pool shares the embedding node's data port; specs ship it
        #: at spawn time).  Settable until the first spawn.
        self._data_endpoint = data_endpoint
        self.metrics = MetricsRegistry()
        self._m_restarts = self.metrics.counter("sup.executor_restarts")
        self._m_alive = self.metrics.gauge("sup.executors_alive")
        self._m_epoch = self.metrics.gauge("sup.ring_epoch")
        #: Serializes membership/handles/active-set state.  Broadcasts run
        #: under it (executors never call back into the supervisor's lock).
        self._lock = threading.RLock()
        self._catalog: dict[str, ExecutorCatalogEntry] = {}
        self._active: set[str] = set()
        self._handles: dict[str, _ExecutorHandle] = {}
        self.ring = HashRing(vnodes)
        self._running = False
        self._tmpdir: str | None = None
        self._reserve: socket.socket | None = None
        self._acceptor: socket.socket | None = None
        self._acceptor_thread: threading.Thread | None = None
        self._rr = 0  # fd-passing round-robin cursor
        # Engine-mode client plane (accept="none"): supervisor-held peer
        # links into the pool, plus the ingress bookkeeping needed to
        # replay forwarded waits when an executor dies.
        self._ready_router = ready_router
        self._links: dict[str, PeerLink] = {}
        self._links_lock = threading.Lock()
        self._ingress_ctx: dict[str, dict[str, str]] = {}
        self._pending: dict[tuple[str, str, str], str] = {}

    # ------------------------------------------------------------------ #
    # Configuration (before start)
    # ------------------------------------------------------------------ #
    def add_context(
        self,
        context: SimulationContext,
        output_dir: str,
        restart_dir: str,
        alpha_delay: float = 0.0,
        tau_delay: float = 0.0,
        active: bool = True,
    ) -> None:
        """Declare a context pool-wide.  ``active=False`` registers the
        catalog entry without serving it (cluster engine mode activates
        on ring ownership)."""
        if self._running:
            raise InvalidArgumentError(
                "add_context must precede start() (the catalog ships to "
                "executors at spawn time)"
            )
        os.makedirs(output_dir, exist_ok=True)
        os.makedirs(restart_dir, exist_ok=True)
        self._catalog[context.name] = ExecutorCatalogEntry(
            context, output_dir, restart_dir, alpha_delay, tau_delay
        )
        if active:
            self._active.add(context.name)

    def set_data_endpoint(self, host: str, port: int) -> None:
        """Advertise a data plane through every executor's ``fetch_info``.
        Must precede :meth:`start` (specs ship at spawn time)."""
        if self._running:
            raise InvalidArgumentError(
                "set_data_endpoint must precede start()"
            )
        self._data_endpoint = (host, int(port))

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def address(self) -> tuple[str, int]:
        """(host, port) clients connect to; valid after :meth:`start`."""
        sock = self._reserve if self._reserve is not None else self._acceptor
        assert sock is not None, "server not started (or accept='none')"
        return sock.getsockname()[:2]

    def start(self) -> None:
        if self._running:
            return
        self._tmpdir = tempfile.mkdtemp(prefix="simfs-mc-")
        if self.accept == "reuseport":
            # Bound but *not* listening: reserves the port number without
            # stealing SYNs from the executors' real listeners.
            self._reserve = DVServer.make_reuseport_listener(
                self._host, self._port, listen=False
            )
            self._port = self._reserve.getsockname()[1]
        elif self.accept == "fdpass":
            self._acceptor = DVServer.make_reuseport_listener(
                self._host, self._port, listen=True
            )
            self._port = self._acceptor.getsockname()[1]
        self._running = True
        method = self._start_method
        if method is None:
            available = multiprocessing.get_all_start_methods()
            method = "fork" if "fork" in available else "spawn"
        self._mp_ctx = multiprocessing.get_context(method)
        with self._lock:
            for idx in range(self.workers):
                exec_id = f"exec.{idx}"
                self._handles[exec_id] = self._spawn(exec_id, incarnation=1)
        deadline = time.monotonic() + self._spawn_timeout
        for handle in list(self._handles.values()):
            remaining = max(0.1, deadline - time.monotonic())
            if not handle.ready.wait(remaining):
                self.stop(drain_timeout=0)
                raise DVConnectionLost(
                    f"executor {handle.executor_id!r} did not come up "
                    f"within {self._spawn_timeout}s"
                )
        with self._lock:
            for exec_id in sorted(self._handles):
                self.ring.add_node(exec_id)
            self._m_epoch.set(self.ring.epoch)
            self._m_alive.set(len(self._handles))
        self._broadcast_ring()
        for handle in list(self._handles.values()):
            self._start_heartbeat(handle)
        if self.accept == "fdpass":
            self._acceptor_thread = threading.Thread(
                target=self._accept_loop, name="simfs-mc-accept", daemon=True
            )
            self._acceptor_thread.start()

    def stop(self, drain_timeout: float = 5.0) -> None:
        """Two-phase graceful stop.

        Phase one (``drain_timeout > 0``): every executor closes its
        client listeners and drains in-flight simulations, inboxes and
        output buffers — replies and ready notifications already owed are
        delivered, while new connects are refused.  Phase two: executors
        tear down and exit; stragglers are terminated, then killed.
        """
        self._running = False  # stops restarts, heartbeats, accepting
        for sock in (self._reserve, self._acceptor):
            if sock is not None:
                try:
                    sock.close()
                except OSError:
                    pass
        self._reserve = self._acceptor = None
        with self._lock:
            handles = [h for h in self._handles.values() if h.alive]
        if drain_timeout > 0 and handles:
            self._fanout(
                handles,
                {"op": CTL_DRAIN, "timeout": drain_timeout},
                timeout=drain_timeout + 2.0,
            )
        self._fanout(handles, {"op": CTL_STOP}, timeout=3.0)
        with self._lock:
            all_handles = list(self._handles.values())
            self._handles.clear()
        with self._links_lock:
            links, self._links = list(self._links.values()), {}
        for link in links:
            link.close()
        for handle in all_handles:
            proc = handle.process
            proc.join(timeout=3.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=1.0)
            handle.channel.close()
        if self._tmpdir is not None:
            try:
                for name in os.listdir(self._tmpdir):
                    try:
                        os.unlink(os.path.join(self._tmpdir, name))
                    except OSError:
                        pass
                os.rmdir(self._tmpdir)
            except OSError:
                pass
            self._tmpdir = None

    def __enter__(self) -> "MultiCoreServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # Spawning and membership
    # ------------------------------------------------------------------ #
    def _spawn(self, exec_id: str, incarnation: int) -> _ExecutorHandle:
        parent_sock, child_sock = socket.socketpair(
            socket.AF_UNIX, socket.SOCK_STREAM
        )
        assert self._tmpdir is not None
        path = os.path.join(self._tmpdir, f"{exec_id}.sock")
        spec = ExecutorSpec(
            executor_id=exec_id,
            host=self._host,
            port=self._port if self.accept == "reuseport" else 0,
            accept=self.accept,
            unix_path=path,
            workers=self.workers,
            vnodes=self.vnodes,
            rpc_timeout=self.rpc_timeout,
            io_workers=self._io_workers,
            catalog=list(self._catalog.values()),
            data_endpoint=self._data_endpoint,
        )
        process = self._mp_ctx.Process(
            target=run_executor,
            args=(spec, child_sock),
            name=f"simfs-{exec_id}",
            daemon=True,
        )
        process.start()
        child_sock.close()
        handle = _ExecutorHandle(
            executor_id=exec_id,
            incarnation=incarnation,
            process=process,
            channel=None,  # type: ignore[arg-type]  # bound just below
            path=path,
        )
        channel = ControlChannel(
            parent_sock,
            handler=lambda msg, fd: self._ctl_request(handle, msg, fd),
            name=f"sup-{exec_id}",
            on_down=lambda: self._executor_died(handle),
        )
        handle.channel = channel
        channel.start()
        return handle

    def _ctl_request(
        self, handle: _ExecutorHandle, message: dict, fd: int | None
    ) -> dict | None:
        op = message.get("op")
        if op == CTL_HELLO:
            handle.pid = message.get("pid")
            handle.ready.set()
            return None
        if op == CTL_STATS_ALL:
            return {"stats": self.stats()}
        if op == CTL_OBS_ALL:
            if message.get("kind") == "slow":
                return {"spans": self.slow_spans(
                    int(message.get("limit", 20))
                )}
            return {"spans": self.trace_spans(
                str(message.get("trace_id") or "")
            )}
        return {"error": 1, "detail": f"unexpected control op {op!r}"}

    def _executor_died(self, handle: _ExecutorHandle) -> None:
        """Control channel EOF: the executor is gone (crash or kill -9).
        Remove it from the ring, tell the survivors (they replay stranded
        forwarded waits), replay our own engine-mode waits, and respawn."""
        with self._lock:
            current = self._handles.get(handle.executor_id)
            if not self._running or current is not handle or not handle.alive:
                return
            handle.alive = False
            self.ring.remove_node(handle.executor_id)
            self._m_epoch.set(self.ring.epoch)
            self._m_alive.set(
                sum(1 for h in self._handles.values() if h.alive)
            )
        handle.channel.close()
        self._drop_link(handle.executor_id)
        try:
            handle.process.join(timeout=0.1)
        except (OSError, ValueError, AssertionError):
            pass
        self._broadcast_ring()
        self._replay_engine_waits()
        if self.restart_crashed and self._running:
            self._respawn(handle)

    def _respawn(self, dead: _ExecutorHandle) -> None:
        self._m_restarts.inc()
        try:
            os.unlink(dead.path)
        except OSError:
            pass
        with self._lock:
            if not self._running:
                return
            fresh = self._spawn(dead.executor_id, dead.incarnation + 1)
            self._handles[dead.executor_id] = fresh
        if not fresh.ready.wait(self._spawn_timeout):
            with self._lock:
                fresh.alive = False
            fresh.channel.close()
            try:
                fresh.process.kill()
            except (OSError, ValueError, AssertionError):
                pass
            return
        with self._lock:
            self.ring.add_node(fresh.executor_id)
            self._m_epoch.set(self.ring.epoch)
            self._m_alive.set(
                sum(1 for h in self._handles.values() if h.alive)
            )
        self._broadcast_ring()
        self._replay_engine_waits()
        self._start_heartbeat(fresh)

    def _broadcast_ring(self) -> None:
        with self._lock:
            handles = [h for h in self._handles.values() if h.alive]
            view = {
                "op": CTL_RING,
                "epoch": self.ring.epoch,
                "executors": {h.executor_id: h.path for h in handles},
                "active": sorted(self._active),
            }
        self._fanout(handles, view, timeout=self.rpc_timeout)

    def _fanout(
        self, handles: list[_ExecutorHandle], message: dict, timeout: float
    ) -> dict[str, dict | None]:
        """Issue one control request to many executors concurrently.

        Concurrency is load-bearing, not an optimization: executor A's
        post-update replay may block on executor B activating a context,
        which only happens once B receives this same update — a serial
        broadcast would turn that into a stall.
        """
        results: dict[str, dict | None] = {}

        def one(handle: _ExecutorHandle) -> None:
            try:
                results[handle.executor_id] = handle.channel.call(
                    dict(message), timeout=timeout
                )
            except (DVConnectionLost, TimeoutError):
                results[handle.executor_id] = None

        threads = [
            threading.Thread(target=one, args=(h,), daemon=True)
            for h in handles
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout + 1.0)
        return results

    # ------------------------------------------------------------------ #
    # Health checking
    # ------------------------------------------------------------------ #
    def _start_heartbeat(self, handle: _ExecutorHandle) -> None:
        threading.Thread(
            target=self._heartbeat_loop,
            args=(handle,),
            name=f"simfs-hb-{handle.executor_id}",
            daemon=True,
        ).start()

    def _heartbeat_loop(self, handle: _ExecutorHandle) -> None:
        """Ping one executor; EOF on the channel (crash) is caught by the
        channel's own listener, so this loop only has to catch *hangs* —
        a live process whose loop stopped answering."""
        misses = 0
        while self._running and handle.alive:
            time.sleep(self.heartbeat_interval)
            if not self._running or not handle.alive:
                return
            if self._handles.get(handle.executor_id) is not handle:
                return
            try:
                handle.channel.call(
                    {"op": CTL_PING},
                    timeout=max(self.heartbeat_interval, 1.0),
                )
                misses = 0
            except DVConnectionLost:
                return  # channel death path owns the failover
            except TimeoutError:
                misses += 1
                if misses >= self.heartbeat_misses:
                    # Hung, not dead: kill it so the EOF path takes over.
                    try:
                        handle.process.kill()
                    except (OSError, ValueError, AssertionError):
                        pass
                    return

    # ------------------------------------------------------------------ #
    # fd-passing acceptor tier
    # ------------------------------------------------------------------ #
    def _accept_loop(self) -> None:
        assert self._acceptor is not None
        acceptor = self._acceptor
        while self._running:
            try:
                sock, _addr = acceptor.accept()
            except OSError:
                return  # listener closed (stop)
            with self._lock:
                handles = [h for h in self._handles.values() if h.alive]
            if not handles:
                sock.close()
                continue
            self._rr = (self._rr + 1) % len(handles)
            handle = handles[self._rr]
            try:
                handle.channel.send_with_fd({"op": CTL_CONN}, sock.fileno())
            except DVConnectionLost:
                pass  # executor died mid-handoff; client sees a reset
            sock.close()

    # ------------------------------------------------------------------ #
    # Merged observability plane
    # ------------------------------------------------------------------ #
    def _obs_query(self, message: dict) -> list[dict]:
        """Fan one span query to every live executor; an unreachable
        executor simply contributes nothing (its recorder died with it)."""
        with self._lock:
            handles = [h for h in self._handles.values() if h.alive]
        spans: list[dict] = []
        for reply in self._fanout(handles, message, timeout=3.0).values():
            if isinstance(reply, dict):
                spans.extend(reply.get("spans") or ())
        return spans

    def trace_spans(self, trace_id: str | int) -> list[dict]:
        """One trace's spans merged across the executor pool."""
        spans = self._obs_query(
            {"op": CTL_OBS, "kind": "trace", "trace_id": str(trace_id)}
        )
        seen: set = set()
        merged = []
        for span in spans:
            if span.get("span_id") in seen:
                continue
            seen.add(span.get("span_id"))
            merged.append(span)
        merged.sort(key=lambda s: (s.get("start", 0.0), s.get("end", 0.0)))
        return merged

    def slow_spans(self, limit: int = 20) -> list[dict]:
        """The pool's slowest retained spans (tail-sampled view)."""
        spans = self._obs_query(
            {"op": CTL_OBS, "kind": "slow", "limit": int(limit)}
        )
        spans.sort(key=lambda s: s.get("duration", 0.0), reverse=True)
        return spans[: int(limit)]

    # ------------------------------------------------------------------ #
    # Merged stats plane
    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        """The pool-wide ``stats`` payload: per-shard summaries from every
        executor, totals summed, metric series merged — with each
        executor's unmerged series additionally present under an
        ``exec.<i>.`` prefix, so dashboards can tell merged from
        per-executor counters."""
        with self._lock:
            handles = {
                h.executor_id: h for h in self._handles.values() if h.alive
            }
            executors_info = {
                h.executor_id: {
                    "pid": h.pid,
                    "alive": h.alive,
                    "incarnation": h.incarnation,
                }
                for h in self._handles.values()
            }
        per_exec: dict[str, dict] = {}
        for exec_id, handle in sorted(handles.items()):
            try:
                reply = handle.channel.call({"op": CTL_STATS}, timeout=3.0)
            except (DVConnectionLost, TimeoutError):
                continue
            stats = reply.get("stats")
            if isinstance(stats, dict):
                per_exec[exec_id] = stats
        contexts = []
        connected = 0
        for exec_id, snap in per_exec.items():
            for summary in snap.get("contexts", []):
                contexts.append({**summary, "executor": exec_id})
            connected += snap.get("server", {}).get("connected_clients", 0)
            executors_info.setdefault(exec_id, {})["connected_clients"] = (
                snap.get("server", {}).get("connected_clients", 0)
            )
        metrics = merge_snapshots(
            [snap.get("metrics", {}) for snap in per_exec.values()]
            + [self.metrics.snapshot()]
        )
        # Per-executor series, labeled: "exec.<i>.<series>" next to the
        # merged, unprefixed series.
        for exec_id, snap in per_exec.items():
            for name, metric in snap.get("metrics", {}).items():
                metrics[f"{exec_id}.{name}"] = metric
        contexts.sort(key=lambda s: s.get("context", ""))
        return {
            "contexts": contexts,
            "totals": {
                "restarts": sum(c["total_restarts"] for c in contexts),
                "simulated_outputs": sum(
                    c["total_simulated_outputs"] for c in contexts
                ),
                "killed_sims": sum(c["total_killed_sims"] for c in contexts),
            },
            "metrics": metrics,
            "server": {
                "mode": "multiproc",
                "accept": self.accept,
                "workers": self.workers,
                "connected_clients": connected,
                "executors": executors_info,
            },
        }

    # ------------------------------------------------------------------ #
    # Cluster engine mode (accept="none"): the pool as a node's engine
    # ------------------------------------------------------------------ #
    def activate(self, name: str) -> None:
        """Serve ``name`` (its ring-assigned executor activates it)."""
        with self._lock:
            if name not in self._catalog:
                raise InvalidArgumentError(f"unknown context {name!r}")
            if name in self._active:
                return
            self._active.add(name)
        self._broadcast_ring()

    def deactivate(
        self, name: str
    ) -> tuple[list[tuple[str, str]], list[tuple[str, str, str]]]:
        """Stop serving ``name``; returns the owning executor's captured
        attachments and waiters for replay by the caller (the cluster
        tier replays them at the context's new owning node)."""
        with self._lock:
            self._active.discard(name)
            owner = self.ring.owner(name)
            handle = self._handles.get(owner) if owner else None
            for key in [k for k in self._pending if k[1] == name]:
                del self._pending[key]
            for attachments in self._ingress_ctx.values():
                attachments.pop(name, None)
        reattaches: list[tuple[str, str]] = []
        replays: list[tuple[str, str, str]] = []
        if handle is not None and handle.alive:
            try:
                reply = handle.channel.call(
                    {"op": CTL_DEACTIVATE, "context": name},
                    timeout=self.rpc_timeout,
                )
                reattaches = [tuple(r) for r in reply.get("reattaches", [])]
                replays = [tuple(r) for r in reply.get("replays", [])]
            except (DVConnectionLost, TimeoutError):
                pass
        self._broadcast_ring()
        return reattaches, replays

    def active_contexts(self) -> list[str]:
        with self._lock:
            return sorted(self._active)

    def forward(self, client_id: str, inner: dict) -> dict:
        """Engine-mode ingress: run one client op on the owning executor,
        riding out executor death and activation lag exactly like the
        executors' own gateways do."""
        payload, owner = self._forward_routed(client_id, inner)
        self._track_ingress(client_id, inner, payload, owner)
        return payload

    def _forward_routed(
        self, client_id: str, inner: dict
    ) -> tuple[dict, str | None]:
        context = inner.get("context")
        deadline = time.monotonic() + self.rpc_timeout
        while True:
            with self._lock:
                owner = (
                    self.ring.owner(context)
                    if isinstance(context, str) else None
                )
                serves = context in self._active
            if owner is None or not serves:
                return {
                    "error": int(ErrorCode.ERR_CONTEXT),
                    "detail": f"no executor serves context {context!r}",
                }, owner
            try:
                link = self._link_to(owner)
                frame = make_fwd("sup", client_id, inner)
                if inner.get("tc") is not None:
                    # Keep the trace context visible on the frame itself
                    # so the executor's dispatch timing spans the hop.
                    frame["tc"] = inner["tc"]
                reply = link.call(frame, timeout=self.rpc_timeout)
            except PeerTimeout:
                return {
                    "error": int(ErrorCode.ERR_CONNECTION),
                    "detail": f"executor {owner!r} timed out on {context!r}",
                }, owner
            except (DVConnectionLost, OSError):
                self._drop_link(owner)
                if time.monotonic() >= deadline:
                    return {
                        "error": int(ErrorCode.ERR_CONNECTION),
                        "detail": f"executor {owner!r} is unreachable",
                    }, owner
                time.sleep(0.02)
                continue
            payload = reply.get("payload")
            if not isinstance(payload, dict):
                payload = {
                    "error": reply.get("error", int(ErrorCode.ERR_PROTOCOL)),
                    "detail": reply.get("detail", "malformed fwd_reply"),
                }
            if (
                payload.get("error") == int(ErrorCode.ERR_CONTEXT)
                and time.monotonic() < deadline
            ):
                time.sleep(0.05)
                continue
            if (
                payload.get("error") == int(ErrorCode.ERR_INVALID)
                and DETAIL_NOT_ATTACHED in payload.get("detail", "")
                and inner.get("op") not in ("attach", "finalize")
                and context in self._ingress_ctx.get(client_id, {})
                and time.monotonic() < deadline
            ):
                if self._ensure_attached(client_id, context):
                    continue
            return payload, owner

    def _track_ingress(
        self, client_id: str, inner: dict, payload: dict, owner: str | None
    ) -> None:
        op = inner.get("op")
        context = inner.get("context")
        if payload.get("error") or not isinstance(context, str) or owner is None:
            return
        with self._lock:
            if op == "attach":
                self._ingress_ctx.setdefault(client_id, {})[context] = owner
            elif op == "finalize":
                self._ingress_ctx.get(client_id, {}).pop(context, None)
            elif op == "open" and not payload.get("available"):
                self._pending[(client_id, context, inner.get("file"))] = owner
            elif op == "release":
                self._pending.pop((client_id, context, inner.get("file")), None)
            elif op == "acquire":
                for result in payload.get("results", ()):
                    if not result.get("available"):
                        key = (client_id, context, result.get("file"))
                        self._pending[key] = owner

    def _ensure_attached(self, client_id: str, context_name: str) -> bool:
        payload, owner = self._forward_routed(
            client_id, {"op": "attach", "context": context_name}
        )
        error = payload.get("error")
        ok = not error or (
            error == int(ErrorCode.ERR_INVALID)
            and DETAIL_ALREADY_ATTACHED in payload.get("detail", "")
        )
        if ok and owner is not None:
            with self._lock:
                attachments = self._ingress_ctx.get(client_id)
                if attachments is not None and context_name in attachments:
                    attachments[context_name] = owner
        return ok

    def finalize_client(self, client_id: str) -> None:
        """Engine-mode drop hook relay: the node lost a client's TCP
        connection — finalize its pool-side attachments."""
        with self._lock:
            for key in [k for k in self._pending if k[0] == client_id]:
                del self._pending[key]
            forwarded = self._ingress_ctx.pop(client_id, {})
        for context in forwarded:
            try:
                self._forward_routed(
                    client_id, {"op": "finalize", "context": context}
                )
            except Exception:
                pass

    def _replay_engine_waits(self) -> None:
        """After a membership change: re-attach and re-open every engine
        forwarded wait recorded against an executor that no longer owns
        its context."""
        reattaches: list[tuple[str, str]] = []
        replays: list[tuple[str, str, str]] = []
        with self._lock:
            for client_id, attachments in self._ingress_ctx.items():
                for context_name, owner in list(attachments.items()):
                    if self.ring.owner(context_name) != owner:
                        reattaches.append((client_id, context_name))
            for key, owner in list(self._pending.items()):
                client_id, context_name, filename = key
                if self.ring.owner(context_name) != owner:
                    replays.append((client_id, context_name, filename))
                    del self._pending[key]
        if not reattaches and not replays:
            return
        seen: set[tuple[str, str]] = set()
        for client_id, context_name in reattaches:
            if (client_id, context_name) not in seen:
                seen.add((client_id, context_name))
                self._ensure_attached(client_id, context_name)
        for client_id, context_name, filename in replays:
            if (client_id, context_name) not in seen:
                seen.add((client_id, context_name))
                if not self._ensure_attached(client_id, context_name):
                    self._deliver_ready(
                        Notification(client_id, context_name, filename, ok=False)
                    )
                    continue
            payload, owner = self._forward_routed(
                client_id,
                {"op": "open", "context": context_name, "file": filename},
            )
            if payload.get("error"):
                self._deliver_ready(
                    Notification(client_id, context_name, filename, ok=False)
                )
            elif payload.get("available"):
                self._deliver_ready(
                    Notification(client_id, context_name, filename, ok=True)
                )
            else:
                with self._lock:
                    self._pending[(client_id, context_name, filename)] = owner

    def _link_to(self, exec_id: str) -> PeerLink:
        with self._links_lock:
            link = self._links.get(exec_id)
            if link is not None and not link.closed:
                return link
        with self._lock:
            handle = self._handles.get(exec_id)
            path = handle.path if handle is not None and handle.alive else None
        if path is None:
            raise DVConnectionLost(f"executor {exec_id!r} is not alive")
        fresh = PeerLink(
            "sup", exec_id, "", 0,
            on_fwd=self._on_link_fwd,
            on_down=self._drop_link,
            path=path,
            connect_timeout=2.0,
        )
        with self._links_lock:
            link = self._links.get(exec_id)
            if link is not None and not link.closed:
                fresh.close()
                return link
            self._links[exec_id] = fresh
        return fresh

    def _drop_link(self, exec_id: str) -> None:
        with self._links_lock:
            link = self._links.pop(exec_id, None)
        if link is not None:
            link.close()

    def _on_link_fwd(self, message: dict) -> None:
        try:
            _origin, client_id, inner = unwrap_fwd(message)
        except ProtocolError:
            return
        if inner.get("op") != "ready":
            return
        context = inner.get("context")
        filename = inner.get("file")
        with self._lock:
            self._pending.pop((client_id, context, filename), None)
        self._deliver_ready(Notification(
            client_id, context, filename, ok=bool(inner.get("ok", True))
        ))

    def _deliver_ready(self, notification: Notification) -> None:
        if self._ready_router is not None:
            try:
                self._ready_router(notification)
            except Exception:
                pass
