"""Shard-executor child process: one event loop, one core, one GIL.

:func:`run_executor` is the target of every process the supervisor
spawns.  It builds a selector-mode :class:`~repro.dv.server.DVServer`
(its own worker pool, metrics plane and coordinator), a Unix-domain
listener for sibling peer links, and an
:class:`~repro.dv.multicore.gateway.ExecutorGateway` holding the
internal ring — then parks on the control channel until the supervisor
says stop.

Client sockets arrive one of three ways, chosen by ``spec.accept``:

* ``reuseport`` — the executor binds+listens its own SO_REUSEPORT share
  of the node's client port; the kernel load-balances connections.
* ``fdpass`` — no client listener at all; the supervisor accepts and
  ships fds over the control channel (``ctl.conn``).
* ``none`` — no client plane (cluster engine mode: ops enter only as
  ``fwd`` frames over the peer listener).

The process exits with :func:`os._exit` — a forked child must not run
the parent's inherited atexit machinery.
"""

from __future__ import annotations

import os
import signal
import socket
import threading
from dataclasses import dataclass, field

from repro.core.errors import DVConnectionLost
from repro.dv.multicore.control import (
    CTL_CONN,
    CTL_DEACTIVATE,
    CTL_DRAIN,
    CTL_HELLO,
    CTL_OBS,
    CTL_OBS_ALL,
    CTL_PING,
    CTL_RING,
    CTL_STATS,
    CTL_STATS_ALL,
    CTL_STOP,
    ControlChannel,
)
from repro.dv.multicore.gateway import ExecutorCatalogEntry, ExecutorGateway
from repro.dv.server import DVServer

__all__ = ["ExecutorSpec", "run_executor"]


@dataclass
class ExecutorSpec:
    """Everything a child needs to become an executor (picklable, so the
    pool works under both ``fork`` and ``spawn`` start methods)."""

    executor_id: str
    host: str
    port: int
    accept: str  # "reuseport" | "fdpass" | "none"
    unix_path: str
    workers: int  # pool size, for the hello extra
    vnodes: int = 32
    rpc_timeout: float = 10.0
    io_workers: int | None = None
    catalog: list[ExecutorCatalogEntry] = field(default_factory=list)
    #: (host, port) of the pool's bulk data plane, advertised by this
    #: executor's ``fetch_info`` replies (None = no data plane).
    data_endpoint: tuple[str, int] | None = None


def run_executor(spec: ExecutorSpec, ctl_sock: socket.socket) -> None:
    """Child-process main: serve until the supervisor's ``ctl.stop``."""
    # A terminal Ctrl-C signals the whole foreground process group; the
    # supervisor coordinates our shutdown over the control channel, so a
    # direct SIGINT here would only race the orderly drain.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    server = DVServer(
        spec.host,
        spec.port,
        mode="selector",
        workers=spec.io_workers,
        reuse_port=True,
        listen=(spec.accept == "reuseport"),
    )
    server.obs.node = spec.executor_id
    try:
        os.unlink(spec.unix_path)
    except OSError:
        pass
    peer_listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    peer_listener.bind(spec.unix_path)
    peer_listener.listen(128)
    server.add_listener(peer_listener, role="peer")
    if spec.data_endpoint is not None:
        server.set_data_endpoint(*spec.data_endpoint)

    catalog = {entry.context.name: entry for entry in spec.catalog}
    gateway = ExecutorGateway(
        spec.executor_id,
        server,
        catalog,
        vnodes=spec.vnodes,
        rpc_timeout=spec.rpc_timeout,
        workers=spec.workers,
    )

    stop_event = threading.Event()
    channel = ControlChannel(
        ctl_sock,
        handler=None,  # bound below (needs the channel itself for stats)
        name=f"ctl-{spec.executor_id}",
        on_down=lambda: stop_event.set(),
        recv_fds=(spec.accept == "fdpass"),
    )

    def handle_ctl(message: dict, fd: int | None) -> dict | None:
        op = message.get("op")
        if op == CTL_PING:
            return {"ok": True}
        if op == CTL_RING:
            executors = message.get("executors") or {}
            active = message.get("active") or []
            reattaches, replays = gateway.apply_ring(executors, active)
            if reattaches or replays:
                # After the reply: replays forward to siblings that may
                # receive this same ring update a moment later.
                threading.Thread(
                    target=gateway.replay,
                    args=(reattaches, replays),
                    name=f"simfs-{spec.executor_id}-replay",
                    daemon=True,
                ).start()
            return {"ok": True, "epoch": gateway.ring.epoch}
        if op == CTL_STATS:
            return {"stats": server._op_stats(None, {})["stats"]}
        if op == CTL_OBS:
            if message.get("kind") == "slow":
                return {"spans": server.slow_spans(
                    int(message.get("limit", 20))
                )}
            return {"spans": server.trace_spans(
                str(message.get("trace_id") or "")
            )}
        if op == CTL_CONN:
            if fd is not None:
                server.adopt_connection(socket.socket(fileno=fd))
            return None
        if op == CTL_DRAIN:
            timeout = float(message.get("timeout", 5.0))
            server.stop_accepting("client")
            return {"drained": server.drain(timeout)}
        if op == CTL_DEACTIVATE:
            reattaches, replays = gateway.release_for_handoff(
                message.get("context")
            )
            return {
                "reattaches": [list(r) for r in reattaches],
                "replays": [list(r) for r in replays],
            }
        if op == CTL_STOP:
            # Reply first (the handler's return), then fall: the timer
            # lets the ctl.reply frame leave before the process exits.
            threading.Timer(0.05, stop_event.set).start()
            return {"ok": True}
        return {"error": 1, "detail": f"unknown control op {op!r}"}

    channel._handler = handle_ctl

    def merged_stats(conn, message: dict) -> dict:
        """Top-level ``stats`` override: ask the supervisor for the
        merged all-executor view; fall back to the local snapshot when
        the supervisor is unreachable (mid-teardown)."""
        try:
            reply = channel.call({"op": CTL_STATS_ALL}, timeout=5.0)
        except (DVConnectionLost, TimeoutError):
            reply = {}
        stats = reply.get("stats")
        if isinstance(stats, dict):
            return {"stats": stats}
        return server._op_stats(conn, message)

    server.register_op("stats", merged_stats, needs_worker=True, replace=True)

    def _pool_spans(query: dict) -> list | None:
        """Pool-merged spans via the supervisor; None when unreachable."""
        try:
            reply = channel.call(dict(query, op=CTL_OBS_ALL), timeout=5.0)
        except (DVConnectionLost, TimeoutError):
            return None
        spans = reply.get("spans")
        return spans if isinstance(spans, list) else None

    def merged_trace(conn, message: dict) -> dict:
        """Top-level ``trace`` override: merge every sibling executor's
        spans through the supervisor, falling back to the local recorder
        when the control plane is unreachable."""
        reply = server._op_trace(conn, message)
        pool = _pool_spans(
            {"kind": "trace", "trace_id": message.get("trace_id")}
        )
        if pool is None:
            return reply
        payload = reply["trace"]
        seen = {span.get("span_id") for span in payload["spans"]}
        for span in pool:
            if span.get("span_id") in seen:
                continue
            seen.add(span.get("span_id"))
            payload["spans"].append(span)
        payload["spans"].sort(
            key=lambda s: (s.get("start", 0.0), s.get("end", 0.0))
        )
        payload["nodes"] = sorted(
            set(payload["nodes"])
            | {s.get("node") for s in payload["spans"] if s.get("node")}
        )
        return reply

    def merged_trace_slow(conn, message: dict) -> dict:
        """Top-level ``trace_slow`` override, same shape as above."""
        reply = server._op_trace_slow(conn, message)
        limit = max(1, int(message.get("limit", 20)))
        pool = _pool_spans({"kind": "slow", "limit": limit})
        if pool is None:
            return reply
        payload = reply["slow"]
        seen = {span.get("span_id") for span in payload["spans"]}
        for span in pool:
            if span.get("span_id") in seen:
                continue
            seen.add(span.get("span_id"))
            payload["spans"].append(span)
        payload["spans"].sort(
            key=lambda s: s.get("duration", 0.0), reverse=True
        )
        payload["spans"] = payload["spans"][:limit]
        payload["nodes"] = sorted(
            set(payload["nodes"])
            | {s.get("node") for s in payload["spans"] if s.get("node")}
        )
        return reply

    server.register_op("trace", merged_trace, needs_worker=True, replace=True)
    server.register_op(
        "trace_slow", merged_trace_slow, needs_worker=True, replace=True
    )

    server.start()
    channel.start()
    channel.send({
        "op": CTL_HELLO,
        "executor": spec.executor_id,
        "pid": os.getpid(),
        "path": spec.unix_path,
    })

    stop_event.wait()
    try:
        gateway.close()
        server.stop(drain_timeout=0)
        channel.close()
    finally:
        os._exit(0)
