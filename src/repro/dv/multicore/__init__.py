"""Multi-core single-node DV engine (shared-nothing shard executors).

One supervisor process spawns N shard-executor processes; each executor
runs its own selector event loop (its own GIL) and owns the disjoint set
of context shards a consistent-hash ring assigns to it.  Client
connections land directly on the owning-or-not executor through an
acceptor tier (SO_REUSEPORT where the kernel supports it, fd passing
otherwise); ops for contexts owned elsewhere are forwarded over per-pair
Unix-socket peer links speaking the binary wire codec.
"""

from repro.dv.multicore.supervisor import MultiCoreServer

__all__ = ["MultiCoreServer"]
