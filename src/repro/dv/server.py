"""The DV daemon: a TCP front end over the sharded coordinator (Sec. III).

One thread per client connection.  Handler threads dispatch straight into
the target context's shard — each shard serializes its own operations
under its own lock, so clients of independent contexts proceed fully in
parallel (no daemon-global lock).  Unsolicited ``ready`` notifications are
pushed to the owning client's socket from whatever thread produced the
file (a simulation worker or another client's handler).

Beyond the classic per-file ops, the daemon speaks two service-level ops:

* ``batch`` — one frame carrying a list of sub-ops executed in order,
  their replies returned in one frame (pipelining for
  ``SIMFS_Acquire``-heavy analyses);
* ``stats`` — a snapshot of the metrics plane (per-shard summaries plus
  every counter/gauge/histogram), also reachable as ``simfs-dv --stats``.

The daemon is also usable in-process via :meth:`DVServer.start` /
:meth:`DVServer.stop` — integration tests and the examples run it that
way on an ephemeral localhost port.
"""

from __future__ import annotations

import argparse
import json
import os
import socket
import threading
from dataclasses import dataclass

from repro.core.context import SimulationContext
from repro.core.errors import ErrorCode, InvalidArgumentError, SimFSError
from repro.dv.coordinator import DVCoordinator, Notification
from repro.dv.launcher import ThreadedLauncher
from repro.dv.protocol import MessageReader, send_message
from repro.metrics import MetricsRegistry
from repro.util.clock import WallClock

__all__ = ["DVServer", "main"]

#: Ops a ``batch`` frame may carry (no nesting, no handshakes).
_BATCHABLE_OPS = frozenset(
    {"open", "acquire", "release", "wclose", "bitrep", "attach", "finalize", "stats"}
)


@dataclass
class _ClientConn:
    client_id: str
    sock: socket.socket
    send_lock: threading.Lock
    contexts: set[str]


class DVServer:
    """Threaded TCP Data Virtualizer daemon."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._host = host
        self._port = port
        self._clock = WallClock()
        self.metrics = MetricsRegistry()
        self.launcher = ThreadedLauncher(self._clock, metrics=self.metrics)
        self.coordinator = DVCoordinator(
            self.launcher, notify=self._push_ready, metrics=self.metrics
        )
        self.launcher.bind(self.coordinator)
        # Client table: mutated by accept/handler threads, read by notifier
        # threads — every access goes through ``_clients_lock``.
        self._clients: dict[str, _ClientConn] = {}
        self._clients_lock = threading.Lock()
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._running = False
        self._handlers = {
            "open": self._op_open,
            "acquire": self._op_acquire,
            "release": self._op_release,
            "wclose": self._op_wclose,
            "bitrep": self._op_bitrep,
            "attach": self._op_attach,
            "finalize": self._op_finalize,
            "batch": self._op_batch,
            "stats": self._op_stats,
        }

    # ------------------------------------------------------------------ #
    # Configuration
    # ------------------------------------------------------------------ #
    def add_context(
        self,
        context: SimulationContext,
        output_dir: str,
        restart_dir: str,
        alpha_delay: float = 0.0,
        tau_delay: float = 0.0,
    ) -> None:
        """Register a context and where its files live."""
        os.makedirs(output_dir, exist_ok=True)
        os.makedirs(restart_dir, exist_ok=True)

        def delete_file(filename: str) -> None:
            try:
                os.unlink(os.path.join(output_dir, filename))
            except FileNotFoundError:
                pass

        shard = self.coordinator.register_context(context, on_evict_file=delete_file)
        self.launcher.register_context(
            context.name, context.driver, output_dir, restart_dir,
            alpha_delay=alpha_delay, tau_delay=tau_delay,
        )
        # Files already on disk (e.g. from the initial simulation) are part
        # of the cache state at daemon start.
        for fname in sorted(os.listdir(output_dir)):
            if context.driver.naming.is_output(fname):
                key = context.key_of(fname)
                cost = float(context.geometry.miss_cost(key))
                shard.area.insert(key, cost=cost)

    def storage_path(self, context_name: str, filename: str) -> str:
        return os.path.join(self.launcher.output_dir(context_name), filename)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def address(self) -> tuple[str, int]:
        """(host, port) the daemon listens on; valid after :meth:`start`."""
        assert self._listener is not None, "server not started"
        return self._listener.getsockname()[:2]

    def start(self) -> None:
        """Bind, listen, and accept clients on a background thread."""
        self._listener = socket.create_server((self._host, self._port))
        self._running = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="simfs-dv-accept", daemon=True
        )
        self._accept_thread.start()

    def stop(self) -> None:
        """Stop accepting and close every client connection."""
        self._running = False
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._clients_lock:
            conns = list(self._clients.values())
            self._clients.clear()
        for conn in conns:
            try:
                conn.sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.sock.close()
            except OSError:
                pass

    def __enter__(self) -> "DVServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # Networking internals
    # ------------------------------------------------------------------ #
    def _accept_loop(self) -> None:
        assert self._listener is not None
        while self._running:
            try:
                sock, _addr = self._listener.accept()
            except OSError:
                return  # listener closed
            try:
                # Reply and ready frames are small; don't let Nagle's
                # algorithm sit on them.  Keepalive makes the reader
                # thread eventually notice half-open peers, so their
                # client_id (reserved against duplicate hellos) frees up.
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_KEEPALIVE, 1)
                # Default kernel keepalive idles for hours; probe after
                # 60s so a crashed client's reserved client_id frees up
                # within ~2 minutes instead.
                if hasattr(socket, "TCP_KEEPIDLE"):
                    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_KEEPIDLE, 60)
                    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_KEEPINTVL, 15)
                    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_KEEPCNT, 4)
            except OSError:
                pass
            threading.Thread(
                target=self._serve_client, args=(sock,), daemon=True
            ).start()

    def _serve_client(self, sock: socket.socket) -> None:
        reader = MessageReader(sock)
        conn: _ClientConn | None = None
        try:
            while True:
                message = reader.read_message()
                if message is None:
                    break
                if conn is None:
                    if message.get("op") != "hello":
                        send_message(
                            sock,
                            {
                                "op": "reply",
                                "req": message.get("req"),
                                "error": int(ErrorCode.ERR_PROTOCOL),
                                "detail": "first message must be hello",
                            },
                        )
                        continue
                    conn = self._handle_hello(sock, message)
                    continue
                self._dispatch(conn, message)
        except (SimFSError, OSError):
            pass
        finally:
            if conn is not None:
                self._drop_client(conn)
            try:
                sock.close()
            except OSError:
                pass

    def _handle_hello(self, sock: socket.socket, message: dict) -> _ClientConn | None:
        client_id = str(message.get("client_id"))
        context_name = message.get("context")
        conn = _ClientConn(client_id, sock, threading.Lock(), set())
        with self._clients_lock:
            if client_id in self._clients:
                # A second hello reusing a live client_id would silently
                # orphan the first connection's notifications: reject it.
                send_message(
                    sock,
                    {
                        "op": "reply",
                        "req": message.get("req"),
                        "error": int(ErrorCode.ERR_INVALID),
                        "detail": f"client_id {client_id!r} is already connected",
                    },
                )
                return None
            self._clients[client_id] = conn
        error = int(ErrorCode.SUCCESS)
        detail = ""
        if context_name:
            try:
                self.coordinator.client_connect(client_id, context_name)
                conn.contexts.add(context_name)
            except SimFSError as exc:
                error, detail = int(exc.code), str(exc)
        self._send(conn, {"op": "reply", "req": message.get("req"),
                          "error": error, "detail": detail})
        return conn

    def _handler_for(self, op):
        return self._handlers.get(op)

    def _dispatch(self, conn: _ClientConn, message: dict) -> None:
        op = message.get("op")
        req = message.get("req")
        handler = self._handler_for(op)
        if handler is None:
            self._send(conn, {"op": "reply", "req": req,
                              "error": int(ErrorCode.ERR_PROTOCOL),
                              "detail": f"unknown op {op!r}"})
            return
        payload = self._run_op(conn, handler, message)
        payload.update({"op": "reply", "req": req})
        self._send(conn, payload)

    def _run_op(self, conn: _ClientConn, handler, message: dict) -> dict:
        """Execute one op body, mapping SimFS errors to reply payloads."""
        try:
            payload = handler(conn, message)
            payload.setdefault("error", int(ErrorCode.SUCCESS))
        except SimFSError as exc:
            payload = {"error": int(exc.code), "detail": str(exc)}
        return payload

    # -- op handlers ------------------------------------------------------ #
    def _op_attach(self, conn: _ClientConn, message: dict) -> dict:
        context = message["context"]
        self.coordinator.client_connect(conn.client_id, context)
        conn.contexts.add(context)
        return {}

    def _op_open(self, conn: _ClientConn, message: dict) -> dict:
        result = self.coordinator.handle_open(
            conn.client_id, message["context"], message["file"],
            self._clock.now(),
        )
        return {
            "available": result.available,
            "state": result.state.value,
            "wait": result.estimated_wait,
        }

    def _op_acquire(self, conn: _ClientConn, message: dict) -> dict:
        results = self.coordinator.handle_acquire(
            conn.client_id, message["context"], list(message["files"]),
            self._clock.now(),
        )
        return {
            "results": [
                {"file": r.filename, "available": r.available,
                 "state": r.state.value, "wait": r.estimated_wait}
                for r in results
            ]
        }

    def _op_release(self, conn: _ClientConn, message: dict) -> dict:
        self.coordinator.handle_release(
            conn.client_id, message["context"], message["file"],
            self._clock.now(),
        )
        return {}

    def _op_wclose(self, conn: _ClientConn, message: dict) -> dict:
        self.coordinator.sim_file_closed(
            message["context"], message["file"], self._clock.now()
        )
        return {}

    def _op_bitrep(self, conn: _ClientConn, message: dict) -> dict:
        context = message["context"]
        filename = message["file"]
        path = message.get("path")
        if path is None:
            path = self.storage_path(context, filename)
        else:
            self._check_bitrep_path(context, path)
        matches = self.coordinator.handle_bitrep(context, filename, path)
        return {"matches": matches}

    def _check_bitrep_path(self, context: str, path: str) -> None:
        """A client-supplied ``path`` must stay inside the context's
        storage or restart directory — the checksum result would otherwise
        let a TCP client probe arbitrary server files byte-for-byte."""
        real = os.path.realpath(path)
        for allowed in (
            self.launcher.output_dir(context),
            self.launcher.restart_dir(context),
        ):
            base = os.path.realpath(allowed)
            if real == base or real.startswith(base + os.sep):
                return
        raise InvalidArgumentError(
            f"bitrep path {path!r} is outside the {context!r} storage areas"
        )

    def _op_finalize(self, conn: _ClientConn, message: dict) -> dict:
        context = message["context"]
        self.coordinator.client_disconnect(
            conn.client_id, context, self._clock.now()
        )
        conn.contexts.discard(context)
        return {}

    def _op_batch(self, conn: _ClientConn, message: dict) -> dict:
        """Pipelined sub-ops: one request frame, one reply frame.

        Sub-ops execute in order; each entry of ``results`` is the payload
        the sub-op would have produced as its own reply (including its own
        ``error`` field), so one failing sub-op does not abort the rest.
        """
        sub_ops = message.get("ops")
        if not isinstance(sub_ops, list):
            raise InvalidArgumentError("batch requires a list under 'ops'")
        results = []
        for sub in sub_ops:
            sub_op = sub.get("op") if isinstance(sub, dict) else None
            handler = self._handler_for(sub_op) if sub_op in _BATCHABLE_OPS else None
            if handler is None:
                results.append({
                    "op": sub_op,
                    "error": int(ErrorCode.ERR_PROTOCOL),
                    "detail": f"unknown or non-batchable sub-op {sub_op!r}",
                })
                continue
            payload = self._run_op(conn, handler, sub)
            payload["op"] = sub_op
            results.append(payload)
        return {"results": results}

    def _op_stats(self, conn: _ClientConn, message: dict) -> dict:
        snapshot = self.coordinator.stats_snapshot()
        with self._clients_lock:
            snapshot["server"] = {"connected_clients": len(self._clients)}
        return {"stats": snapshot}

    # ------------------------------------------------------------------ #
    def _drop_client(self, conn: _ClientConn) -> None:
        with self._clients_lock:
            # Only remove our own entry — a rejected duplicate hello must
            # not evict the live connection that owns the client_id.
            if self._clients.get(conn.client_id) is conn:
                del self._clients[conn.client_id]
        for context in list(conn.contexts):
            try:
                self.coordinator.client_disconnect(
                    conn.client_id, context, self._clock.now()
                )
            except SimFSError:
                pass

    def _push_ready(self, notification: Notification) -> None:
        with self._clients_lock:
            conn = self._clients.get(notification.client_id)
        if conn is None:
            return
        try:
            self._send(
                conn,
                {
                    "op": "ready",
                    "context": notification.context_name,
                    "file": notification.filename,
                    "ok": notification.ok,
                },
            )
        except OSError:
            pass

    def _send(self, conn: _ClientConn, message: dict) -> None:
        with conn.send_lock:
            send_message(conn.sock, message)


# --------------------------------------------------------------------- #
# CLI entry point: `simfs-dv --config dv.json` / `simfs-dv --stats`
# --------------------------------------------------------------------- #
def main(argv: list[str] | None = None) -> int:
    """Run a DV daemon from a JSON configuration file, or query a running
    daemon with ``--stats``.

    Config schema::

        {"host": "127.0.0.1", "port": 7878,
         "contexts": [
           {"name": "cosmo", "simulator": "cosmo",
            "delta_d": 5, "delta_r": 60, "num_timesteps": 5760,
            "output_dir": "...", "restart_dir": "...",
            "max_storage_bytes": 100000000, "policy": "dcl", "smax": 8}]}
    """
    from repro.core.context import ContextConfig
    from repro.core.perfmodel import PerformanceModel
    from repro.simulators import CosmoDriver, FlashDriver, SyntheticDriver

    parser = argparse.ArgumentParser(prog="simfs-dv", description=main.__doc__)
    parser.add_argument("--config", help="JSON config path (daemon mode)")
    parser.add_argument(
        "--stats", action="store_true",
        help="print the stats snapshot of a running daemon and exit",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="daemon host for --stats (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=7878,
                        help="daemon port for --stats (default 7878)")
    args = parser.parse_args(argv)

    if args.stats:
        from repro.client.dvlib import fetch_stats

        print(json.dumps(fetch_stats(args.host, args.port), indent=1, sort_keys=True))
        return 0
    if not args.config:
        parser.error("--config is required unless --stats is given")

    with open(args.config, encoding="utf-8") as fh:
        config = json.load(fh)

    server = DVServer(config.get("host", "127.0.0.1"), config.get("port", 7878))
    drivers = {"cosmo": CosmoDriver, "flash": FlashDriver, "synthetic": SyntheticDriver}
    for spec in config.get("contexts", []):
        cc = ContextConfig(
            name=spec["name"],
            delta_d=spec["delta_d"],
            delta_r=spec["delta_r"],
            num_timesteps=spec.get("num_timesteps"),
            max_storage_bytes=spec.get("max_storage_bytes"),
            replacement_policy=spec.get("policy", "dcl"),
            smax=spec.get("smax", 8),
        )
        driver_cls = drivers[spec.get("simulator", "synthetic")]
        driver = driver_cls(cc.geometry, prefix=spec["name"])
        perf = PerformanceModel(
            tau_sim=spec.get("tau_sim", 1.0), alpha_sim=spec.get("alpha_sim", 0.0)
        )
        context = SimulationContext(config=cc, driver=driver, perf=perf)
        server.add_context(context, spec["output_dir"], spec["restart_dir"])
    server.start()
    host, port = server.address
    print(f"simfs-dv listening on {host}:{port}")
    try:
        threading.Event().wait()
    except KeyboardInterrupt:
        server.stop()
    return 0
