"""The DV daemon: a TCP front end over the sharded coordinator (Sec. III).

Two interchangeable network front ends drive the same op handlers:

* ``selector`` (default) — an event-driven server: **one I/O thread**
  multiplexes every client socket through :mod:`selectors`, decodes
  frames incrementally, and hands complete messages to a small worker
  pool that dispatches into the target context's shard.  Each connection
  is processed serially (its messages keep their arrival order) but
  different connections run on different workers, so independent
  contexts still proceed fully in parallel.  All writes go through
  per-connection output buffers drained by the I/O thread — queued
  ``ready`` notifications and replies coalesce into single ``send``
  calls instead of one syscall per frame.
* ``threaded`` — the classic one-thread-per-connection loop, kept for
  comparison benchmarks (``benchmarks/bench_wire.py``) and as a fallback.

Both front ends speak both wire codecs (:mod:`repro.dv.protocol`): the
``hello`` handshake negotiates ``legacy`` newline-JSON or the ``binary``
length-prefixed codec per connection, so old clients keep working.

Beyond the classic per-file ops, the daemon speaks two service-level ops:

* ``batch`` — one frame carrying a list of sub-ops executed in order,
  their replies returned in one frame (pipelining for
  ``SIMFS_Acquire``-heavy analyses);
* ``stats`` — a snapshot of the metrics plane (per-shard summaries plus
  every counter/gauge/histogram), also reachable as ``simfs-dv --stats``.
  The wire itself is metered too: ``wire.frames_sent`` /
  ``wire.bytes_sent`` / ``wire.frames_recv`` / ``wire.bytes_recv``.

The daemon is also usable in-process via :meth:`DVServer.start` /
:meth:`DVServer.stop` — integration tests and the examples run it that
way on an ephemeral localhost port.
"""

from __future__ import annotations

import argparse
import collections
import json
import os
import queue
import selectors
import socket
import threading
import time
from dataclasses import dataclass, field

from repro.core.context import SimulationContext
from repro.core.errors import (
    ContextError,
    ErrorCode,
    InvalidArgumentError,
    ProtocolError,
    SimFSError,
)
from repro.dv.coordinator import DVCoordinator, Notification
from repro.dv.launcher import ThreadedLauncher
from repro.dv.protocol import (
    CODEC_LEGACY,
    PROTOCOL_VERSION,
    MessageReader,
    StreamDecoder,
    encode_frame,
    encode_open_reply,
    negotiate_codec,
    negotiate_trace,
)
from repro.metrics import MetricsRegistry
from repro.obs import SpanRecorder
from repro.obs.export import render_prometheus
from repro.util.clock import WallClock

__all__ = ["DVServer", "main"]

#: Ops a ``batch`` frame may carry (no nesting, no handshakes).
_BATCHABLE_OPS = frozenset(
    {"open", "acquire", "release", "wclose", "bitrep", "attach", "finalize", "stats"}
)

_RECV_SIZE = 65536

#: Flush a worker's reply collector once it holds this many bytes, even
#: mid-drain, so a huge pipelined burst cannot buffer unboundedly.
_COLLECT_MAX = 1 << 18

#: Backpressure high-water marks: stop reading a connection whose queued
#: messages or un-drained output exceed these (the threaded front end got
#: the same effect implicitly by blocking in read/sendall).
_INBOX_HIGH = 1024
_OUTBUF_HIGH = 1 << 22

#: Hard cap on a connection's queued output.  Read-side backpressure
#: (``paused``) only throttles a peer's *requests*; server-initiated
#: fan-out (``ready`` notifications) keeps landing in ``outbuf`` no matter
#: how slowly the peer reads.  A connection that lets its backlog grow
#: past this is stalled or dead and gets disconnected instead of growing
#: the buffer without bound.
_OUTBUF_HARD = 4 * _OUTBUF_HIGH


#: Ops that can trigger storage-area eviction (and hence ``os.unlink`` on
#: the PFS) when a context is capacity-bounded.
_EVICTING_OPS = frozenset({"release", "wclose", "finalize"})

#: Context-addressed client ops a cluster gateway may forward to the
#: owning peer when the named context is not registered locally.
_ROUTABLE_OPS = frozenset(
    {"open", "acquire", "release", "wclose", "bitrep", "attach", "finalize",
     "fetch_info"}
)

#: Per-op service-time buckets (seconds): finer than DEFAULT_BUCKETS at the
#: microsecond end, where the in-memory ops live.
_SERVICE_BUCKETS = (
    0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025,
    0.005, 0.025, 0.1, 0.5, 2.5,
)


@dataclass(frozen=True)
class _ExtraOp:
    """A service-level op registered by an embedding layer (the cluster
    node adds ``fwd``/``gossip`` this way).  A handler returning ``None``
    sends no reply (one-way frames such as routed ``ready`` deliveries)."""

    handler: "collections.abc.Callable"
    reply_op: str = "reply"
    needs_worker: bool = False


@dataclass
class _ClientConn:
    """Per-connection state shared by both front ends.

    ``send_lock`` guards the socket (threaded mode) or the output buffer
    (selector mode); ``inbox``/``busy`` implement the selector mode's
    per-connection serialization (a connection is queued to the worker
    pool only while it is not already being worked on).
    """

    sock: socket.socket
    client_id: str | None = None
    codec: str = CODEC_LEGACY
    #: Tracing negotiated on hello: traced packed binary frames (and
    #: ``tc`` fields on replies/notifications) may be sent to this peer.
    trace: bool = False
    contexts: set[str] = field(default_factory=set)
    send_lock: threading.Lock = field(default_factory=threading.Lock)
    decoder: StreamDecoder = field(default_factory=StreamDecoder)
    outbuf: bytearray = field(default_factory=bytearray)
    inbox: collections.deque = field(default_factory=collections.deque)
    busy: bool = False
    closing: bool = False
    want_write: bool = False
    #: A flush request for this connection is already queued to the I/O
    #: thread — appending more output needs no further wake-up.
    flush_requested: bool = False
    #: Reading is suspended: inbox or outbuf crossed the high-water mark
    #: (backpressure — the peer outpaces its shard or stopped draining).
    paused: bool = False
    #: Event mask currently registered with the selector (0 = none).
    sel_mask: int = 0


class DVServer:
    """TCP Data Virtualizer daemon (selector event loop or thread-per-client)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        mode: str = "selector",
        workers: int | None = None,
        reuse_port: bool = False,
        listen: bool = True,
    ) -> None:
        if mode not in ("selector", "threaded"):
            raise InvalidArgumentError(f"unknown server mode {mode!r}")
        if not listen and mode != "selector":
            raise InvalidArgumentError(
                "listen=False (adopted-connection mode) requires mode='selector'"
            )
        self._host = host
        self._port = port
        self._reuse_port = reuse_port
        self._listen = listen
        self.mode = mode
        self._num_workers = workers or max(2, min(8, os.cpu_count() or 2))
        self._clock = WallClock()
        self.metrics = MetricsRegistry()
        # Span plane: every subsystem below (shards, launcher, cluster
        # node, data plane) records into this one recorder; the node id
        # is stamped in by the embedding layer (see repro.cluster.node).
        self.obs = SpanRecorder(node="dv")
        self.launcher = ThreadedLauncher(
            self._clock, metrics=self.metrics, obs=self.obs
        )
        self.coordinator = DVCoordinator(
            self.launcher, notify=self._push_ready, metrics=self.metrics,
            obs=self.obs,
        )
        self.launcher.bind(self.coordinator)
        # Client table: mutated by accept/handler threads, read by notifier
        # threads — every access goes through ``_clients_lock``.
        self._clients: dict[str, _ClientConn] = {}
        self._clients_lock = threading.Lock()
        self._listener: socket.socket | None = None
        # Extra listening sockets added before start(): (sock, role).
        # ``stop_accepting(role)`` closes every listener of one role, so
        # an executor can refuse new clients while its peer plane (role
        # "peer") keeps accepting forwarded traffic during a drain.
        self._extra_listeners: list[tuple[socket.socket, str]] = []
        self._listener_roles: dict[int, str] = {}
        # Sockets handed over by an external acceptor (fd passing): the
        # I/O thread registers them on its next pass.
        self._adopt_pending: collections.deque[socket.socket] = collections.deque()
        self._stop_accept_pending: collections.deque[str] = collections.deque()
        self._accept_thread: threading.Thread | None = None
        self._io_thread: threading.Thread | None = None
        self._worker_threads: list[threading.Thread] = []
        self._work_queue: queue.Queue[_ClientConn | None] = queue.Queue()
        self._selector: selectors.DefaultSelector | None = None
        self._wake_r: socket.socket | None = None
        self._wake_w: socket.socket | None = None
        # Connections whose outbuf gained data / that must be closed /
        # that may resume reading; the I/O thread drains all three after
        # a wake-up.
        self._flush_pending: collections.deque[_ClientConn] = collections.deque()
        self._close_pending: collections.deque[_ClientConn] = collections.deque()
        self._resume_pending: collections.deque[_ClientConn] = collections.deque()
        self._running = False
        # Set when any context has a bounded storage area: its release/
        # wclose/finalize ops may evict-and-unlink on the PFS and must
        # not run on the event loop (see _needs_worker).
        self._evicting_inline_unsafe = False
        # Cluster-tier hooks, all optional (see repro.cluster.node):
        #   _extra_ops    — service ops beyond the classic table (fwd/gossip)
        #   _route_op     — gateway: handle an op for a non-local context,
        #                   returning the reply payload (runs on a worker)
        #   _ready_router — deliver a notification whose client_id is not a
        #                   local connection (a proxied cluster client)
        #   _hello_extra  — extra fields merged into every hello reply
        #   _drop_hook    — observe client disconnects (proxy cleanup)
        self._extra_ops: dict[str, _ExtraOp] = {}
        self._route_op = None
        self._ready_router = None
        self._hello_extra = None
        self._drop_hook = None
        # One-slot memo so a notification fanned out to many waiters is
        # encoded once per codec, not once per waiter.
        self._ready_memo: tuple[tuple[str, str, bool], dict[str, bytes]] | None = None
        self._ready_memo_lock = threading.Lock()
        # Worker-local reply collector: while a worker drains one
        # connection's inbox, its replies accumulate here and leave in a
        # single send (see _process_inbox).
        self._tl = threading.local()
        self._m_frames_sent = self.metrics.counter("wire.frames_sent")
        self._m_bytes_sent = self.metrics.counter("wire.bytes_sent")
        self._m_frames_recv = self.metrics.counter("wire.frames_recv")
        self._m_bytes_recv = self.metrics.counter("wire.bytes_recv")
        # Per-op service-time histograms (p50/p95/p99 in the stats op),
        # created lazily on first dispatch of each op.
        self._op_hist: dict[str, object] = {}
        self._handlers = {
            "open": self._op_open,
            "acquire": self._op_acquire,
            "release": self._op_release,
            "wclose": self._op_wclose,
            "bitrep": self._op_bitrep,
            "attach": self._op_attach,
            "finalize": self._op_finalize,
            "batch": self._op_batch,
            "stats": self._op_stats,
            "fetch_info": self._op_fetch_info,
            "trace": self._op_trace,
            "trace_slow": self._op_trace_slow,
            "metrics_text": self._op_metrics_text,
        }
        # (host, port) of the bulk data plane serving this daemon's files,
        # advertised through the fetch_info op (see set_data_endpoint).
        self._data_endpoint: tuple[str, int] | None = None
        self._m_slow_close = self.metrics.counter("wire.slow_disconnects")

    # ------------------------------------------------------------------ #
    # Configuration
    # ------------------------------------------------------------------ #
    def add_context(
        self,
        context: SimulationContext,
        output_dir: str,
        restart_dir: str,
        alpha_delay: float = 0.0,
        tau_delay: float = 0.0,
    ) -> None:
        """Register a context and where its files live."""
        os.makedirs(output_dir, exist_ok=True)
        os.makedirs(restart_dir, exist_ok=True)

        def delete_file(filename: str) -> None:
            try:
                os.unlink(os.path.join(output_dir, filename))
            except FileNotFoundError:
                pass

        shard = self.coordinator.register_context(context, on_evict_file=delete_file)
        if context.config.max_storage_bytes is not None:
            self._evicting_inline_unsafe = True
        self.launcher.register_context(
            context.name, context.driver, output_dir, restart_dir,
            alpha_delay=alpha_delay, tau_delay=tau_delay,
        )
        # Files already on disk (e.g. from the initial simulation) are part
        # of the cache state at daemon start.
        for fname in sorted(os.listdir(output_dir)):
            if context.driver.naming.is_output(fname):
                key = context.key_of(fname)
                cost = float(context.geometry.miss_cost(key))
                shard.area.insert(key, cost=cost)

    def storage_path(self, context_name: str, filename: str) -> str:
        return os.path.join(self.launcher.output_dir(context_name), filename)

    def register_op(
        self,
        name: str,
        handler,
        reply_op: str = "reply",
        needs_worker: bool = False,
        replace: bool = False,
    ) -> None:
        """Add a service-level op to the dispatch table.

        ``handler(conn, message) -> payload`` follows the built-in handler
        contract; the reply frame is sent as ``reply_op``.  Ops that may
        block (peer round trips, file I/O) must pass ``needs_worker=True``
        so the selector front end never runs them on the event loop.

        ``replace=True`` lets an embedding layer shadow an existing op at
        the top level (the multi-core executor overrides ``stats`` with a
        merged cross-process view); the built-in handler stays reachable
        for ``batch`` sub-ops.
        """
        if not replace and (
            name in self._handlers or name in self._extra_ops or name == "hello"
        ):
            raise InvalidArgumentError(f"op {name!r} is already defined")
        if name == "hello":
            raise InvalidArgumentError("the hello handshake cannot be replaced")
        self._extra_ops[name] = _ExtraOp(handler, reply_op, needs_worker)

    def set_data_endpoint(self, host: str, port: int) -> None:
        """Advertise the bulk data plane serving this daemon's context
        files; ``fetch_info`` replies carry it so clients know where to
        pull bytes from."""
        self._data_endpoint = (host, int(port))

    def data_endpoint(self) -> tuple[str, int] | None:
        return self._data_endpoint

    def set_cluster_hooks(
        self,
        route_op=None,
        ready_router=None,
        hello_extra=None,
        drop_hook=None,
    ) -> None:
        """Install the gateway/membership callbacks (cluster tier)."""
        self._route_op = route_op
        self._ready_router = ready_router
        self._hello_extra = hello_extra
        self._drop_hook = drop_hook

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def address(self) -> tuple[str, int]:
        """(host, port) the daemon listens on; valid after :meth:`start`."""
        assert self._listener is not None, "server not started"
        return self._listener.getsockname()[:2]

    def add_listener(self, sock: socket.socket, role: str = "client") -> None:
        """Register an extra bound+listening socket to accept from.

        Must be called before :meth:`start` (selector mode only).  The
        multi-core executor adds its Unix-domain peer listener (role
        ``"peer"``) and, under SO_REUSEPORT, its share of the client port
        (role ``"client"``) this way.
        """
        if self._running:
            raise InvalidArgumentError("add_listener must precede start()")
        if self.mode != "selector":
            raise InvalidArgumentError("extra listeners require mode='selector'")
        self._extra_listeners.append((sock, role))

    @staticmethod
    def make_reuseport_listener(
        host: str, port: int, listen: bool = True
    ) -> socket.socket:
        """A TCP socket bound with SO_REUSEADDR + SO_REUSEPORT.

        Every socket sharing a port must set both options consistently
        (mixing them makes later binds fail with EADDRINUSE on some
        kernels).  ``listen=False`` returns the socket bound but not
        listening — a bound-not-listening TCP socket receives no SYNs, so
        the supervisor uses one purely to reserve the port number while
        executors carry the real listeners.
        """
        if not hasattr(socket, "SO_REUSEPORT"):  # pragma: no cover
            raise OSError("SO_REUSEPORT is not supported on this platform")
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            sock.bind((host, port))
            if listen:
                sock.listen(128)
        except OSError:
            sock.close()
            raise
        return sock

    def adopt_connection(self, sock: socket.socket) -> None:
        """Take ownership of an already-accepted client socket.

        The fd-passing acceptor tier hands sockets over this way: the
        supervisor accepts, picks an executor, ships the fd, and the
        executor adopts it here.  Thread-safe; the I/O thread registers
        the socket on its next pass.
        """
        if self.mode == "threaded":
            self._tune_socket(sock)
            threading.Thread(
                target=self._serve_client, args=(sock,), daemon=True
            ).start()
            return
        self._adopt_pending.append(sock)
        self._wake()

    def stop_accepting(self, role: str = "client") -> None:
        """Close every listener of ``role`` without touching live
        connections (phase one of a graceful drain).  Thread-safe."""
        if self.mode == "threaded" or self._selector is None:
            if role == "client" and self._listener is not None:
                try:
                    self._listener.close()
                except OSError:
                    pass
            return
        self._stop_accept_pending.append(role)
        self._wake()

    def start(self) -> None:
        """Bind, listen, and serve clients on background threads."""
        if self._listen:
            if self._reuse_port:
                self._listener = self.make_reuseport_listener(
                    self._host, self._port
                )
            else:
                self._listener = socket.create_server((self._host, self._port))
        self._running = True
        if self.mode == "threaded":
            self._accept_thread = threading.Thread(
                target=self._accept_loop, name="simfs-dv-accept", daemon=True
            )
            self._accept_thread.start()
            return
        self._selector = selectors.DefaultSelector()
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        listeners = list(self._extra_listeners)
        if self._listener is not None:
            listeners.insert(0, (self._listener, "client"))
        for sock, listener_role in listeners:
            sock.setblocking(False)
            self._listener_roles[sock.fileno()] = listener_role
            self._selector.register(sock, selectors.EVENT_READ, ("accept", sock))
        self._selector.register(self._wake_r, selectors.EVENT_READ, "wake")
        for idx in range(self._num_workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"simfs-dv-worker-{idx}", daemon=True
            )
            thread.start()
            self._worker_threads.append(thread)
        self._io_thread = threading.Thread(
            target=self._io_loop, name="simfs-dv-io", daemon=True
        )
        self._io_thread.start()

    def stop(self, drain_timeout: float = 5.0) -> None:
        """Stop accepting, drain in-flight work, and close every client.

        Graceful teardown: new connections stop first, then (selector
        mode) running re-simulations report their last files, the worker
        pool finishes the queued messages, and every per-connection
        coalescing writer is flushed — a ``ready`` notification or reply
        already produced (or about to be, by an in-flight simulation) is
        delivered instead of dropped with the socket.  ``drain_timeout``
        bounds the whole wait; pass ``0`` for an abrupt teardown (what a
        crash looks like to clients and cluster peers).
        """
        listeners = [sock for sock, _role in self._extra_listeners]
        if self._listener is not None:
            listeners.insert(0, self._listener)
        for sock in listeners:
            try:
                sock.close()
            except OSError:
                pass
        if self.mode == "selector" and drain_timeout > 0 and self._running:
            self._drain_for_stop(drain_timeout)
        self._running = False
        if self.mode == "selector":
            self._wake()
            if self._io_thread is not None:
                self._io_thread.join(timeout=10.0)
            for _ in self._worker_threads:
                self._work_queue.put(None)
            for thread in self._worker_threads:
                thread.join(timeout=10.0)
            self._worker_threads.clear()
        with self._clients_lock:
            conns = list(self._clients.values())
            self._clients.clear()
        for conn in conns:
            self._shutdown_socket(conn.sock)

    def drain(self, timeout: float) -> bool:
        """Quiesce without tearing down: wait until in-flight simulations
        reported, inboxes emptied and output buffers flushed.  Returns
        True when fully drained within ``timeout``.  Phase two of the
        multi-core graceful stop (after :meth:`stop_accepting`); existing
        connections keep being served throughout and afterwards.
        """
        if self.mode != "selector" or not self._running:
            return True
        return self._drain_for_stop(timeout)

    def _drain_for_stop(self, timeout: float) -> bool:
        """Best-effort quiesce before teardown: wait until running
        re-simulations have reported (their ready notifications are what
        clients block on), the worker pool has drained every inbox, and
        the I/O thread has flushed every output buffer (the I/O machinery
        keeps running throughout)."""
        deadline = time.monotonic() + timeout
        # The slow part first, event-driven: block on the launcher's idle
        # signal while in-flight re-simulations finish, instead of
        # spinning the poll loop below at 5ms for their whole runtime.
        self.launcher.wait_idle(timeout)
        while time.monotonic() < deadline:
            with self._clients_lock:
                conns = list(self._clients.values())
            pending = (
                not self._work_queue.empty()
                or self.launcher.running_threads > 0
            )
            for conn in conns:
                with conn.send_lock:
                    if conn.closing:
                        continue
                    if conn.busy or conn.inbox:
                        pending = True
                    elif conn.outbuf:
                        pending = True
                        if not conn.flush_requested:
                            conn.flush_requested = True
                            self._flush_pending.append(conn)
            if not pending:
                return True
            self._wake()
            time.sleep(0.005)
        return False

    def __enter__(self) -> "DVServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    @staticmethod
    def _shutdown_socket(sock: socket.socket) -> None:
        try:
            sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            sock.close()
        except OSError:
            pass

    @staticmethod
    def _tune_socket(sock: socket.socket) -> None:
        try:
            # Reply and ready frames are small; don't let Nagle's
            # algorithm sit on them.  Keepalive makes the server
            # eventually notice half-open peers, so their client_id
            # (reserved against duplicate hellos) frees up.
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_KEEPALIVE, 1)
            # Default kernel keepalive idles for hours; probe after 60s
            # so a crashed client's reserved client_id frees up within
            # ~2 minutes instead.
            if hasattr(socket, "TCP_KEEPIDLE"):
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_KEEPIDLE, 60)
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_KEEPINTVL, 15)
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_KEEPCNT, 4)
        except OSError:
            pass

    # ------------------------------------------------------------------ #
    # Selector front end
    # ------------------------------------------------------------------ #
    def _wake(self) -> None:
        if self._wake_w is None:
            return
        try:
            self._wake_w.send(b"\x00")
        except OSError:
            pass

    def _io_loop(self) -> None:
        assert self._selector is not None
        try:
            while self._running:
                events = self._selector.select(timeout=1.0)
                for key, mask in events:
                    data = key.data
                    if isinstance(data, tuple) and data[0] == "accept":
                        self._accept_ready(data[1])
                    elif data == "wake":
                        self._drain_wake()
                    else:
                        conn: _ClientConn = data
                        if mask & selectors.EVENT_READ:
                            self._read_ready(conn)
                        if mask & selectors.EVENT_WRITE and not conn.closing:
                            self._flush_conn(conn)
                self._drain_stop_accept_requests()
                self._drain_adopt_requests()
                self._drain_flush_requests()
                self._drain_resume_requests()
                self._drain_close_requests()
        finally:
            try:
                self._selector.close()
            except OSError:
                pass
            for sock in (self._wake_r, self._wake_w):
                if sock is not None:
                    try:
                        sock.close()
                    except OSError:
                        pass

    def _accept_ready(self, listener: socket.socket) -> None:
        assert self._selector is not None
        while True:
            try:
                sock, _addr = listener.accept()
            except BlockingIOError:
                return
            except OSError:
                return  # listener closed
            self._register_accepted(sock)

    def _register_accepted(self, sock: socket.socket) -> None:
        assert self._selector is not None
        self._tune_socket(sock)
        sock.setblocking(False)
        conn = _ClientConn(sock)
        try:
            self._selector.register(sock, selectors.EVENT_READ, conn)
            conn.sel_mask = selectors.EVENT_READ
        except (KeyError, ValueError, OSError):
            self._shutdown_socket(sock)

    def _drain_adopt_requests(self) -> None:
        while True:
            try:
                sock = self._adopt_pending.popleft()
            except IndexError:
                return
            if self._running:
                self._register_accepted(sock)
            else:
                self._shutdown_socket(sock)

    def _drain_stop_accept_requests(self) -> None:
        assert self._selector is not None
        while True:
            try:
                role = self._stop_accept_pending.popleft()
            except IndexError:
                return
            listeners = list(self._extra_listeners)
            if self._listener is not None:
                listeners.insert(0, (self._listener, "client"))
            for sock, listener_role in listeners:
                if listener_role != role:
                    continue
                try:
                    self._selector.unregister(sock)
                except (KeyError, ValueError, OSError):
                    pass
                try:
                    sock.close()
                except OSError:
                    pass

    def _drain_wake(self) -> None:
        assert self._wake_r is not None
        try:
            while self._wake_r.recv(4096):
                pass
        except (BlockingIOError, OSError):
            pass

    def _read_ready(self, conn: _ClientConn) -> None:
        try:
            chunk = conn.sock.recv(_RECV_SIZE)
        except BlockingIOError:
            return
        except OSError:
            self._close_conn(conn)
            return
        if not chunk:
            self._close_conn(conn)
            return
        self._m_bytes_recv.inc(len(chunk))
        conn.decoder.feed(chunk)
        messages = []
        try:
            while True:
                message = conn.decoder.next_message()
                if message is None:
                    break
                if "tc" in message:
                    # Traced request: stamp arrival so dispatch can emit a
                    # queue-wait span (untraced messages pay nothing).
                    message["_obs_t0"] = time.time()
                messages.append(message)
        except ProtocolError:
            # Unparseable or oversized stream: the only safe move is to
            # drop the connection (framing is lost).
            self._close_conn(conn)
            return
        if not messages:
            return
        self._m_frames_recv.inc(len(messages))
        with conn.send_lock:
            backlog = conn.busy or bool(conn.inbox)
            if backlog:
                conn.inbox.extend(messages)
                schedule = not conn.busy
                if schedule:
                    conn.busy = True
                # Backpressure: a peer outpacing its shard (or one that
                # stopped draining replies) must not grow the queues
                # without bound — stop reading until they drain.
                conn.paused = (
                    len(conn.inbox) >= _INBOX_HIGH
                    or len(conn.outbuf) >= _OUTBUF_HIGH
                )
        if backlog:
            self._update_interest(conn)
            if schedule:
                self._work_queue.put(conn)
            return
        self._run_inline(conn, messages)
        with conn.send_lock:
            conn.paused = len(conn.outbuf) >= _OUTBUF_HIGH
        self._update_interest(conn)

    def _needs_worker(self, message: dict) -> bool:
        """True for ops that may block and therefore must not run on the
        event loop: ``bitrep`` checksums a whole output step off the PFS;
        when any registered context has a bounded storage area, ``release``/
        ``wclose``/``finalize`` may evict and delete files on the PFS;
        registered service ops (``fwd``/``gossip``) declare themselves; and
        any op the cluster gateway must forward to a peer blocks on that
        round trip."""
        op = message.get("op")
        if op in ("bitrep", "fetch_info") or (
            self._evicting_inline_unsafe and op in _EVICTING_OPS
        ):
            return True
        extra = self._extra_ops.get(op)
        if extra is not None:
            return extra.needs_worker
        if op == "hello" and self._hello_extra is not None:
            # The hello-extra hook may contend on the cluster lock, which
            # activation can hold across PFS scans — keep it off the loop.
            return True
        if self._route_op is not None:
            context = message.get("context")
            if (
                isinstance(context, str)
                and (op in _ROUTABLE_OPS or op == "hello")
                and not self.coordinator.has_context(context)
            ):
                return True
        if op == "batch":
            sub_ops = message.get("ops")
            if isinstance(sub_ops, list):
                return any(
                    isinstance(sub, dict) and self._needs_worker(sub)
                    for sub in sub_ops
                )
        return False

    def _run_inline(self, conn: _ClientConn, messages: list[dict]) -> None:
        """Hot path: execute a quiescent connection's batch on the event
        loop itself — in-memory ops (open/acquire/release/...) never pay
        a worker-pool hop.  The first op that may block (a ``bitrep``
        checksum reads the file off the PFS) hands the rest of the batch
        to the pool, keeping the loop responsive."""
        tl = self._tl
        tl.conn = conn
        tl.buf = bytearray()
        tl.frames = 0
        try:
            for idx, message in enumerate(messages):
                if self._needs_worker(message):
                    # Flush before handing over so replies leave in the
                    # order their requests arrived.
                    self._flush_collector()
                    with conn.send_lock:
                        conn.inbox.extend(messages[idx:])
                        conn.busy = True
                    self._work_queue.put(conn)
                    return
                try:
                    self._handle_message(conn, message)
                except Exception:
                    tl.frames = 0  # the conn is going down: drop replies
                    self._close_conn(conn)
                    return
                if len(tl.buf) >= _COLLECT_MAX:
                    self._flush_collector()
        finally:
            self._flush_collector()
            tl.conn = None

    def _flush_conn(self, conn: _ClientConn) -> None:
        """Write as much buffered output as the socket accepts — every
        frame queued since the last flush leaves in one ``send``."""
        failed = False
        with conn.send_lock:
            conn.flush_requested = False
            if conn.outbuf:
                try:
                    sent = conn.sock.send(conn.outbuf)
                    del conn.outbuf[:sent]
                except BlockingIOError:
                    pass
                except OSError:
                    conn.outbuf.clear()
                    failed = True
            if not failed:
                conn.want_write = bool(conn.outbuf)
                if conn.paused and len(conn.outbuf) < _OUTBUF_HIGH \
                        and len(conn.inbox) < _INBOX_HIGH:
                    conn.paused = False  # drained: resume reading
        if failed:
            # Tear down outside send_lock: _drop_client reaches for the
            # shard lock, which notifier threads hold while waiting for
            # this very send_lock (_push_ready -> _queue_or_send).
            self._close_conn(conn)
            return
        self._update_interest(conn)

    def _update_interest(self, conn: _ClientConn) -> None:
        """Reconcile the selector registration with the connection state
        (I/O thread only; never called with send_lock held)."""
        assert self._selector is not None
        if conn.closing:
            return
        mask = 0
        if not conn.paused:
            mask |= selectors.EVENT_READ
        if conn.want_write:
            mask |= selectors.EVENT_WRITE
        if mask == conn.sel_mask:
            return
        try:
            if mask == 0:
                self._selector.unregister(conn.sock)
            elif conn.sel_mask == 0:
                self._selector.register(conn.sock, mask, conn)
            else:
                self._selector.modify(conn.sock, mask, conn)
            conn.sel_mask = mask
        except (KeyError, ValueError, OSError):
            pass

    def _drain_flush_requests(self) -> None:
        while True:
            try:
                conn = self._flush_pending.popleft()
            except IndexError:
                return
            if not conn.closing:
                self._flush_conn(conn)

    def _drain_close_requests(self) -> None:
        while True:
            try:
                conn = self._close_pending.popleft()
            except IndexError:
                return
            self._close_conn(conn)

    def _drain_resume_requests(self) -> None:
        while True:
            try:
                conn = self._resume_pending.popleft()
            except IndexError:
                return
            if conn.closing:
                continue
            with conn.send_lock:
                if (
                    len(conn.inbox) < _INBOX_HIGH
                    and len(conn.outbuf) < _OUTBUF_HIGH
                ):
                    conn.paused = False
            self._update_interest(conn)

    def _close_conn(self, conn: _ClientConn) -> None:
        """I/O-thread-side teardown of one connection.

        The socket and selector entry go away immediately; the shard-side
        cleanup (which may evict and delete files on bounded areas) runs
        on the worker pool.  The client_id stays reserved until that
        cleanup finishes, so a reconnect cannot race its own teardown.
        """
        if conn.closing:
            return
        conn.closing = True
        if self._selector is not None:
            try:
                self._selector.unregister(conn.sock)
            except (KeyError, ValueError, OSError):
                pass
            conn.sel_mask = 0
        self._shutdown_socket(conn.sock)
        if conn.client_id is not None or conn.contexts:
            self._work_queue.put(lambda: self._drop_client(conn))

    def _worker_loop(self) -> None:
        while True:
            item = self._work_queue.get()
            if item is None:
                return
            if callable(item):
                item()  # deferred cleanup (see _close_conn)
            else:
                self._process_inbox(item)

    def _process_inbox(self, conn: _ClientConn) -> None:
        """Drain one connection's queued messages in arrival order.

        While the drain runs, every frame this worker produces for the
        connection lands in a thread-local collector; it leaves as one
        coalesced send when the inbox is empty (or the collector fills),
        instead of one wake-up + syscall per message.
        """
        tl = self._tl
        tl.conn = conn
        tl.buf = bytearray()
        tl.frames = 0
        resume = False
        try:
            while True:
                with conn.send_lock:
                    drained = not conn.inbox or conn.closing
                    message = None if drained else conn.inbox.popleft()
                if drained:
                    # Flush *before* releasing the connection: once busy
                    # drops, the I/O thread may run newer messages inline,
                    # and their replies must not overtake the ones still
                    # sitting in this worker's collector.
                    self._flush_collector()
                    with conn.send_lock:
                        if not conn.inbox or conn.closing:
                            conn.busy = False
                            resume = conn.paused and not conn.closing
                            break
                    continue  # new messages arrived during the flush
                try:
                    self._handle_message(conn, message)
                except Exception:
                    # A failed send or an unexpected handler crash tears
                    # down this connection only — the worker must survive
                    # to serve every other client.
                    with conn.send_lock:
                        conn.busy = False
                    self._close_pending.append(conn)
                    self._wake()
                    return
                if len(tl.buf) >= _COLLECT_MAX:
                    self._flush_collector()
        finally:
            self._flush_collector()
            tl.conn = None
        if resume:
            # The drain brought a paused connection back under the
            # high-water marks: ask the I/O thread to read it again.
            self._resume_pending.append(conn)
            self._wake()

    def _flush_collector(self) -> None:
        """Hand the worker's accumulated output to the wire in one go."""
        tl = self._tl
        if not tl.frames:
            return
        buf, frames = tl.buf, tl.frames
        tl.buf = bytearray()
        tl.frames = 0
        self._m_frames_sent.inc(frames)
        self._m_bytes_sent.inc(len(buf))
        self._queue_or_send(tl.conn, buf)

    def _handle_message(self, conn: _ClientConn, message: dict) -> None:
        if conn.client_id is None:
            if message.get("op") != "hello":
                self._send(conn, {
                    "op": "reply",
                    "req": message.get("req"),
                    "error": int(ErrorCode.ERR_PROTOCOL),
                    "detail": "first message must be hello",
                })
                return
            self._handle_hello(conn, message)
            return
        self._dispatch(conn, message)

    # ------------------------------------------------------------------ #
    # Threaded front end (comparison baseline)
    # ------------------------------------------------------------------ #
    def _accept_loop(self) -> None:
        assert self._listener is not None
        while self._running:
            try:
                sock, _addr = self._listener.accept()
            except OSError:
                return  # listener closed
            self._tune_socket(sock)
            threading.Thread(
                target=self._serve_client, args=(sock,), daemon=True
            ).start()

    def _serve_client(self, sock: socket.socket) -> None:
        reader = MessageReader(sock)
        conn = _ClientConn(sock)
        bytes_seen = 0
        try:
            while True:
                message = reader.read_message()
                if message is None:
                    break
                self._m_frames_recv.inc()
                self._m_bytes_recv.inc(reader.bytes_read - bytes_seen)
                bytes_seen = reader.bytes_read
                before = conn.codec
                self._handle_message(conn, message)
                if conn.codec != before:
                    reader.set_codec(conn.codec)
        except (SimFSError, OSError):
            pass
        finally:
            self._drop_client(conn)
            try:
                sock.close()
            except OSError:
                pass

    # ------------------------------------------------------------------ #
    # Handshake and dispatch (shared by both front ends)
    # ------------------------------------------------------------------ #
    def _handle_hello(self, conn: _ClientConn, message: dict) -> None:
        client_id = str(message.get("client_id"))
        context_name = message.get("context")
        codec = negotiate_codec(message)
        trace = negotiate_trace(message)
        with self._clients_lock:
            if client_id in self._clients:
                # A second hello reusing a live client_id would silently
                # orphan the first connection's notifications: reject it.
                self._send(conn, {
                    "op": "reply",
                    "req": message.get("req"),
                    "error": int(ErrorCode.ERR_INVALID),
                    "detail": f"client_id {client_id!r} is already connected",
                })
                return
            conn.client_id = client_id
            self._clients[client_id] = conn
        error = int(ErrorCode.SUCCESS)
        detail = ""
        if context_name:
            if (
                self._route_op is not None
                and not self.coordinator.has_context(context_name)
            ):
                # Gateway path: the context lives on a peer — forward the
                # attach so the owner registers this client as a waiter.
                payload = self._run_op(
                    conn, self._route_op, {"op": "attach", "context": context_name}
                )
                error = int(payload.get("error", ErrorCode.SUCCESS))
                detail = payload.get("detail", "")
            else:
                try:
                    self.coordinator.client_connect(client_id, context_name)
                    conn.contexts.add(context_name)
                except SimFSError as exc:
                    error, detail = int(exc.code), str(exc)
        # The hello reply itself always travels in the legacy codec; both
        # sides switch to the negotiated codec for every frame after it.
        reply = {
            "op": "reply", "req": message.get("req"),
            "error": error, "detail": detail,
            "vers": PROTOCOL_VERSION, "codec": codec,
        }
        if trace:
            reply["trace"] = 1
        if self._hello_extra is not None:
            reply.update(self._hello_extra())
        self._send(conn, reply)
        conn.codec = codec
        conn.decoder.set_codec(codec)
        conn.trace = trace

    def _handler_for(self, op):
        return self._handlers.get(op)

    def _dispatch(self, conn: _ClientConn, message: dict) -> None:
        started = time.perf_counter()
        arrived = message.pop("_obs_t0", None)
        try:
            self._dispatch_op(conn, message)
        finally:
            self._observe_op(
                message.get("op"), time.perf_counter() - started,
                message, arrived,
            )

    def _observe_op(
        self, op, elapsed: float, message: dict | None = None,
        arrived: float | None = None,
    ) -> None:
        """Record one op's service time (dispatch entry to reply queued).

        Traced messages additionally get an ``op.<op>`` span (plus a
        queue-wait span when the arrival timestamp is known) and an
        exemplar binding the latency bucket to the trace id; untraced
        ones only pay the histogram observe unless they cross the tail
        threshold.
        """
        if not isinstance(op, str):
            op = "unknown"
        hist = self._op_hist.get(op)
        if hist is None:
            hist = self.metrics.histogram(
                f"op.{op}.seconds", buckets=_SERVICE_BUCKETS
            )
            self._op_hist[op] = hist
        hist.observe(elapsed)
        if message is None:
            return
        tc = message.get("tc")
        if tc is None and elapsed < self.obs.slow_threshold:
            return
        end = time.time()
        start = end - elapsed
        self.obs.record(
            f"op.{op}", tc, start, end,
            context=message.get("context"), file=message.get("file"),
        )
        if tc is not None:
            if arrived is not None and start > arrived:
                self.obs.record("op.queue", tc, arrived, start)
            self.obs.attach_exemplar(
                f"op.{op}.seconds", hist.bounds, elapsed, tc
            )

    def _dispatch_op(self, conn: _ClientConn, message: dict) -> None:
        op = message.get("op")
        req = message.get("req")
        extra = self._extra_ops.get(op)
        if extra is not None:
            # Service-level op from an embedding layer (fwd/gossip).
            try:
                payload = extra.handler(conn, message)
            except SimFSError as exc:
                payload = {"error": int(exc.code), "detail": str(exc)}
            if payload is None:
                return  # one-way frame, no reply
            payload.setdefault("error", int(ErrorCode.SUCCESS))
            payload.update({"op": extra.reply_op, "req": req})
            self._send(conn, payload)
            return
        if (
            self._route_op is not None
            and op in _ROUTABLE_OPS
            and isinstance(message.get("context"), str)
            and not self.coordinator.has_context(message["context"])
        ):
            # Gateway path: this daemon does not own the context — the
            # route hook forwards to the owning peer and hands back the
            # reply payload the owner produced.
            payload = self._run_op(conn, self._route_op, message)
            payload.update({"op": "reply", "req": req})
            self._send(conn, payload)
            return
        if op == "open" and "context" in message and "file" in message:
            # Hottest op of the transparent path: reply packed straight
            # from the handler result, no intermediate dict — and no
            # second handler execution on failure (handle_open pins
            # before it can fail, so a re-run would leak a refcount).
            tc = message.get("tc")
            try:
                result = self.coordinator.handle_open(
                    conn.client_id, message["context"], message["file"],
                    self._clock.now(), tc=tc,
                )
            except SimFSError as exc:
                self._send(conn, {"op": "reply", "req": req,
                                  "error": int(exc.code), "detail": str(exc)})
            else:
                self._send_raw(conn, encode_open_reply(
                    req, result.available, result.state.value,
                    result.estimated_wait, conn.codec,
                    tc=tc if conn.trace else None,
                ))
            return
        handler = self._handler_for(op)
        if handler is None:
            self._send(conn, {"op": "reply", "req": req,
                              "error": int(ErrorCode.ERR_PROTOCOL),
                              "detail": f"unknown op {op!r}"})
            return
        payload = self._run_op(conn, handler, message)
        payload.update({"op": "reply", "req": req})
        self._send(conn, payload)

    def _run_op(self, conn: _ClientConn, handler, message: dict) -> dict:
        """Execute one op body, mapping SimFS errors to reply payloads."""
        try:
            payload = handler(conn, message)
            payload.setdefault("error", int(ErrorCode.SUCCESS))
        except SimFSError as exc:
            payload = {"error": int(exc.code), "detail": str(exc)}
        return payload

    # -- op handlers ------------------------------------------------------ #
    def _op_attach(self, conn: _ClientConn, message: dict) -> dict:
        context = message["context"]
        self.coordinator.client_connect(conn.client_id, context)
        conn.contexts.add(context)
        return {}

    def _op_open(self, conn: _ClientConn, message: dict) -> dict:
        result = self.coordinator.handle_open(
            conn.client_id, message["context"], message["file"],
            self._clock.now(), tc=message.get("tc"),
        )
        return {
            "available": result.available,
            "state": result.state.value,
            "wait": result.estimated_wait,
        }

    def _op_acquire(self, conn: _ClientConn, message: dict) -> dict:
        results = self.coordinator.handle_acquire(
            conn.client_id, message["context"], list(message["files"]),
            self._clock.now(), tc=message.get("tc"),
        )
        return {
            "results": [
                {"file": r.filename, "available": r.available,
                 "state": r.state.value, "wait": r.estimated_wait}
                for r in results
            ]
        }

    def _op_release(self, conn: _ClientConn, message: dict) -> dict:
        self.coordinator.handle_release(
            conn.client_id, message["context"], message["file"],
            self._clock.now(),
        )
        return {}

    def _op_wclose(self, conn: _ClientConn, message: dict) -> dict:
        self.coordinator.sim_file_closed(
            message["context"], message["file"], self._clock.now()
        )
        return {}

    def _op_bitrep(self, conn: _ClientConn, message: dict) -> dict:
        context = message["context"]
        filename = message["file"]
        path = message.get("path")
        if path is None:
            path = self.storage_path(context, filename)
        else:
            self._check_bitrep_path(context, path)
        matches = self.coordinator.handle_bitrep(context, filename, path)
        return {"matches": matches}

    def _check_bitrep_path(self, context: str, path: str) -> None:
        """A client-supplied ``path`` must stay inside the context's
        storage or restart directory — the checksum result would otherwise
        let a TCP client probe arbitrary server files byte-for-byte."""
        real = os.path.realpath(path)
        for allowed in (
            self.launcher.output_dir(context),
            self.launcher.restart_dir(context),
        ):
            base = os.path.realpath(allowed)
            if real == base or real.startswith(base + os.sep):
                return
        raise InvalidArgumentError(
            f"bitrep path {path!r} is outside the {context!r} storage areas"
        )

    def _op_finalize(self, conn: _ClientConn, message: dict) -> dict:
        context = message["context"]
        self.coordinator.client_disconnect(
            conn.client_id, context, self._clock.now()
        )
        conn.contexts.discard(context)
        return {}

    def _op_batch(self, conn: _ClientConn, message: dict) -> dict:
        """Pipelined sub-ops: one request frame, one reply frame.

        Sub-ops execute in order; each entry of ``results`` is the payload
        the sub-op would have produced as its own reply (including its own
        ``error`` field), so one failing sub-op does not abort the rest.
        """
        sub_ops = message.get("ops")
        if not isinstance(sub_ops, list):
            raise InvalidArgumentError("batch requires a list under 'ops'")
        results = []
        for sub in sub_ops:
            sub_op = sub.get("op") if isinstance(sub, dict) else None
            handler = self._handler_for(sub_op) if sub_op in _BATCHABLE_OPS else None
            if handler is None:
                results.append({
                    "op": sub_op,
                    "error": int(ErrorCode.ERR_PROTOCOL),
                    "detail": f"unknown or non-batchable sub-op {sub_op!r}",
                })
                continue
            if (
                self._route_op is not None
                and sub_op in _ROUTABLE_OPS
                and isinstance(sub.get("context"), str)
                and not self.coordinator.has_context(sub["context"])
            ):
                # Gateway path applies per sub-op: a pipelined batch from
                # a ring-unaware client still reaches the context owner.
                payload = self._run_op(conn, self._route_op, sub)
            else:
                payload = self._run_op(conn, handler, sub)
            payload["op"] = sub_op
            results.append(payload)
        return {"results": results}

    def _op_fetch_info(self, conn: _ClientConn, message: dict) -> dict:
        """Where (and whether) a context file can be pulled over the data
        plane.  Routable: asked of a non-owner, the gateway forwards it to
        the owning node/executor, whose reply names *its* data endpoint —
        which is exactly the redirect the client needs.  Without ``file``
        the reply lists the context's available output files instead
        (the ``fetch_context`` enumeration)."""
        context = message["context"]
        if not self.coordinator.has_context(context):
            raise ContextError(f"unknown context {context!r}")
        out_dir = self.launcher.output_dir(context)
        host, port = self._data_endpoint or (None, 0)
        payload: dict = {
            "context": context,
            "data_host": host,
            "data_port": port,
        }
        filename = message.get("file")
        if filename is None:
            naming = self.coordinator.shard(context).context.driver.naming
            try:
                names = sorted(
                    n for n in os.listdir(out_dir)
                    if naming.is_output(n)
                    and os.path.isfile(os.path.join(out_dir, n))
                )
            except OSError:
                names = []
            payload["files"] = names
            return payload
        path = self.storage_path(context, filename)
        try:
            payload["size"] = os.path.getsize(path)
            payload["exists"] = True
        except OSError:
            payload["size"] = 0
            payload["exists"] = False
        return payload

    def _op_stats(self, conn: _ClientConn, message: dict) -> dict:
        snapshot = self.coordinator.stats_snapshot()
        with self._clients_lock:
            snapshot["server"] = {
                "connected_clients": len(self._clients),
                "mode": self.mode,
                "workers": self._num_workers,
            }
        return {"stats": snapshot}

    # -- observability ops ------------------------------------------------ #
    # The cluster node and the multi-core executor shadow these three with
    # fan-out versions (register_op(..., replace=True)) that merge peer /
    # executor recorders; the bodies below are the single-process view.
    def trace_spans(self, trace_id: str | int) -> list[dict]:
        """Retained spans of one trace on this daemon."""
        return self.obs.trace(trace_id)

    def slow_spans(self, limit: int = 20) -> list[dict]:
        """Slowest retained spans on this daemon (tail-sampled view)."""
        return self.obs.slow(limit)

    def metrics_text(self) -> str:
        """Prometheus text exposition of this daemon's metrics plane."""
        return render_prometheus(self.metrics.snapshot(), self.obs.exemplars())

    def _op_trace(self, conn: _ClientConn, message: dict) -> dict:
        trace_id = message.get("trace_id")
        if not isinstance(trace_id, str) or not trace_id:
            raise InvalidArgumentError("trace requires a 'trace_id' string")
        return {"trace": {
            "trace_id": trace_id.lower(),
            "spans": self.trace_spans(trace_id),
            "nodes": [self.obs.node],
            "unreachable": [],
        }}

    def _op_trace_slow(self, conn: _ClientConn, message: dict) -> dict:
        limit = int(message.get("limit", 20))
        return {"slow": {
            "spans": self.slow_spans(limit),
            "journal": self.obs.journal_entries(limit=limit),
            "nodes": [self.obs.node],
            "unreachable": [],
        }}

    def _op_metrics_text(self, conn: _ClientConn, message: dict) -> dict:
        return {"text": self.metrics_text(), "nodes": [self.obs.node],
                "unreachable": []}

    # ------------------------------------------------------------------ #
    def _drop_client(self, conn: _ClientConn) -> None:
        if conn.client_id is not None:
            with self._clients_lock:
                # Only remove our own entry — a rejected duplicate hello
                # must not evict the live connection owning the client_id.
                if self._clients.get(conn.client_id) is conn:
                    del self._clients[conn.client_id]
        for context in list(conn.contexts):
            try:
                self.coordinator.client_disconnect(
                    conn.client_id, context, self._clock.now()
                )
            except SimFSError:
                pass
        if self._drop_hook is not None and conn.client_id is not None:
            self._drop_hook(conn.client_id)

    def _push_ready(self, notification: Notification) -> None:
        with self._clients_lock:
            conn = self._clients.get(notification.client_id)
        if conn is None:
            # Not a local connection: a cluster owner delivering to a
            # client that entered through a peer gateway hands the
            # notification to the routing hook instead of dropping it.
            if self._ready_router is not None:
                self._ready_router(notification)
            return
        tc = notification.tc
        if tc is not None and conn.trace:
            # Traced delivery bypasses the fan-out memo (the tc is
            # per-waiter); only trace-negotiated peers may receive the
            # traced frame, everyone else gets the shared untraced bytes.
            start = time.time()
            data = encode_frame({
                "op": "ready",
                "context": notification.context_name,
                "file": notification.filename,
                "ok": notification.ok,
                "tc": tc,
            }, conn.codec)
            try:
                self._send_raw(conn, data)
            except OSError:
                return
            self.obs.record(
                "ready.fanout", tc, start, time.time(),
                context=notification.context_name, file=notification.filename,
            )
            return
        data = self._encode_ready(notification, conn.codec)
        try:
            self._send_raw(conn, data)
        except OSError:
            pass

    def _encode_ready(self, notification: Notification, codec: str) -> bytes:
        """Encode a ``ready`` frame once per codec and reuse it for every
        waiter of the same file (shards fan notifications out back to
        back, so a one-slot memo captures the whole wave)."""
        key = (notification.context_name, notification.filename, notification.ok)
        with self._ready_memo_lock:
            if self._ready_memo is not None and self._ready_memo[0] == key:
                encoded = self._ready_memo[1]
            else:
                encoded = {}
                self._ready_memo = (key, encoded)
            data = encoded.get(codec)
            if data is None:
                data = encode_frame({
                    "op": "ready",
                    "context": notification.context_name,
                    "file": notification.filename,
                    "ok": notification.ok,
                }, codec)
                encoded[codec] = data
            return data

    def _send(self, conn: _ClientConn, message: dict) -> None:
        self._send_raw(conn, encode_frame(message, conn.codec))

    def _send_raw(self, conn: _ClientConn, data: bytes) -> None:
        """Ship one encoded frame to a connection.

        Threaded mode writes through directly.  Selector mode first tries
        the owning worker's collector (coalesced with the rest of the
        inbox drain); frames for *other* connections — ``ready`` fan-out,
        notifications from launcher threads — go through
        :meth:`_queue_or_send`.
        """
        if self.mode == "selector":
            tl = self._tl
            if getattr(tl, "conn", None) is conn:
                tl.buf += data
                tl.frames += 1
                return
        self._m_frames_sent.inc()
        self._m_bytes_sent.inc(len(data))
        if self.mode == "threaded":
            with conn.send_lock:
                conn.sock.sendall(data)
            return
        self._queue_or_send(conn, data)

    def _queue_or_send(self, conn: _ClientConn, data: bytes) -> None:
        """Selector-mode write: send straight from this thread when the
        output buffer is clear (no wake-up, no extra hop); otherwise
        append behind the backlog and ask the I/O thread to drain it."""
        need_wake = False
        with conn.send_lock:
            if conn.closing:
                return
            if not conn.outbuf and not conn.want_write:
                try:
                    sent = conn.sock.send(data)
                except BlockingIOError:
                    sent = 0
                except OSError:
                    need_wake = True
                    sent = len(data)  # drop: the close tears the conn down
                if sent < len(data):
                    conn.outbuf += memoryview(data)[sent:]
            else:
                conn.outbuf += data
                if len(conn.outbuf) >= _OUTBUF_HARD:
                    # Fan-out to a peer that stopped reading: cut it loose
                    # rather than buffer without bound (read-side pause
                    # cannot help here — the bytes are server-initiated).
                    self._m_slow_close.inc()
                    need_wake = True
            if need_wake:  # OSError/overflow path: request teardown
                self._close_pending.append(conn)
            elif conn.outbuf and not conn.flush_requested:
                conn.flush_requested = True
                self._flush_pending.append(conn)
                need_wake = True
            else:
                return
        self._wake()


# --------------------------------------------------------------------- #
# CLI entry point: `simfs-dv --config dv.json` / `simfs-dv --stats`
# --------------------------------------------------------------------- #
def main(argv: list[str] | None = None) -> int:
    """Run a DV daemon from a JSON configuration file, or query a running
    daemon with ``--stats``.

    Config schema::

        {"host": "127.0.0.1", "port": 7878, "mode": "selector",
         "contexts": [
           {"name": "cosmo", "simulator": "cosmo",
            "delta_d": 5, "delta_r": 60, "num_timesteps": 5760,
            "output_dir": "...", "restart_dir": "...",
            "max_storage_bytes": 100000000, "policy": "dcl", "smax": 8,
            "alpha_delay": 0.0, "tau_delay": 0.0}]}

    ``alpha_delay``/``tau_delay`` (seconds) pace the built-in drivers'
    re-simulations — per sim launch and per produced output step — so a
    demo or failover drill has a real window in which clients block.

    Multi-daemon quickstart — run the same config (same context catalog,
    dirs on the shared PFS) on every node and name the peers::

        simfs-dv --config dv.json --node-id n1 \\
                 --peers n2@hostB:7878,n3@hostC:7878

    ``node_id``/``peers`` (plus ``vnodes``, ``heartbeat_interval``,
    ``suspect_after``, ``generation``, ``replication_factor``,
    ``repl_interval``, ``anti_entropy_interval``) may also live in the
    config file.  Each node activates only the contexts the
    consistent-hash ring assigns to it and forwards ops for the rest to
    their owners; clients may connect to any node.  With
    ``--replication-factor N`` every context is streamed to its N-1 ring
    successors for hot failover.  Inspect the ring with
    ``simfs-ctl cluster-status`` and the replication state with
    ``simfs-ctl ha-status``.
    """
    from repro.core.context import ContextConfig
    from repro.core.perfmodel import PerformanceModel
    from repro.simulators import CosmoDriver, FlashDriver, SyntheticDriver

    parser = argparse.ArgumentParser(prog="simfs-dv", description=main.__doc__)
    parser.add_argument("--config", help="JSON config path (daemon mode)")
    parser.add_argument(
        "--stats", action="store_true",
        help="print the stats snapshot of a running daemon and exit",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="daemon host for --stats (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=7878,
                        help="daemon port for --stats (default 7878)")
    parser.add_argument(
        "--node-id",
        help="run as a cluster node with this id (see also --peers)",
    )
    parser.add_argument(
        "--peers",
        help="comma-separated peer daemons as [id@]host:port; implies "
             "cluster mode (the config file may also set node_id/peers)",
    )
    parser.add_argument(
        "--replication-factor", type=int, default=None, dest="replication_factor",
        help="replicate each context to its N-1 ring successors for hot "
             "failover (cluster mode only; the config file may also set "
             "\"replication_factor\")",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="run a multi-core engine with this many shard-executor "
             "processes (standalone: the whole daemon becomes a "
             "supervisor + executor pool; cluster: this node serves its "
             "owned contexts from the pool).  Defaults to single-process; "
             "--workers 0 means one executor per CPU core.  The config "
             "file may also set \"workers\".",
    )
    args = parser.parse_args(argv)

    if args.stats:
        from repro.client.dvlib import fetch_stats

        print(json.dumps(fetch_stats(args.host, args.port), indent=1, sort_keys=True))
        return 0
    if not args.config:
        parser.error("--config is required unless --stats is given")

    with open(args.config, encoding="utf-8") as fh:
        config = json.load(fh)

    node_id = args.node_id or config.get("node_id")
    peer_arg = args.peers or config.get("peers")
    peers: list[str] = []
    if isinstance(peer_arg, str):
        peers = [p.strip() for p in peer_arg.split(",") if p.strip()]
    elif isinstance(peer_arg, list):
        peers = [str(p) for p in peer_arg]
    workers = args.workers if args.workers is not None else config.get("workers")
    if workers is not None:
        workers = int(workers) or (os.cpu_count() or 1)  # 0 = per core
    node = None
    if node_id or peers:
        from repro.cluster import ClusterNode

        node = ClusterNode(
            node_id or f"dv-{config.get('port', 7878)}",
            config.get("host", "127.0.0.1"),
            config.get("port", 7878),
            peers=peers,
            vnodes=int(config.get("vnodes", 16)),
            generation=int(config.get("generation", 1)),
            heartbeat_interval=float(config.get("heartbeat_interval", 0.5)),
            suspect_after=int(config.get("suspect_after", 3)),
            mode=config.get("mode", "selector"),
            engine_workers=workers,
            data_port=int(config.get("data_port", 0)),
            data_link_rate=config.get("data_link_rate"),
            replication_factor=int(
                args.replication_factor
                if args.replication_factor is not None
                else config.get("replication_factor", 1)
            ),
            repl_interval=float(config.get("repl_interval", 0.1)),
            anti_entropy_interval=float(
                config.get("anti_entropy_interval", 5.0)
            ),
        )
        server = node.server
    elif workers is not None and workers > 1:
        from repro.dv.multicore import MultiCoreServer

        server = MultiCoreServer(
            config.get("host", "127.0.0.1"),
            config.get("port", 7878),
            workers=workers,
        )
    else:
        server = DVServer(
            config.get("host", "127.0.0.1"),
            config.get("port", 7878),
            mode=config.get("mode", "selector"),
        )
    # Standalone data plane (cluster nodes carry their own): bind it now
    # so multi-core executors learn the endpoint before they spawn.
    data_server = None
    if node is None and config.get("data_port") is not None:
        from repro.data.server import DataServer

        data_server = DataServer(
            config.get("host", "127.0.0.1"),
            int(config["data_port"]),
            link_rate=config.get("data_link_rate"),
            metrics=getattr(server, "metrics", None),
            obs=getattr(server, "obs", None),
        )
        server.set_data_endpoint(data_server.host, data_server.port)
    drivers = {"cosmo": CosmoDriver, "flash": FlashDriver, "synthetic": SyntheticDriver}
    for spec in config.get("contexts", []):
        cc = ContextConfig(
            name=spec["name"],
            delta_d=spec["delta_d"],
            delta_r=spec["delta_r"],
            num_timesteps=spec.get("num_timesteps"),
            max_storage_bytes=spec.get("max_storage_bytes"),
            replacement_policy=spec.get("policy", "dcl"),
            smax=spec.get("smax", 8),
        )
        driver_cls = drivers[spec.get("simulator", "synthetic")]
        driver = driver_cls(cc.geometry, prefix=spec["name"])
        perf = PerformanceModel(
            tau_sim=spec.get("tau_sim", 1.0), alpha_sim=spec.get("alpha_sim", 0.0)
        )
        context = SimulationContext(config=cc, driver=driver, perf=perf)
        # Optional pacing for the built-in drivers: without it a synthetic
        # re-simulation finishes in milliseconds, which makes blocked
        # waiters (and therefore HA failover demos) impossible to observe
        # on a live daemon.
        delays = {
            "alpha_delay": float(spec.get("alpha_delay", 0.0)),
            "tau_delay": float(spec.get("tau_delay", 0.0)),
        }
        if node is not None:
            node.add_context(
                context, spec["output_dir"], spec["restart_dir"], **delays
            )
        else:
            server.add_context(
                context, spec["output_dir"], spec["restart_dir"], **delays
            )
            if data_server is not None:
                data_server.add_context(spec["name"], spec["output_dir"])
    service = node if node is not None else server
    service.start()
    # Prometheus exporter endpoint (``"metrics_port": 0`` = ephemeral).
    exporter = None
    if config.get("metrics_port") is not None:
        from repro.obs.export import MetricsExporter

        source = getattr(service, "metrics_text", None) or server.metrics_text
        exporter = MetricsExporter(
            source, config.get("host", "127.0.0.1"),
            int(config["metrics_port"]),
        )
        exporter.start()
        print(f"simfs-dv metrics exporter on "
              f"{config.get('host', '127.0.0.1')}:{exporter.port}/metrics")
    if data_server is not None:
        data_server.start()
        print(f"simfs-dv data plane on {data_server.host}:{data_server.port}")
    elif node is not None:
        print(f"simfs-dv data plane on {node.data.host}:{node.data.port}")
    host, port = server.address
    if node is not None:
        engine = f" ({workers}-core engine)" if node.engine is not None else ""
        print(f"simfs-dv cluster node {node.node_id} listening on "
              f"{host}:{port}{engine}")
    elif workers is not None and workers > 1:
        print(f"simfs-dv listening on {host}:{port} "
              f"({workers} shard executors)")
    else:
        print(f"simfs-dv listening on {host}:{port}")
    try:
        threading.Event().wait()
    except KeyboardInterrupt:
        service.stop()
        if exporter is not None:
            exporter.stop()
        if data_server is not None:
            data_server.stop()
    return 0
