"""The DV daemon: a TCP front end over :class:`DVCoordinator` (Sec. III).

One thread per client connection; all coordinator access is serialized
through the launcher's lock.  Unsolicited ``ready`` notifications are
pushed to the owning client's socket from whatever thread produced the
file (a simulation worker or another client's handler).

The daemon is also usable in-process via :meth:`DVServer.start` /
:meth:`DVServer.stop` — integration tests and the examples run it that
way on an ephemeral localhost port.
"""

from __future__ import annotations

import argparse
import json
import socket
import threading
from dataclasses import dataclass

from repro.core.context import SimulationContext
from repro.core.errors import ErrorCode, SimFSError
from repro.dv.coordinator import DVCoordinator, Notification
from repro.dv.launcher import ThreadedLauncher
from repro.dv.protocol import MessageReader, send_message
from repro.util.clock import WallClock

__all__ = ["DVServer", "main"]


@dataclass
class _ClientConn:
    client_id: str
    sock: socket.socket
    send_lock: threading.Lock
    contexts: set[str]


class DVServer:
    """Threaded TCP Data Virtualizer daemon."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._host = host
        self._port = port
        self._clock = WallClock()
        self.launcher = ThreadedLauncher(self._clock)
        self.coordinator = DVCoordinator(self.launcher, notify=self._push_ready)
        self.launcher.bind(self.coordinator)
        self._lock = self.launcher.lock
        self._clients: dict[str, _ClientConn] = {}
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._running = False

    # ------------------------------------------------------------------ #
    # Configuration
    # ------------------------------------------------------------------ #
    def add_context(
        self,
        context: SimulationContext,
        output_dir: str,
        restart_dir: str,
        alpha_delay: float = 0.0,
        tau_delay: float = 0.0,
    ) -> None:
        """Register a context and where its files live."""
        import os

        os.makedirs(output_dir, exist_ok=True)
        os.makedirs(restart_dir, exist_ok=True)

        def delete_file(filename: str) -> None:
            try:
                os.unlink(os.path.join(output_dir, filename))
            except FileNotFoundError:
                pass

        self.coordinator.register_context(context, on_evict_file=delete_file)
        self.launcher.register_context(
            context.name, context.driver, output_dir, restart_dir,
            alpha_delay=alpha_delay, tau_delay=tau_delay,
        )
        # Files already on disk (e.g. from the initial simulation) are part
        # of the cache state at daemon start.
        state = self.coordinator.get_state(context.name)
        for fname in sorted(os.listdir(output_dir)):
            if context.driver.naming.is_output(fname):
                key = context.key_of(fname)
                cost = float(context.geometry.miss_cost(key))
                state.area.insert(key, cost=cost)

    def storage_path(self, context_name: str, filename: str) -> str:
        import os

        runtime = self.launcher._contexts[context_name]
        return os.path.join(runtime.output_dir, filename)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def address(self) -> tuple[str, int]:
        """(host, port) the daemon listens on; valid after :meth:`start`."""
        assert self._listener is not None, "server not started"
        return self._listener.getsockname()[:2]

    def start(self) -> None:
        """Bind, listen, and accept clients on a background thread."""
        self._listener = socket.create_server((self._host, self._port))
        self._running = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="simfs-dv-accept", daemon=True
        )
        self._accept_thread.start()

    def stop(self) -> None:
        """Stop accepting and close every client connection."""
        self._running = False
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        for conn in list(self._clients.values()):
            try:
                conn.sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.sock.close()
            except OSError:
                pass
        self._clients.clear()

    def __enter__(self) -> "DVServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # Networking internals
    # ------------------------------------------------------------------ #
    def _accept_loop(self) -> None:
        assert self._listener is not None
        while self._running:
            try:
                sock, _addr = self._listener.accept()
            except OSError:
                return  # listener closed
            threading.Thread(
                target=self._serve_client, args=(sock,), daemon=True
            ).start()

    def _serve_client(self, sock: socket.socket) -> None:
        reader = MessageReader(sock)
        conn: _ClientConn | None = None
        try:
            while True:
                message = reader.read_message()
                if message is None:
                    break
                if conn is None:
                    if message.get("op") != "hello":
                        send_message(
                            sock,
                            {
                                "op": "reply",
                                "req": message.get("req"),
                                "error": int(ErrorCode.ERR_PROTOCOL),
                                "detail": "first message must be hello",
                            },
                        )
                        continue
                    conn = self._handle_hello(sock, message)
                    continue
                self._dispatch(conn, message)
        except (SimFSError, OSError):
            pass
        finally:
            if conn is not None:
                self._drop_client(conn)
            try:
                sock.close()
            except OSError:
                pass

    def _handle_hello(self, sock: socket.socket, message: dict) -> _ClientConn:
        client_id = str(message.get("client_id"))
        context_name = message.get("context")
        conn = _ClientConn(client_id, sock, threading.Lock(), set())
        error = int(ErrorCode.SUCCESS)
        detail = ""
        if context_name:
            try:
                with self._lock:
                    self.coordinator.client_connect(client_id, context_name)
                conn.contexts.add(context_name)
            except SimFSError as exc:
                error, detail = int(exc.code), str(exc)
        self._clients[client_id] = conn
        self._send(conn, {"op": "reply", "req": message.get("req"),
                          "error": error, "detail": detail})
        return conn

    def _dispatch(self, conn: _ClientConn, message: dict) -> None:
        op = message.get("op")
        req = message.get("req")
        handler = {
            "open": self._op_open,
            "acquire": self._op_acquire,
            "release": self._op_release,
            "wclose": self._op_wclose,
            "bitrep": self._op_bitrep,
            "attach": self._op_attach,
            "finalize": self._op_finalize,
        }.get(op)
        if handler is None:
            self._send(conn, {"op": "reply", "req": req,
                              "error": int(ErrorCode.ERR_PROTOCOL),
                              "detail": f"unknown op {op!r}"})
            return
        try:
            payload = handler(conn, message)
            payload.setdefault("error", int(ErrorCode.SUCCESS))
        except SimFSError as exc:
            payload = {"error": int(exc.code), "detail": str(exc)}
        payload.update({"op": "reply", "req": req})
        self._send(conn, payload)

    # -- op handlers ------------------------------------------------------ #
    def _op_attach(self, conn: _ClientConn, message: dict) -> dict:
        context = message["context"]
        with self._lock:
            self.coordinator.client_connect(conn.client_id, context)
        conn.contexts.add(context)
        return {}

    def _op_open(self, conn: _ClientConn, message: dict) -> dict:
        with self._lock:
            result = self.coordinator.handle_open(
                conn.client_id, message["context"], message["file"],
                self._clock.now(),
            )
        return {
            "available": result.available,
            "state": result.state.value,
            "wait": result.estimated_wait,
        }

    def _op_acquire(self, conn: _ClientConn, message: dict) -> dict:
        with self._lock:
            results = self.coordinator.handle_acquire(
                conn.client_id, message["context"], list(message["files"]),
                self._clock.now(),
            )
        return {
            "results": [
                {"file": r.filename, "available": r.available,
                 "state": r.state.value, "wait": r.estimated_wait}
                for r in results
            ]
        }

    def _op_release(self, conn: _ClientConn, message: dict) -> dict:
        with self._lock:
            self.coordinator.handle_release(
                conn.client_id, message["context"], message["file"],
                self._clock.now(),
            )
        return {}

    def _op_wclose(self, conn: _ClientConn, message: dict) -> dict:
        with self._lock:
            self.coordinator.sim_file_closed(
                message["context"], message["file"], self._clock.now()
            )
        return {}

    def _op_bitrep(self, conn: _ClientConn, message: dict) -> dict:
        context = message["context"]
        filename = message["file"]
        path = message.get("path") or self.storage_path(context, filename)
        with self._lock:
            matches = self.coordinator.handle_bitrep(context, filename, path)
        return {"matches": matches}

    def _op_finalize(self, conn: _ClientConn, message: dict) -> dict:
        context = message["context"]
        with self._lock:
            self.coordinator.client_disconnect(
                conn.client_id, context, self._clock.now()
            )
        conn.contexts.discard(context)
        return {}

    # ------------------------------------------------------------------ #
    def _drop_client(self, conn: _ClientConn) -> None:
        self._clients.pop(conn.client_id, None)
        for context in list(conn.contexts):
            try:
                with self._lock:
                    self.coordinator.client_disconnect(
                        conn.client_id, context, self._clock.now()
                    )
            except SimFSError:
                pass

    def _push_ready(self, notification: Notification) -> None:
        conn = self._clients.get(notification.client_id)
        if conn is None:
            return
        try:
            self._send(
                conn,
                {
                    "op": "ready",
                    "context": notification.context_name,
                    "file": notification.filename,
                    "ok": notification.ok,
                },
            )
        except OSError:
            pass

    def _send(self, conn: _ClientConn, message: dict) -> None:
        with conn.send_lock:
            send_message(conn.sock, message)


# --------------------------------------------------------------------- #
# CLI entry point: `simfs-dv --config dv.json`
# --------------------------------------------------------------------- #
def main(argv: list[str] | None = None) -> int:
    """Run a DV daemon from a JSON configuration file.

    Config schema::

        {"host": "127.0.0.1", "port": 7878,
         "contexts": [
           {"name": "cosmo", "simulator": "cosmo",
            "delta_d": 5, "delta_r": 60, "num_timesteps": 5760,
            "output_dir": "...", "restart_dir": "...",
            "max_storage_bytes": 100000000, "policy": "dcl", "smax": 8}]}
    """
    from repro.core.context import ContextConfig
    from repro.core.perfmodel import PerformanceModel
    from repro.simulators import CosmoDriver, FlashDriver, SyntheticDriver

    parser = argparse.ArgumentParser(prog="simfs-dv", description=main.__doc__)
    parser.add_argument("--config", required=True, help="JSON config path")
    args = parser.parse_args(argv)
    with open(args.config, encoding="utf-8") as fh:
        config = json.load(fh)

    server = DVServer(config.get("host", "127.0.0.1"), config.get("port", 7878))
    drivers = {"cosmo": CosmoDriver, "flash": FlashDriver, "synthetic": SyntheticDriver}
    for spec in config.get("contexts", []):
        cc = ContextConfig(
            name=spec["name"],
            delta_d=spec["delta_d"],
            delta_r=spec["delta_r"],
            num_timesteps=spec.get("num_timesteps"),
            max_storage_bytes=spec.get("max_storage_bytes"),
            replacement_policy=spec.get("policy", "dcl"),
            smax=spec.get("smax", 8),
        )
        driver_cls = drivers[spec.get("simulator", "synthetic")]
        driver = driver_cls(cc.geometry, prefix=spec["name"])
        perf = PerformanceModel(
            tau_sim=spec.get("tau_sim", 1.0), alpha_sim=spec.get("alpha_sim", 0.0)
        )
        context = SimulationContext(config=cc, driver=driver, perf=perf)
        server.add_context(context, spec["output_dir"], spec["restart_dir"])
    server.start()
    host, port = server.address
    print(f"simfs-dv listening on {host}:{port}")
    try:
        threading.Event().wait()
    except KeyboardInterrupt:
        server.stop()
    return 0
