"""Context shards: the per-context DV control plane (paper Sec. III).

A :class:`ContextShard` owns everything the DV knows about one simulation
context — the bounded storage area, the waiter table, the running and
queued re-simulations, one prefetch agent per client, and the restart
latency EMA — plus its **own re-entrant lock**.  Every public method is
self-locking, so front ends (the TCP daemon's socket handlers, the DES,
the in-process connection) call straight into the shard without any global
serialization: operations on ``cosmo`` never contend with ``flash``.

:class:`DVCoordinator` (:mod:`repro.dv.coordinator`) is the thin registry
that routes ``context_name`` to the right shard; it holds no data-path
state of its own.

Queued jobs live in a :class:`JobQueue`, a heap-backed priority structure
that serves demand re-simulations before prefetch jobs while preserving
FIFO order within each class — the same discipline the paper's daemon
implements, without the O(n) ``list.pop(0)`` scans.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from collections.abc import Callable, Iterator
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Protocol

from repro.cache.manager import StorageArea
from repro.core.context import SimulationContext
from repro.core.errors import (
    FileNotInContextError,
    InvalidArgumentError,
)
from repro.core.status import FileState
from repro.prefetch.agent import PrefetchAction, PrefetchAgent
from repro.util.ema import ExponentialMovingAverage

if TYPE_CHECKING:
    from repro.metrics import MetricsRegistry
    from repro.obs import SpanRecorder

__all__ = [
    "SimulationExecutor",
    "RunningSim",
    "OpenResult",
    "Notification",
    "JobQueue",
    "ContextShard",
]


class SimulationExecutor(Protocol):
    """How a shard starts and stops re-simulations.

    Real mode: a thread-pool launcher running driver jobs (or batch-system
    submission).  Virtual-time mode: the DES schedules production events.
    """

    def launch(self, context: SimulationContext, sim: "RunningSim") -> None:
        """Start the simulation; file-completion callbacks flow back into
        the shard asynchronously."""
        ...

    def kill(self, sim_id: int) -> None:
        """Best-effort stop of a running simulation."""
        ...


@dataclass
class RunningSim:
    """Book-keeping for one launched re-simulation."""

    sim_id: int
    context_name: str
    start_restart: int
    stop_restart: int
    parallelism_level: int
    launch_time: float
    is_prefetch: bool
    owner_client: str | None
    planned_keys: list[int]
    produced_keys: set[int] = field(default_factory=set)
    first_output_time: float | None = None
    killed: bool = False
    #: Trace context of the open that demanded this sim (wire string).
    tc: str | None = None
    #: Launch time on the span recorder's clock (see SpanRecorder.now).
    obs_start: float | None = None

    @property
    def done(self) -> bool:
        return self.produced_keys >= set(self.planned_keys)


@dataclass(frozen=True)
class OpenResult:
    """Outcome of a client open/acquire on one file."""

    filename: str
    state: FileState
    estimated_wait: float = 0.0

    @property
    def available(self) -> bool:
        return self.state is FileState.ON_DISK


@dataclass(frozen=True)
class Notification:
    """File-ready (or failed) message to deliver to a waiting client."""

    client_id: str
    context_name: str
    filename: str
    ok: bool = True
    #: Trace context of the open that registered the waiter (wire string);
    #: carried onto the ready frame so the fan-out hop is traced too.
    tc: str | None = None


class JobQueue:
    """Priority queue of pending re-simulations.

    Demand jobs drain before prefetch jobs; within each class the order is
    FIFO.  Killed entries are pruned lazily (:meth:`prune_killed`) or
    skipped by the caller at pop time, exactly like the daemon's original
    list-based queue.
    """

    _DEMAND, _PREFETCH = 0, 1

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, RunningSim]] = []
        self._seq = itertools.count()

    def push(self, sim: RunningSim) -> None:
        rank = self._PREFETCH if sim.is_prefetch else self._DEMAND
        heapq.heappush(self._heap, (rank, next(self._seq), sim))

    def pop(self) -> RunningSim:
        return heapq.heappop(self._heap)[2]

    def prune_killed(self) -> None:
        live = [entry for entry in self._heap if not entry[2].killed]
        if len(live) != len(self._heap):
            self._heap = live
            heapq.heapify(self._heap)

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __iter__(self) -> Iterator[RunningSim]:
        """Iterate pending sims in service order (tests and introspection)."""
        return (entry[2] for entry in sorted(self._heap))


class ContextShard:
    """Self-locking DV control plane for one simulation context."""

    def __init__(
        self,
        context: SimulationContext,
        executor: SimulationExecutor,
        sim_ids: Iterator[int],
        notify: Callable[[Notification], None],
        metrics: "MetricsRegistry | None" = None,
        on_evict_file: Callable[[str], None] | None = None,
        obs: "SpanRecorder | None" = None,
    ) -> None:
        self.lock = threading.RLock()
        self.context = context
        self._executor = executor
        self._sim_ids = sim_ids
        self._notify = notify
        self.obs = obs
        # (key, client_id) -> (tc, recorder-clock wait start) for traced
        # waiters: the basis of the "sim.wait" span at notification time.
        self._waiter_obs: dict[tuple[int, str], tuple[str | None, float]] = {}
        config = context.config

        def evict_cb(key: int) -> None:
            if on_evict_file is not None:
                on_evict_file(context.filename_of(key))

        self.area = StorageArea(
            config.replacement_policy,
            capacity_bytes=config.max_storage_bytes,
            entry_bytes=config.output_step_bytes,
            on_evict=evict_cb,
            metrics=metrics,
            metrics_prefix=f"cache.{context.name}",
        )
        self.alpha_ema = ExponentialMovingAverage(
            config.ema_smoothing, initial=context.perf.alpha_sim
        )
        self.waiters: dict[int, set[str]] = {}
        self.in_flight: dict[int, int] = {}  # key -> sim_id
        # filename -> key memo: the naming convention is static per
        # context, and every open/release/wclose re-derives the key from
        # the name (a string parse) — cache the bounded valid set.
        self._key_memo: dict[str, int] = {}
        self.sims: dict[int, RunningSim] = {}
        self.pending_jobs = JobQueue()
        self.agents: dict[str, PrefetchAgent] = {}
        # keys each client has open (for pin bookkeeping on disconnect)
        self.open_files: dict[str, list[int]] = {}
        # when each client's last access was *served* (hit time or
        # notification time) — the basis of the pure-processing-time τcli
        # measurement
        self.last_served: dict[str, float] = {}
        # Aggregate experiment counters (Fig. 5 reports these).
        self.total_restarts = 0
        self.total_simulated_outputs = 0
        self.total_killed_sims = 0
        # Metrics plane (no-ops when the deployment carries no registry).
        if metrics is not None:
            prefix = f"dv.{context.name}"
            self._m_opens = metrics.counter(f"{prefix}.opens")
            self._m_hits = metrics.counter(f"{prefix}.hits")
            self._m_misses = metrics.counter(f"{prefix}.misses")
            self._m_releases = metrics.counter(f"{prefix}.releases")
            self._m_restarts = metrics.counter(f"{prefix}.restarts_launched")
            self._m_outputs = metrics.counter(f"{prefix}.outputs_produced")
            self._m_killed = metrics.counter(f"{prefix}.sims_killed")
            self._m_notifications = metrics.counter(f"{prefix}.notifications")
            self._m_running = metrics.gauge(f"{prefix}.running_sims")
            self._m_queued = metrics.gauge(f"{prefix}.queued_jobs")
            self._m_clients = metrics.gauge(f"{prefix}.clients")
            self._m_wait = metrics.histogram(f"{prefix}.estimated_wait")
        else:
            self._m_opens = self._m_hits = self._m_misses = None
            self._m_releases = self._m_restarts = self._m_outputs = None
            self._m_killed = self._m_notifications = None
            self._m_running = self._m_queued = self._m_clients = None
            self._m_wait = None

    @property
    def name(self) -> str:
        return self.context.name

    @property
    def running_count(self) -> int:
        return len(self.sims)

    def summary(self) -> dict:
        """Point-in-time shard state for the ``stats`` op."""
        with self.lock:
            return {
                "context": self.name,
                "clients": len(self.agents),
                "resident_steps": len(self.area),
                "used_bytes": self.area.used_bytes,
                "running_sims": len(self.sims),
                "queued_jobs": len(self.pending_jobs),
                "waited_keys": len(self.waiters),
                "total_restarts": self.total_restarts,
                "total_simulated_outputs": self.total_simulated_outputs,
                "total_killed_sims": self.total_killed_sims,
                "alpha_estimate": self.alpha_ema.value,
            }

    def capture_repl_state(self) -> dict:
        """JSON-serializable snapshot of the shard's warm state — what a
        replica needs to promote itself into a working owner: attached
        clients, the waiter table, cache-resident keys (storage metadata),
        running/queued re-simulation progress markers, and the restart
        latency estimate.  Read-only: unlike :meth:`capture_handoff` the
        shard keeps serving (this is the replication stream's source, not
        an ownership handoff)."""
        with self.lock:
            sims = [
                {
                    "start": sim.start_restart,
                    "stop": sim.stop_restart,
                    "level": sim.parallelism_level,
                    "prefetch": sim.is_prefetch,
                    "owner": sim.owner_client,
                    "produced": sorted(sim.produced_keys),
                }
                for sim in list(self.sims.values())
                + [s for s in self.pending_jobs if not s.killed]
            ]
            return {
                "clients": sorted(self.agents),
                "waiters": sorted(
                    (client_id, self.context.filename_of(key))
                    for key, waiting in self.waiters.items()
                    for client_id in waiting
                ),
                "resident": sorted(self.area.keys()),
                "sims": sims,
                "alpha": self.alpha_ema.value,
                "alpha_count": self.alpha_ema.count,
            }

    def restore_repl_state(self, state: dict, now: float) -> list[Notification]:
        """Promotion: rebuild this shard's control plane from a replicated
        snapshot (the inverse of :meth:`capture_repl_state`).

        Re-attaches clients, re-registers every replicated waiter through
        the normal open path (relaunching demand re-simulations for files
        not on disk), and relaunches in-flight re-simulations whose
        planned outputs have not materialized.  Returns ready
        notifications for waited files already on disk — the caller
        delivers those to the blocked clients immediately; the rest flow
        through the shard's normal notify path when their simulations
        produce them."""
        ready: list[Notification] = []
        with self.lock:
            alpha = state.get("alpha")
            if (
                isinstance(alpha, (int, float))
                and state.get("alpha_count")
                and self.alpha_ema.count == 0
            ):
                # Seed the latency estimate with the dead owner's learned
                # value instead of restarting the EMA from optimism.
                self.alpha_ema.observe(float(alpha))
            for client_id in state.get("clients", ()):
                if client_id not in self.agents:
                    self.client_connect(client_id)
            for entry in state.get("waiters", ()):
                client_id, filename = entry[0], entry[1]
                if client_id not in self.agents:
                    self.client_connect(client_id)
                result = self.handle_open(client_id, filename, now)
                if result.available:
                    ready.append(
                        Notification(client_id, self.name, filename, ok=True)
                    )
            for marker in state.get("sims", ()):
                # Resume interrupted re-simulations (prefetches included):
                # _launch plans only keys still missing, so progress the
                # dead owner already banked is not re-simulated.
                try:
                    start = int(marker["start"])
                    stop = int(marker["stop"])
                    level = int(marker.get("level", 1))
                except (KeyError, TypeError, ValueError):
                    continue
                owner = marker.get("owner")
                if (
                    owner is not None
                    and owner not in self.agents
                    and bool(marker.get("prefetch", False))
                ):
                    continue  # prefetch for a client that is gone: skip
                missing = [
                    k
                    for k in self.context.geometry.outputs_between_restarts(
                        start, stop
                    )
                    if k not in self.area and k not in self.in_flight
                ]
                if not missing:
                    continue  # fully materialized or already relaunched
                self._launch(
                    start, stop, level=level, now=now,
                    is_prefetch=bool(marker.get("prefetch", False)),
                    owner=owner if owner in self.agents else None,
                )
        return ready

    def capture_handoff(self) -> tuple[list[str], list[tuple[str, str]]]:
        """Atomically capture client state for an ownership handoff.

        Returns ``(attached_client_ids, [(client_id, filename), ...])`` —
        everyone attached to this shard plus every outstanding waiter —
        and clears the waiter table, so a subsequent unregister does not
        fail those waits: the new owner replays them instead.  Used when a
        context moves between cluster nodes or multi-core executors.
        """
        with self.lock:
            attached = list(self.agents)
            captured = [
                (client_id, self.context.filename_of(key))
                for key, waiting in self.waiters.items()
                for client_id in waiting
            ]
            self.waiters.clear()
            self._waiter_obs.clear()
        return attached, captured

    # ------------------------------------------------------------------ #
    # Client management
    # ------------------------------------------------------------------ #
    def client_connect(self, client_id: str) -> None:
        """``SIMFS_Init``: attach a client (and its prefetch agent)."""
        with self.lock:
            if client_id in self.agents:
                raise InvalidArgumentError(
                    f"client {client_id!r} already attached to {self.name!r}"
                )
            self.agents[client_id] = PrefetchAgent(
                self.context.config, self.context.perf, self.alpha_ema
            )
            self.open_files[client_id] = []
            if self._m_clients is not None:
                self._m_clients.set(len(self.agents))

    def client_disconnect(self, client_id: str, now: float) -> None:
        """``SIMFS_Finalize``: drop pins, reset the agent, kill orphaned
        prefetch simulations."""
        with self.lock:
            agent = self.agents.pop(client_id, None)
            self.last_served.pop(client_id, None)
            for key in self.open_files.pop(client_id, []):
                if key in self.area:
                    self.area.unpin(key)
            for key, waiting in list(self.waiters.items()):
                waiting.discard(client_id)
                self._waiter_obs.pop((key, client_id), None)
                if not waiting:
                    del self.waiters[key]
            if agent is not None:
                self._kill_useless_prefetches(client_id)
            self.area.evict_until_fits()
            if self._m_clients is not None:
                self._m_clients.set(len(self.agents))

    # ------------------------------------------------------------------ #
    # Client data path
    # ------------------------------------------------------------------ #
    def handle_open(
        self, client_id: str, filename: str, now: float,
        tc: str | None = None,
    ) -> OpenResult:
        """An analysis wants ``filename`` (transparent open or acquire).

        On a hit the file is pinned for the client and the call reports it
        available.  On a miss the client is registered as a waiter and a
        demand re-simulation is launched unless one already covers the
        step; prefetch decisions from the client's agent are executed
        either way.
        """
        with self.lock:
            self._require_client(client_id)
            key = self._key_of(filename)

            hit = self.area.access(key)
            if hit:
                self.area.pin(key)
                self.open_files[client_id].append(key)

            # Pure analysis processing time: gap since this client's
            # previous access was served (excludes time blocked on
            # re-simulations).
            previous_serve = self.last_served.get(client_id)
            processing_time = (
                None if previous_serve is None else now - previous_serve
            )
            if hit:
                self.last_served[client_id] = now

            agent = self.agents[client_id]
            decision = agent.observe_access(key, now, hit, processing_time)
            if decision.pollution:
                # A prefetched step was evicted before use: cache
                # pollution; reset every agent of the context (Sec. IV-C).
                for other in self.agents.values():
                    other.reset()
            if decision.pattern_broken:
                self._kill_useless_prefetches(client_id)

            estimated = 0.0
            if not hit:
                self.waiters.setdefault(key, set()).add(client_id)
                if self.obs is not None and tc is not None:
                    self._waiter_obs[(key, client_id)] = (tc, self.obs.now())
                if key not in self.in_flight:
                    sim = self._launch_demand(client_id, key, now, tc=tc)
                    agent.note_demand_job(sim.start_restart, sim.stop_restart)
                estimated = self._estimate_wait(key, now)

            # Execute prefetch launches after the demand job so coverage
            # bookkeeping extends from its edge.
            for action in decision.launch:
                self._launch_prefetch(client_id, action, now)

            if self._m_opens is not None:
                self._m_opens.inc()
                (self._m_hits if hit else self._m_misses).inc()
                if not hit:
                    self._m_wait.observe(estimated)

            return OpenResult(
                filename=filename,
                state=FileState.ON_DISK if hit else self._flight_state(key),
                estimated_wait=estimated,
            )

    def handle_acquire(
        self, client_id: str, filenames: list[str], now: float,
        tc: str | None = None,
    ) -> list[OpenResult]:
        """``SIMFS_Acquire``: open semantics over a set of files."""
        with self.lock:
            return [
                self.handle_open(client_id, name, now, tc=tc)
                for name in filenames
            ]

    def handle_release(self, client_id: str, filename: str, now: float) -> None:
        """``SIMFS_Release`` / transparent read-close: drop the pin."""
        with self.lock:
            self._require_client(client_id)
            key = self._key_of(filename)
            open_list = self.open_files[client_id]
            if key not in open_list:
                raise InvalidArgumentError(
                    f"client {client_id!r} does not hold {filename!r}"
                )
            open_list.remove(key)
            if key in self.area:
                self.area.unpin(key)
                self.area.evict_until_fits()
            if self._m_releases is not None:
                self._m_releases.inc()

    def handle_bitrep(self, filename: str, path: str) -> bool:
        """``SIMFS_Bitrep``: does the file at ``path`` match the checksum
        recorded for ``filename`` at initial-simulation time?

        The checksum itself runs *outside* the shard lock — it is pure
        file I/O and must not stall the context's control plane.
        """
        with self.lock:
            reference = self.context.reference_checksum(filename)
            if reference is None:
                from repro.core.errors import ChecksumUnavailableError

                raise ChecksumUnavailableError(
                    f"no reference checksum recorded for {filename!r}"
                )
            driver = self.context.driver
        try:
            return driver.checksum(path) == reference
        except OSError as exc:
            # The file can vanish mid-checksum (eviction runs under the
            # shard lock we just released); answer with an error reply
            # rather than an escaping OSError.
            raise InvalidArgumentError(
                f"cannot read {path!r} for bitrep: {exc}"
            ) from exc

    # ------------------------------------------------------------------ #
    # Simulator data path (DVLib intercepts the simulator's closes)
    # ------------------------------------------------------------------ #
    def sim_file_closed(self, filename: str, now: float) -> list[Notification]:
        """A running simulation closed an output file: it is ready on disk
        (Fig. 4 step 5).  Inserts it into the storage area, updates the
        latency estimate, notifies waiters, and starts queued jobs when a
        simulation completes."""
        with self.lock:
            naming = self.context.driver.naming
            if naming.is_restart(filename):
                return []  # checkpoint writes are not analysis-visible
            key = self._key_of(filename)

            # The file exists now, whichever simulation produced it: the
            # in-flight claim is satisfied unconditionally (the claiming
            # sim may be queued or already gone).
            owner = self.in_flight.pop(key, None)
            sim = self.sims.get(owner) if owner is not None else None
            if sim is not None:
                sim.produced_keys.add(key)
                if sim.first_output_time is None:
                    sim.first_output_time = now
                    # Observed restart latency: launch -> first output,
                    # minus one production period (Sec. IV-C1c).
                    tau = self.context.perf.tau(sim.parallelism_level)
                    self.alpha_ema.observe(
                        max(0.0, now - sim.launch_time - tau)
                    )
            self.total_simulated_outputs += 1
            if self._m_outputs is not None:
                self._m_outputs.inc()

            waiting = self.waiters.pop(key, set())
            cost = float(self.context.geometry.miss_cost(key))
            # Atomic pinned insert: a step with waiters must not be
            # evicted by the cache pressure of its own insertion wave.
            self.area.insert(key, cost=cost, pinned=bool(waiting))
            notifications = []
            for idx, client_id in enumerate(waiting):
                if idx > 0:
                    self.area.pin(key)
                self.open_files[client_id].append(key)
                self.last_served[client_id] = now
                notifications.append(
                    Notification(client_id, self.name, filename, ok=True,
                                 tc=self._waiter_span(key, client_id))
                )
            if sim is not None and sim.done:
                self._sim_finished(sim, now)
            if self._m_notifications is not None and notifications:
                self._m_notifications.inc(len(notifications))
            for notification in notifications:
                self._notify(notification)
            return notifications

    def sim_completed(self, sim_id: int, now: float) -> None:
        """The executor reports a simulation process exited."""
        with self.lock:
            sim = self.sims.get(sim_id)
            if sim is not None:
                self._sim_finished(sim, now)

    def sim_failed(self, sim_id: int, now: float) -> list[Notification]:
        """A re-simulation crashed: fail its waiters (Sec. III-C status)."""
        with self.lock:
            sim = self.sims.pop(sim_id, None)
            if sim is None:
                return []
            notifications = []
            for key in sim.planned_keys:
                if self.in_flight.get(key) == sim_id:
                    del self.in_flight[key]
                for client_id in self.waiters.pop(key, set()):
                    notifications.append(
                        Notification(
                            client_id,
                            self.name,
                            self.context.filename_of(key),
                            ok=False,
                            tc=self._waiter_span(key, client_id, ok=False),
                        )
                    )
            self._start_queued(now)
            for notification in notifications:
                self._notify(notification)
            return notifications

    # ------------------------------------------------------------------ #
    # Internals (all called with the shard lock held)
    # ------------------------------------------------------------------ #
    def _waiter_span(
        self, key: int, client_id: str, ok: bool = True
    ) -> str | None:
        """Close out a traced waiter: emit its ``sim.wait`` span and hand
        back the tc for the ready notification (None when untraced)."""
        if self.obs is None:
            return None
        tc, began = self._waiter_obs.pop((key, client_id), (None, None))
        if tc is None:
            return None
        self.obs.record(
            "sim.wait", tc, began, self.obs.now(),
            context=self.name, file=self.context.filename_of(key),
            ok=None if ok else False,
        )
        return tc

    def _require_client(self, client_id: str) -> None:
        if client_id not in self.agents:
            raise InvalidArgumentError(
                f"client {client_id!r} is not attached to {self.name!r} "
                "(call client_connect first)"
            )

    def _key_of(self, filename: str) -> int:
        key = self._key_memo.get(filename)
        if key is not None:
            return key
        try:
            key = self.context.key_of(filename)
        except FileNotInContextError:
            raise
        except Exception as exc:  # driver bugs surface as context errors
            raise FileNotInContextError(str(exc)) from exc
        # Only valid names are cached, so the memo is bounded by the
        # context's output-step count (invalid probes cannot grow it).
        self._key_memo[filename] = key
        return key

    def _flight_state(self, key: int) -> FileState:
        sim_id = self.in_flight.get(key)
        if sim_id is None:
            return FileState.UNKNOWN
        sim = self.sims.get(sim_id)
        if sim is None:
            return FileState.QUEUED
        return FileState.SIMULATING

    def _launch_demand(
        self, client_id: str, key: int, now: float, tc: str | None = None
    ) -> RunningSim:
        geo = self.context.geometry
        start_r, stop_r = geo.resim_job_extent(key)
        return self._launch(
            start_r,
            stop_r,
            level=self.context.config.default_parallelism_level,
            now=now,
            is_prefetch=False,
            owner=client_id,
            tc=tc,
        )

    def _launch_prefetch(
        self, client_id: str, action: PrefetchAction, now: float
    ) -> RunningSim | None:
        geo = self.context.geometry
        planned = [
            k
            for k in geo.outputs_between_restarts(
                action.start_restart, action.stop_restart
            )
            if k not in self.area and k not in self.in_flight
        ]
        if not planned:
            return None
        return self._launch(
            action.start_restart,
            action.stop_restart,
            level=action.parallelism_level,
            now=now,
            is_prefetch=True,
            owner=client_id,
        )

    def _launch(
        self,
        start_r: int,
        stop_r: int,
        level: int,
        now: float,
        is_prefetch: bool,
        owner: str | None,
        tc: str | None = None,
    ) -> RunningSim:
        geo = self.context.geometry
        planned = [
            k
            for k in geo.outputs_between_restarts(start_r, stop_r)
            if k not in self.area
        ]
        sim = RunningSim(
            sim_id=next(self._sim_ids),
            context_name=self.name,
            start_restart=start_r,
            stop_restart=stop_r,
            parallelism_level=level,
            launch_time=now,
            is_prefetch=is_prefetch,
            owner_client=owner,
            planned_keys=planned,
            tc=tc,
        )
        for key in planned:
            self.in_flight.setdefault(key, sim.sim_id)
        if self.running_count >= self.context.config.smax:
            # smax reached: queue (demand jobs drain before prefetch jobs).
            self.pending_jobs.push(sim)
            if self._m_queued is not None:
                self._m_queued.set(len(self.pending_jobs))
            return sim
        self._start(sim, now)
        return sim

    def _start(self, sim: RunningSim, now: float) -> None:
        sim.launch_time = now
        if self.obs is not None and sim.tc is not None:
            sim.obs_start = self.obs.now()
        self.sims[sim.sim_id] = sim
        self.total_restarts += 1
        if self._m_restarts is not None:
            self._m_restarts.inc()
            self._m_running.set(len(self.sims))
        self._executor.launch(self.context, sim)

    def _sim_finished(self, sim: RunningSim, now: float) -> None:
        if (
            self.obs is not None
            and sim.tc is not None
            and sim.obs_start is not None
        ):
            self.obs.record(
                "sim.run", sim.tc, sim.obs_start, self.obs.now(),
                context=self.name, sim_id=sim.sim_id,
                prefetch=sim.is_prefetch or None,
            )
        self.sims.pop(sim.sim_id, None)
        for key in sim.planned_keys:
            if self.in_flight.get(key) == sim.sim_id:
                del self.in_flight[key]
        self._start_queued(now)
        if self._m_running is not None:
            self._m_running.set(len(self.sims))

    def _start_queued(self, now: float) -> None:
        while self.pending_jobs and self.running_count < self.context.config.smax:
            sim = self.pending_jobs.pop()
            if sim.killed:
                self._release_claims(sim)
                continue
            # Drop keys that materialized while queued — releasing their
            # in-flight claims, or later misses would wait on a simulation
            # that never runs.
            dropped = [k for k in sim.planned_keys if k in self.area]
            sim.planned_keys = [k for k in sim.planned_keys if k not in self.area]
            for key in dropped:
                if self.in_flight.get(key) == sim.sim_id:
                    del self.in_flight[key]
            if not sim.planned_keys:
                continue
            self._start(sim, now)
        if self._m_queued is not None:
            self._m_queued.set(len(self.pending_jobs))

    def _release_claims(self, sim: RunningSim) -> None:
        for key in sim.planned_keys:
            if self.in_flight.get(key) == sim.sim_id:
                del self.in_flight[key]

    def _kill_useless_prefetches(self, client_id: str) -> None:
        """Kill prefetch sims of this client nobody else is waiting on
        (Sec. IV-C, prefetching effectiveness)."""
        for sim in list(self.sims.values()) + list(self.pending_jobs):
            if not sim.is_prefetch or sim.owner_client != client_id or sim.killed:
                continue
            has_waiters = any(
                self.waiters.get(key) for key in sim.planned_keys
            )
            if has_waiters:
                continue
            sim.killed = True
            self.total_killed_sims += 1
            if self._m_killed is not None:
                self._m_killed.inc()
            if sim.sim_id in self.sims:
                del self.sims[sim.sim_id]
                self._executor.kill(sim.sim_id)
            for key in sim.planned_keys:
                if self.in_flight.get(key) == sim.sim_id:
                    del self.in_flight[key]
        self.pending_jobs.prune_killed()
        if self._m_running is not None:
            self._m_running.set(len(self.sims))
            self._m_queued.set(len(self.pending_jobs))

    def _estimate_wait(self, key: int, now: float) -> float:
        """Estimated seconds until ``key`` is on disk (Sec. III-C status)."""
        sim_id = self.in_flight.get(key)
        perf = self.context.perf
        alpha = self.alpha_ema.value
        if sim_id is None or sim_id not in self.sims:
            # Queued or unknown: full latency plus the worst-case interval.
            return alpha + self.context.geometry.outputs_per_restart_interval * perf.tau(
                self.context.config.default_parallelism_level
            )
        sim = self.sims[sim_id]
        tau = perf.tau(sim.parallelism_level)
        try:
            position = sim.planned_keys.index(key) + 1
        except ValueError:
            position = len(sim.planned_keys)
        expected = alpha + position * tau
        elapsed = now - sim.launch_time
        return max(0.0, expected - elapsed)
