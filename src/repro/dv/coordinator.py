"""The Data Virtualizer registry/router (paper Sec. III).

:class:`DVCoordinator` is a thin routing layer over **context shards**
(:mod:`repro.dv.shard`): every registered simulation context gets a
self-contained :class:`~repro.dv.shard.ContextShard` owning its own lock,
storage area, waiter table, job queue and prefetch agents.  The
coordinator maps ``context_name`` to the shard and delegates; it holds no
data-path state and takes no global lock, so traffic on independent
contexts never contends.

Both front ends drive the same shards: the TCP daemon
(:mod:`repro.dv.server`) calls in from socket handlers with wall-clock
timestamps, and the discrete-event simulator (:mod:`repro.des`) calls in
with virtual timestamps.  That is how the reproduction keeps the paper's
"one logic, two deployments" property testable.
"""

from __future__ import annotations

import itertools
import threading
from collections.abc import Callable

from repro.core.context import SimulationContext
from repro.core.errors import ContextError
from repro.dv.shard import (
    ContextShard,
    Notification,
    OpenResult,
    RunningSim,
    SimulationExecutor,
)
from repro.metrics import MetricsRegistry

__all__ = [
    "SimulationExecutor",
    "RunningSim",
    "OpenResult",
    "Notification",
    "DVCoordinator",
]


class DVCoordinator:
    """Registry of context shards plus name-based routing."""

    def __init__(
        self,
        executor: SimulationExecutor,
        notify: Callable[[Notification], None] | None = None,
        metrics: MetricsRegistry | None = None,
        obs=None,
    ) -> None:
        self._executor = executor
        self._notify = notify or (lambda _n: None)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Span recorder shared with every shard (None = tracing off).
        self.obs = obs
        self._shards: dict[str, ContextShard] = {}
        self._registry_lock = threading.Lock()
        # Shared across shards so sim ids stay globally unique (the
        # launcher and the DES key their book-keeping by sim_id alone).
        self._sim_ids = itertools.count(1)

    # ------------------------------------------------------------------ #
    # Context and client management
    # ------------------------------------------------------------------ #
    def register_context(
        self,
        context: SimulationContext,
        on_evict_file: Callable[[str], None] | None = None,
    ) -> ContextShard:
        """Register a simulation context as a new shard."""
        with self._registry_lock:
            if context.name in self._shards:
                raise ContextError(f"context {context.name!r} already registered")
            shard = ContextShard(
                context,
                executor=self._executor,
                sim_ids=self._sim_ids,
                notify=self._dispatch_notification,
                metrics=self.metrics,
                on_evict_file=on_evict_file,
                obs=self.obs,
            )
            self._shards[context.name] = shard
            return shard

    def unregister_context(
        self, context_name: str, now: float = 0.0,
        prune_metrics: bool = True,
    ) -> None:
        """Remove a context shard from the registry.

        Outstanding waiters are failed (``ok=False`` notifications) so no
        client hangs on a context that no longer exists here, and every
        running or queued re-simulation is killed through the executor.
        The shard's per-context metric series (``dv.<name>.*`` and
        ``cache.<name>.*``) are pruned from the registry so churny
        register/unregister cycles (migrations, failovers) don't
        accumulate dead series without bound; pass
        ``prune_metrics=False`` to keep the historical behavior where a
        re-registration under the same name resumes the same counters.
        """
        with self._registry_lock:
            try:
                shard = self._shards.pop(context_name)
            except KeyError:
                raise ContextError(
                    f"unknown context {context_name!r}"
                ) from None
        with shard.lock:
            notifications = [
                Notification(client_id, context_name,
                             shard.context.filename_of(key), ok=False)
                for key, waiting in shard.waiters.items()
                for client_id in waiting
            ]
            shard.waiters.clear()
            shard._waiter_obs.clear()
            for sim in list(shard.sims.values()):
                self._executor.kill(sim.sim_id)
            shard.sims.clear()
            shard.in_flight.clear()
            shard.pending_jobs = type(shard.pending_jobs)()
        for notification in notifications:
            self._dispatch_notification(notification)
        if prune_metrics:
            # Trailing dot: "dv.cosmo." must not take "dv.cosmology.*" down.
            self.metrics.prune(f"dv.{context_name}.")
            self.metrics.prune(f"cache.{context_name}.")

    def release_context(
        self, context_name: str
    ) -> tuple[list[tuple[str, str]], list[tuple[str, str, str]]]:
        """Handoff variant of :meth:`unregister_context`.

        Instead of failing outstanding waiters, their identities are
        captured (and the waiter table cleared, so the unregister does not
        fail them) and returned to the caller for replay against the new
        owner: ``(reattaches, replays)`` as ``[(client_id, context)]`` and
        ``[(client_id, context, filename)]``.  A missing context returns
        two empty lists — releases race with crashes and double-fire.
        """
        try:
            shard = self.shard(context_name)
        except ContextError:
            return [], []
        attached, captured = shard.capture_handoff()
        try:
            self.unregister_context(context_name)
        except ContextError:
            pass
        return (
            [(client_id, context_name) for client_id in attached],
            [
                (client_id, context_name, filename)
                for client_id, filename in captured
            ],
        )

    def has_context(self, context_name: str) -> bool:
        """Cheap ownership probe (the cluster gateway's routing test)."""
        return context_name in self._shards

    def context_names(self) -> list[str]:
        with self._registry_lock:
            return sorted(self._shards)

    def shard(self, context_name: str) -> ContextShard:
        """The shard owning ``context_name``."""
        try:
            return self._shards[context_name]
        except KeyError:
            raise ContextError(f"unknown context {context_name!r}") from None

    def shards(self) -> list[ContextShard]:
        with self._registry_lock:
            return [self._shards[name] for name in sorted(self._shards)]

    # Historical name: the shard *is* the per-context state bag the tests
    # and the DES introspect.
    get_state = shard

    def client_connect(self, client_id: str, context_name: str) -> None:
        """``SIMFS_Init``: attach a client (and its prefetch agent)."""
        self.shard(context_name).client_connect(client_id)

    def client_disconnect(self, client_id: str, context_name: str, now: float) -> None:
        """``SIMFS_Finalize``: detach a client from one context."""
        self.shard(context_name).client_disconnect(client_id, now)

    # ------------------------------------------------------------------ #
    # Client data path
    # ------------------------------------------------------------------ #
    def handle_open(
        self, client_id: str, context_name: str, filename: str, now: float,
        tc: str | None = None,
    ) -> OpenResult:
        return self.shard(context_name).handle_open(
            client_id, filename, now, tc=tc
        )

    def handle_acquire(
        self, client_id: str, context_name: str, filenames: list[str], now: float,
        tc: str | None = None,
    ) -> list[OpenResult]:
        return self.shard(context_name).handle_acquire(
            client_id, filenames, now, tc=tc
        )

    def handle_release(
        self, client_id: str, context_name: str, filename: str, now: float
    ) -> None:
        self.shard(context_name).handle_release(client_id, filename, now)

    def handle_bitrep(self, context_name: str, filename: str, path: str) -> bool:
        return self.shard(context_name).handle_bitrep(filename, path)

    # ------------------------------------------------------------------ #
    # Simulator data path (DVLib intercepts the simulator's closes)
    # ------------------------------------------------------------------ #
    def sim_file_closed(
        self, context_name: str, filename: str, now: float
    ) -> list[Notification]:
        return self.shard(context_name).sim_file_closed(filename, now)

    def sim_completed(self, context_name: str, sim_id: int, now: float) -> None:
        self.shard(context_name).sim_completed(sim_id, now)

    def sim_failed(
        self, context_name: str, sim_id: int, now: float
    ) -> list[Notification]:
        return self.shard(context_name).sim_failed(sim_id, now)

    # ------------------------------------------------------------------ #
    # Aggregates (Fig. 5 counters and the stats plane)
    # ------------------------------------------------------------------ #
    @property
    def total_restarts(self) -> int:
        return sum(s.total_restarts for s in self.shards())

    @property
    def total_simulated_outputs(self) -> int:
        return sum(s.total_simulated_outputs for s in self.shards())

    @property
    def total_killed_sims(self) -> int:
        return sum(s.total_killed_sims for s in self.shards())

    def stats_snapshot(self) -> dict:
        """JSON-serializable service state: per-shard summaries plus the
        metrics registry (the payload of the ``stats`` protocol op)."""
        summaries = [shard.summary() for shard in self.shards()]
        # Totals from the same locked pass, so they always agree with the
        # per-shard summaries of this snapshot.
        return {
            "contexts": summaries,
            "totals": {
                "restarts": sum(s["total_restarts"] for s in summaries),
                "simulated_outputs": sum(
                    s["total_simulated_outputs"] for s in summaries
                ),
                "killed_sims": sum(s["total_killed_sims"] for s in summaries),
            },
            "metrics": self.metrics.snapshot(),
        }

    # ------------------------------------------------------------------ #
    def _dispatch_notification(self, notification: Notification) -> None:
        # Read ``self._notify`` at delivery time: in-process front ends
        # (LocalConnection, the DES router) splice their own fan-out in by
        # rebinding the attribute after construction.
        self._notify(notification)
