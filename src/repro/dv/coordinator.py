"""The Data Virtualizer core logic (paper Sec. III).

:class:`DVCoordinator` is the transport-free heart of SimFS.  It owns, per
registered simulation context:

* the **storage area** (bounded cache of output steps with reference
  counters and the configured replacement scheme);
* the **waiter table** — which clients block on which missing files;
* the **running re-simulations** — launched through a pluggable
  :class:`SimulationExecutor`, bounded by the context's ``smax``, with a
  priority queue (demand jobs before prefetch jobs);
* one **prefetch agent per client** plus the shared restart-latency EMA.

Both front ends drive the same coordinator: the TCP daemon
(:mod:`repro.dv.server`) calls it from socket handlers with wall-clock
timestamps, and the discrete-event simulator (:mod:`repro.des`) calls it
with virtual timestamps.  That is how the reproduction keeps the paper's
"one logic, two deployments" property testable.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Protocol

from repro.cache.manager import StorageArea
from repro.core.context import SimulationContext
from repro.core.errors import (
    ContextError,
    FileNotInContextError,
    InvalidArgumentError,
)
from repro.core.status import FileState
from repro.prefetch.agent import PrefetchAction, PrefetchAgent
from repro.util.ema import ExponentialMovingAverage

__all__ = [
    "SimulationExecutor",
    "RunningSim",
    "OpenResult",
    "Notification",
    "DVCoordinator",
]


class SimulationExecutor(Protocol):
    """How the coordinator starts and stops re-simulations.

    Real mode: a thread-pool launcher running driver jobs (or batch-system
    submission).  Virtual-time mode: the DES schedules production events.
    """

    def launch(self, context: SimulationContext, sim: "RunningSim") -> None:
        """Start the simulation; file-completion callbacks flow back into
        the coordinator asynchronously."""
        ...

    def kill(self, sim_id: int) -> None:
        """Best-effort stop of a running simulation."""
        ...


@dataclass
class RunningSim:
    """Book-keeping for one launched re-simulation."""

    sim_id: int
    context_name: str
    start_restart: int
    stop_restart: int
    parallelism_level: int
    launch_time: float
    is_prefetch: bool
    owner_client: str | None
    planned_keys: list[int]
    produced_keys: set[int] = field(default_factory=set)
    first_output_time: float | None = None
    killed: bool = False

    @property
    def done(self) -> bool:
        return self.produced_keys >= set(self.planned_keys)


@dataclass(frozen=True)
class OpenResult:
    """Outcome of a client open/acquire on one file."""

    filename: str
    state: FileState
    estimated_wait: float = 0.0

    @property
    def available(self) -> bool:
        return self.state is FileState.ON_DISK


@dataclass(frozen=True)
class Notification:
    """File-ready (or failed) message to deliver to a waiting client."""

    client_id: str
    context_name: str
    filename: str
    ok: bool = True


@dataclass
class _ContextState:
    context: SimulationContext
    area: StorageArea
    alpha_ema: ExponentialMovingAverage
    waiters: dict[int, set[str]] = field(default_factory=dict)
    in_flight: dict[int, int] = field(default_factory=dict)  # key -> sim_id
    sims: dict[int, RunningSim] = field(default_factory=dict)
    pending_jobs: list[RunningSim] = field(default_factory=list)
    agents: dict[str, PrefetchAgent] = field(default_factory=dict)
    # keys each client has open (for pin bookkeeping on disconnect)
    open_files: dict[str, list[int]] = field(default_factory=dict)
    # when each client's last access was *served* (hit time or notification
    # time) — the basis of the pure-processing-time τcli measurement
    last_served: dict[str, float] = field(default_factory=dict)

    @property
    def running_count(self) -> int:
        return len(self.sims)


class DVCoordinator:
    """Transport-free DV daemon core."""

    def __init__(
        self,
        executor: SimulationExecutor,
        notify: Callable[[Notification], None] | None = None,
    ) -> None:
        self._executor = executor
        self._notify = notify or (lambda _n: None)
        self._contexts: dict[str, _ContextState] = {}
        self._sim_ids = itertools.count(1)
        # Aggregate experiment counters (Fig. 5 reports these).
        self.total_restarts = 0
        self.total_simulated_outputs = 0
        self.total_killed_sims = 0

    # ------------------------------------------------------------------ #
    # Context and client management
    # ------------------------------------------------------------------ #
    def register_context(
        self,
        context: SimulationContext,
        on_evict_file: Callable[[str], None] | None = None,
    ) -> None:
        """Register a simulation context with its bounded storage area."""
        if context.name in self._contexts:
            raise ContextError(f"context {context.name!r} already registered")
        config = context.config

        def evict_cb(key: int) -> None:
            if on_evict_file is not None:
                on_evict_file(context.filename_of(key))

        area = StorageArea(
            config.replacement_policy,
            capacity_bytes=config.max_storage_bytes,
            entry_bytes=config.output_step_bytes,
            on_evict=evict_cb,
        )
        self._contexts[context.name] = _ContextState(
            context=context,
            area=area,
            alpha_ema=ExponentialMovingAverage(
                config.ema_smoothing, initial=context.perf.alpha_sim
            ),
        )

    def context_names(self) -> list[str]:
        return sorted(self._contexts)

    def get_state(self, context_name: str) -> _ContextState:
        """Internal state of a context (used by tests and the DES)."""
        try:
            return self._contexts[context_name]
        except KeyError:
            raise ContextError(f"unknown context {context_name!r}") from None

    def client_connect(self, client_id: str, context_name: str) -> None:
        """``SIMFS_Init``: attach a client (and its prefetch agent)."""
        state = self.get_state(context_name)
        if client_id in state.agents:
            raise InvalidArgumentError(
                f"client {client_id!r} already attached to {context_name!r}"
            )
        state.agents[client_id] = PrefetchAgent(
            state.context.config, state.context.perf, state.alpha_ema
        )
        state.open_files[client_id] = []

    def client_disconnect(self, client_id: str, context_name: str, now: float) -> None:
        """``SIMFS_Finalize``: drop pins, reset the agent, kill orphaned
        prefetch simulations."""
        state = self.get_state(context_name)
        agent = state.agents.pop(client_id, None)
        state.last_served.pop(client_id, None)
        for key in state.open_files.pop(client_id, []):
            if key in state.area:
                state.area.unpin(key)
        for key, waiting in list(state.waiters.items()):
            waiting.discard(client_id)
            if not waiting:
                del state.waiters[key]
        if agent is not None:
            self._kill_useless_prefetches(state, client_id)
        state.area.evict_until_fits()

    # ------------------------------------------------------------------ #
    # Client data path
    # ------------------------------------------------------------------ #
    def handle_open(
        self, client_id: str, context_name: str, filename: str, now: float
    ) -> OpenResult:
        """An analysis wants ``filename`` (transparent open or acquire).

        On a hit the file is pinned for the client and the call reports it
        available.  On a miss the client is registered as a waiter and a
        demand re-simulation is launched unless one already covers the
        step; prefetch decisions from the client's agent are executed
        either way.
        """
        state = self.get_state(context_name)
        self._require_client(state, client_id, context_name)
        key = self._key_of(state, filename)

        hit = state.area.access(key)
        if hit:
            state.area.pin(key)
            state.open_files[client_id].append(key)

        # Pure analysis processing time: gap since this client's previous
        # access was served (excludes time blocked on re-simulations).
        previous_serve = state.last_served.get(client_id)
        processing_time = None if previous_serve is None else now - previous_serve
        if hit:
            state.last_served[client_id] = now

        agent = state.agents[client_id]
        decision = agent.observe_access(key, now, hit, processing_time)
        if decision.pollution:
            # A prefetched step was evicted before use: cache pollution;
            # reset every agent of the context (Sec. IV-C).
            for other in state.agents.values():
                other.reset()
        if decision.pattern_broken:
            self._kill_useless_prefetches(state, client_id)

        estimated = 0.0
        if not hit:
            state.waiters.setdefault(key, set()).add(client_id)
            if key not in state.in_flight:
                sim = self._launch_demand(state, client_id, key, now)
                agent.note_demand_job(sim.start_restart, sim.stop_restart)
            estimated = self._estimate_wait(state, key, now)

        # Execute prefetch launches after the demand job so coverage
        # bookkeeping extends from its edge.
        for action in decision.launch:
            self._launch_prefetch(state, client_id, action, now)

        return OpenResult(
            filename=filename,
            state=FileState.ON_DISK if hit else self._flight_state(state, key),
            estimated_wait=estimated,
        )

    def handle_acquire(
        self, client_id: str, context_name: str, filenames: list[str], now: float
    ) -> list[OpenResult]:
        """``SIMFS_Acquire``: open semantics over a set of files."""
        return [
            self.handle_open(client_id, context_name, name, now)
            for name in filenames
        ]

    def handle_release(
        self, client_id: str, context_name: str, filename: str, now: float
    ) -> None:
        """``SIMFS_Release`` / transparent read-close: drop the pin."""
        state = self.get_state(context_name)
        self._require_client(state, client_id, context_name)
        key = self._key_of(state, filename)
        open_list = state.open_files[client_id]
        if key not in open_list:
            raise InvalidArgumentError(
                f"client {client_id!r} does not hold {filename!r}"
            )
        open_list.remove(key)
        if key in state.area:
            state.area.unpin(key)
            state.area.evict_until_fits()

    def handle_bitrep(self, context_name: str, filename: str, path: str) -> bool:
        """``SIMFS_Bitrep``: does the file at ``path`` match the checksum
        recorded for ``filename`` at initial-simulation time?"""
        state = self.get_state(context_name)
        reference = state.context.reference_checksum(filename)
        if reference is None:
            from repro.core.errors import ChecksumUnavailableError

            raise ChecksumUnavailableError(
                f"no reference checksum recorded for {filename!r}"
            )
        return state.context.driver.checksum(path) == reference

    # ------------------------------------------------------------------ #
    # Simulator data path (DVLib intercepts the simulator's closes)
    # ------------------------------------------------------------------ #
    def sim_file_closed(
        self, context_name: str, filename: str, now: float
    ) -> list[Notification]:
        """A running simulation closed an output file: it is ready on disk
        (Fig. 4 step 5).  Inserts it into the storage area, updates the
        latency estimate, notifies waiters, and starts queued jobs when a
        simulation completes."""
        state = self.get_state(context_name)
        naming = state.context.driver.naming
        if naming.is_restart(filename):
            return []  # checkpoint writes are not analysis-visible
        key = self._key_of(state, filename)

        # The file exists now, whichever simulation produced it: the
        # in-flight claim is satisfied unconditionally (the claiming sim
        # may be queued or already gone).
        owner = state.in_flight.pop(key, None)
        sim = state.sims.get(owner) if owner is not None else None
        if sim is not None:
            sim.produced_keys.add(key)
            if sim.first_output_time is None:
                sim.first_output_time = now
                # Observed restart latency: launch -> first output, minus
                # one production period (Sec. IV-C1c).
                tau = state.context.perf.tau(sim.parallelism_level)
                state.alpha_ema.observe(max(0.0, now - sim.launch_time - tau))
        self.total_simulated_outputs += 1

        waiting = state.waiters.pop(key, set())
        cost = float(state.context.geometry.miss_cost(key))
        # Atomic pinned insert: a step with waiters must not be evicted by
        # the cache pressure of its own insertion wave.
        state.area.insert(key, cost=cost, pinned=bool(waiting))
        notifications = []
        for idx, client_id in enumerate(waiting):
            if idx > 0:
                state.area.pin(key)
            state.open_files[client_id].append(key)
            state.last_served[client_id] = now
            notifications.append(
                Notification(client_id, context_name, filename, ok=True)
            )
        if sim is not None and sim.done:
            self._sim_finished(state, sim, now)
        for notification in notifications:
            self._notify(notification)
        return notifications

    def sim_completed(self, context_name: str, sim_id: int, now: float) -> None:
        """The executor reports a simulation process exited."""
        state = self.get_state(context_name)
        sim = state.sims.get(sim_id)
        if sim is not None:
            self._sim_finished(state, sim, now)

    def sim_failed(self, context_name: str, sim_id: int, now: float) -> list[Notification]:
        """A re-simulation crashed: fail its waiters (Sec. III-C status)."""
        state = self.get_state(context_name)
        sim = state.sims.pop(sim_id, None)
        if sim is None:
            return []
        notifications = []
        for key in sim.planned_keys:
            if state.in_flight.get(key) == sim_id:
                del state.in_flight[key]
            for client_id in state.waiters.pop(key, set()):
                notifications.append(
                    Notification(
                        client_id,
                        context_name,
                        state.context.filename_of(key),
                        ok=False,
                    )
                )
        self._start_queued(state, now)
        for notification in notifications:
            self._notify(notification)
        return notifications

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _require_client(
        self, state: _ContextState, client_id: str, context_name: str
    ) -> None:
        if client_id not in state.agents:
            raise InvalidArgumentError(
                f"client {client_id!r} is not attached to {context_name!r} "
                "(call client_connect first)"
            )

    def _key_of(self, state: _ContextState, filename: str) -> int:
        try:
            return state.context.key_of(filename)
        except FileNotInContextError:
            raise
        except Exception as exc:  # driver bugs surface as context errors
            raise FileNotInContextError(str(exc)) from exc

    def _flight_state(self, state: _ContextState, key: int) -> FileState:
        sim_id = state.in_flight.get(key)
        if sim_id is None:
            return FileState.UNKNOWN
        sim = state.sims.get(sim_id)
        if sim is None:
            return FileState.QUEUED
        return FileState.SIMULATING

    def _launch_demand(
        self, state: _ContextState, client_id: str, key: int, now: float
    ) -> RunningSim:
        geo = state.context.geometry
        start_r, stop_r = geo.resim_job_extent(key)
        return self._launch(
            state,
            start_r,
            stop_r,
            level=state.context.config.default_parallelism_level,
            now=now,
            is_prefetch=False,
            owner=client_id,
        )

    def _launch_prefetch(
        self, state: _ContextState, client_id: str, action: PrefetchAction, now: float
    ) -> RunningSim | None:
        geo = state.context.geometry
        planned = [
            k
            for k in geo.outputs_between_restarts(
                action.start_restart, action.stop_restart
            )
            if k not in state.area and k not in state.in_flight
        ]
        if not planned:
            return None
        return self._launch(
            state,
            action.start_restart,
            action.stop_restart,
            level=action.parallelism_level,
            now=now,
            is_prefetch=True,
            owner=client_id,
        )

    def _launch(
        self,
        state: _ContextState,
        start_r: int,
        stop_r: int,
        level: int,
        now: float,
        is_prefetch: bool,
        owner: str | None,
    ) -> RunningSim:
        geo = state.context.geometry
        planned = [
            k
            for k in geo.outputs_between_restarts(start_r, stop_r)
            if k not in state.area
        ]
        sim = RunningSim(
            sim_id=next(self._sim_ids),
            context_name=state.context.name,
            start_restart=start_r,
            stop_restart=stop_r,
            parallelism_level=level,
            launch_time=now,
            is_prefetch=is_prefetch,
            owner_client=owner,
            planned_keys=planned,
        )
        for key in planned:
            state.in_flight.setdefault(key, sim.sim_id)
        if state.running_count >= state.context.config.smax:
            # smax reached: queue (demand jobs ahead of prefetch jobs).
            if is_prefetch:
                state.pending_jobs.append(sim)
            else:
                insert_at = next(
                    (
                        idx
                        for idx, queued in enumerate(state.pending_jobs)
                        if queued.is_prefetch
                    ),
                    len(state.pending_jobs),
                )
                state.pending_jobs.insert(insert_at, sim)
            return sim
        self._start(state, sim, now)
        return sim

    def _start(self, state: _ContextState, sim: RunningSim, now: float) -> None:
        sim.launch_time = now
        state.sims[sim.sim_id] = sim
        self.total_restarts += 1
        self._executor.launch(state.context, sim)

    def _sim_finished(self, state: _ContextState, sim: RunningSim, now: float) -> None:
        state.sims.pop(sim.sim_id, None)
        for key in sim.planned_keys:
            if state.in_flight.get(key) == sim.sim_id:
                del state.in_flight[key]
        self._start_queued(state, now)

    def _start_queued(self, state: _ContextState, now: float) -> None:
        while state.pending_jobs and state.running_count < state.context.config.smax:
            sim = state.pending_jobs.pop(0)
            if sim.killed:
                self._release_claims(state, sim)
                continue
            # Drop keys that materialized while queued — releasing their
            # in-flight claims, or later misses would wait on a simulation
            # that never runs.
            dropped = [k for k in sim.planned_keys if k in state.area]
            sim.planned_keys = [k for k in sim.planned_keys if k not in state.area]
            for key in dropped:
                if state.in_flight.get(key) == sim.sim_id:
                    del state.in_flight[key]
            if not sim.planned_keys:
                continue
            self._start(state, sim, now)

    def _release_claims(self, state: _ContextState, sim: RunningSim) -> None:
        for key in sim.planned_keys:
            if state.in_flight.get(key) == sim.sim_id:
                del state.in_flight[key]

    def _kill_useless_prefetches(self, state: _ContextState, client_id: str) -> None:
        """Kill prefetch sims of this client nobody else is waiting on
        (Sec. IV-C, prefetching effectiveness)."""
        for sim in list(state.sims.values()) + state.pending_jobs:
            if not sim.is_prefetch or sim.owner_client != client_id or sim.killed:
                continue
            has_waiters = any(
                state.waiters.get(key) for key in sim.planned_keys
            )
            if has_waiters:
                continue
            sim.killed = True
            self.total_killed_sims += 1
            if sim.sim_id in state.sims:
                del state.sims[sim.sim_id]
                self._executor.kill(sim.sim_id)
            for key in sim.planned_keys:
                if state.in_flight.get(key) == sim.sim_id:
                    del state.in_flight[key]
        state.pending_jobs = [s for s in state.pending_jobs if not s.killed]

    def _estimate_wait(self, state: _ContextState, key: int, now: float) -> float:
        """Estimated seconds until ``key`` is on disk (Sec. III-C status)."""
        sim_id = state.in_flight.get(key)
        perf = state.context.perf
        alpha = state.alpha_ema.value
        if sim_id is None or sim_id not in state.sims:
            # Queued or unknown: full latency plus the worst-case interval.
            return alpha + state.context.geometry.outputs_per_restart_interval * perf.tau(
                state.context.config.default_parallelism_level
            )
        sim = state.sims[sim_id]
        tau = perf.tau(sim.parallelism_level)
        try:
            position = sim.planned_keys.index(key) + 1
        except ValueError:
            position = len(sim.planned_keys)
        expected = alpha + position * tau
        elapsed = now - sim.launch_time
        return max(0.0, expected - elapsed)
