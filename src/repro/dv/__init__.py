"""The Data Virtualizer: context shards, the routing coordinator, the
real-mode launcher, the wire protocol, and the TCP daemon."""

from repro.dv.coordinator import (
    DVCoordinator,
    Notification,
    OpenResult,
    RunningSim,
    SimulationExecutor,
)
from repro.dv.launcher import ThreadedLauncher
from repro.dv.server import DVServer
from repro.dv.shard import ContextShard, JobQueue

__all__ = [
    "ContextShard",
    "DVCoordinator",
    "DVServer",
    "JobQueue",
    "Notification",
    "OpenResult",
    "RunningSim",
    "SimulationExecutor",
    "ThreadedLauncher",
]
