"""The Data Virtualizer: coordinator core, real-mode launcher, wire
protocol, and the TCP daemon."""

from repro.dv.coordinator import (
    DVCoordinator,
    Notification,
    OpenResult,
    RunningSim,
    SimulationExecutor,
)
from repro.dv.launcher import ThreadedLauncher
from repro.dv.server import DVServer

__all__ = [
    "DVCoordinator",
    "DVServer",
    "Notification",
    "OpenResult",
    "RunningSim",
    "SimulationExecutor",
    "ThreadedLauncher",
]
