"""Bandwidth-aware transfer scheduling for the bulk data plane.

Three pieces, all clock-agnostic (callers pass ``now`` explicitly, so the
live DataServer drives them with ``time.monotonic()`` and the DES mirror
with virtual time):

* :class:`TokenBucket` — per-link rate limit with burst capacity.
* :class:`BandwidthScheduler` — deficit-round-robin across concurrent
  transfers sharing one link, with a strict-priority control lane: control
  streams (ping/pong, fetch metadata) are always granted before bulk
  streams and are never blocked waiting for tokens (they may drive the
  bucket negative; bulk repays the debt), so latency-sensitive frames
  cannot queue behind bulk bytes.
* :func:`max_min_rates` — progressive-filling max-min fair allocation of
  link capacities across multi-hop paths, used by the DES
  ``VirtualDataPlane`` and by capacity-model tests.
"""

from __future__ import annotations

from collections import deque

__all__ = [
    "PRIO_BULK",
    "PRIO_CONTROL",
    "BandwidthScheduler",
    "TokenBucket",
    "max_min_rates",
]

PRIO_CONTROL = 0
PRIO_BULK = 1

#: Smallest bulk grant worth waking up for; below this we report a wait.
_MIN_GRANT = 4096


class TokenBucket:
    """Token bucket over an explicit clock.

    ``rate`` is in bytes/second; ``burst`` (default one second of rate)
    caps accumulation.  ``rate=None`` means unlimited: every query reports
    infinite tokens and zero wait.
    """

    def __init__(self, rate: float | None, burst: float | None = None) -> None:
        if rate is not None and rate <= 0:
            raise ValueError(f"token bucket rate must be > 0, got {rate}")
        self.rate = rate
        self.burst = float(burst if burst is not None else (rate or 0))
        self._tokens = self.burst
        self._stamp: float | None = None

    def _refill(self, now: float) -> None:
        if self.rate is None:
            return
        if self._stamp is None:
            self._stamp = now
            return
        elapsed = now - self._stamp
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._stamp = now

    def available(self, now: float) -> float:
        if self.rate is None:
            return float("inf")
        self._refill(now)
        return self._tokens

    def consume(self, amount: float, now: float) -> None:
        """Deduct ``amount`` tokens; may drive the bucket negative
        (priority traffic spends on credit and bulk repays the debt)."""
        if self.rate is None:
            return
        self._refill(now)
        self._tokens -= amount

    def delay_until(self, amount: float, now: float) -> float:
        """Seconds until ``amount`` tokens will be available."""
        if self.rate is None:
            return 0.0
        self._refill(now)
        deficit = amount - self._tokens
        return max(0.0, deficit / self.rate)


class BandwidthScheduler:
    """Deficit round-robin over one link's concurrent streams.

    Usage: :meth:`register` each stream, :meth:`mark_ready` when it has
    bytes queued, then repeatedly call :meth:`grant` for a
    ``(stream_id, budget)`` pair, send up to ``budget`` bytes and report
    the actual count via :meth:`charge`.  ``grant`` returns
    ``(None, wait_seconds)`` when the link is token-starved and
    ``(None, None)`` when no stream is ready.
    """

    def __init__(
        self,
        rate: float | None = None,
        burst: float | None = None,
        quantum: int = 64 * 1024,
    ) -> None:
        self.bucket = TokenBucket(rate, burst)
        self.quantum = int(quantum)
        self._prio: dict[object, int] = {}
        self._deficit: dict[object, float] = {}
        self._ready: set[object] = set()
        self._ctrl: deque[object] = deque()
        self._bulk: deque[object] = deque()

    # -- membership ------------------------------------------------------

    def register(self, stream_id: object, priority: int = PRIO_BULK) -> None:
        if stream_id in self._prio:
            raise ValueError(f"stream {stream_id!r} already registered")
        self._prio[stream_id] = priority
        self._deficit[stream_id] = 0.0

    def unregister(self, stream_id: object) -> None:
        self._prio.pop(stream_id, None)
        self._deficit.pop(stream_id, None)
        self._ready.discard(stream_id)

    def mark_ready(self, stream_id: object) -> None:
        if stream_id not in self._prio or stream_id in self._ready:
            return
        self._ready.add(stream_id)
        if self._prio[stream_id] == PRIO_CONTROL:
            self._ctrl.append(stream_id)
        else:
            self._bulk.append(stream_id)

    def mark_idle(self, stream_id: object) -> None:
        self._ready.discard(stream_id)
        if stream_id in self._deficit:
            self._deficit[stream_id] = 0.0

    def queue_depth(self) -> int:
        return len(self._ready)

    # -- scheduling ------------------------------------------------------

    def _next(self, queue: deque) -> object | None:
        while queue:
            stream_id = queue.popleft()
            if stream_id in self._ready:
                return stream_id
        return None

    def grant(self, now: float) -> tuple[object, int] | tuple[None, float | None]:
        # Strict priority: the control lane never waits for tokens.
        stream_id = self._next(self._ctrl)
        if stream_id is not None:
            self._ready.discard(stream_id)
            return stream_id, self.quantum
        stream_id = self._next(self._bulk)
        if stream_id is None:
            return None, None
        tokens = self.bucket.available(now)
        if tokens < _MIN_GRANT:
            self._bulk.appendleft(stream_id)
            return None, self.bucket.delay_until(_MIN_GRANT, now)
        self._ready.discard(stream_id)
        self._deficit[stream_id] += self.quantum
        budget = int(min(self._deficit[stream_id], tokens))
        return stream_id, budget

    def charge(self, stream_id: object, sent: int, now: float) -> None:
        """Account ``sent`` bytes against the granted stream's deficit and
        the link bucket.  Callers re-``mark_ready`` streams that still have
        queued bytes; a stream that goes quiet loses its deficit."""
        if sent:
            self.bucket.consume(sent, now)
        if stream_id in self._deficit:
            self._deficit[stream_id] = max(0.0, self._deficit[stream_id] - sent)


def max_min_rates(
    capacities: dict[object, float],
    paths: dict[object, tuple[object, ...] | list[object]],
) -> dict[object, float]:
    """Max-min fair rates for transfers sharing links via progressive filling.

    ``capacities`` maps link id -> capacity; ``paths`` maps transfer id ->
    the links it traverses.  Repeatedly saturate the tightest bottleneck
    link (smallest fair share ``residual / users``), freeze its transfers
    at that share, subtract, and continue until every transfer is frozen.
    A transfer over an unknown or zero-capacity link gets rate 0.
    """
    residual = {link: float(cap) for link, cap in capacities.items()}
    rates: dict[object, float] = {}
    active = {
        tid: tuple(path)
        for tid, path in paths.items()
        if path and all(residual.get(link, 0.0) > 0.0 for link in path)
    }
    for tid in paths:
        if tid not in active:
            rates[tid] = 0.0
    while active:
        users: dict[object, int] = {}
        for path in active.values():
            for link in path:
                users[link] = users.get(link, 0) + 1
        bottleneck = min(users, key=lambda link: residual[link] / users[link])
        share = residual[bottleneck] / users[bottleneck]
        frozen = [tid for tid, path in active.items() if bottleneck in path]
        for tid in frozen:
            rates[tid] = share
            for link in active[tid]:
                residual[link] = max(0.0, residual[link] - share)
            del active[tid]
    return rates
