"""Framing for the bulk data plane.

The data plane speaks its own tiny protocol, deliberately simpler than the
control-plane codec in :mod:`repro.dv.protocol`: every frame is an 8-byte
header ``!BBHI`` — magic ``0xDA``, kind, channel, payload length — followed
by the payload.  Two kinds exist:

* ``KIND_CTRL`` (0): a JSON object (fetch requests, transfer metadata,
  ping/pong, errors).  Control frames ride a strict-priority lane on the
  server: they are flushed before any queued bulk bytes.
* ``KIND_DATA`` (1): a raw chunk of file bytes for the transfer identified
  by ``channel``.  The header is encoded separately from the body so the
  server can push the body straight from the page cache with
  ``os.sendfile`` — the payload never passes through Python.

``channel`` scopes concurrent transfers multiplexed on one connection; the
client picks it in the ``fetch`` request and the server echoes it on every
``fetch_start``/``DATA``/``fetch_end`` frame of that transfer.
"""

from __future__ import annotations

import json
import struct

from repro.core.errors import ProtocolError

__all__ = [
    "DEFAULT_CHUNK",
    "DataFrameDecoder",
    "HEADER",
    "KIND_CTRL",
    "KIND_DATA",
    "MAGIC",
    "MAX_FRAME",
    "decode_ctrl",
    "encode_ctrl",
    "encode_data_header",
]

MAGIC = 0xDA
KIND_CTRL = 0
KIND_DATA = 1

#: Header layout: magic, kind, channel, payload length.
HEADER = struct.Struct("!BBHI")

#: Default bulk chunk size; one DATA frame per chunk.
DEFAULT_CHUNK = 256 * 1024

#: Hard per-frame cap, matching the control plane's discipline: a peer
#: announcing a larger payload is malformed, not merely greedy.
MAX_FRAME = 1 << 20


def encode_ctrl(message: dict) -> bytes:
    """Encode a control message (header + JSON payload) as one buffer."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME:
        raise ProtocolError(
            f"data-plane control frame exceeds maximum size "
            f"({len(payload)} > {MAX_FRAME})"
        )
    channel = int(message.get("channel", 0)) & 0xFFFF
    return HEADER.pack(MAGIC, KIND_CTRL, channel, len(payload)) + payload


def encode_data_header(channel: int, length: int) -> bytes:
    """Header for a DATA frame whose body follows out-of-band (sendfile)."""
    if not 0 < length <= MAX_FRAME:
        raise ProtocolError(f"data frame length {length} out of range")
    return HEADER.pack(MAGIC, KIND_DATA, channel & 0xFFFF, length)


class DataFrameDecoder:
    """Incremental decoder for the data-plane framing.

    Feed raw socket bytes with :meth:`feed`; it yields
    ``(kind, channel, payload)`` tuples.  DATA payloads are returned as
    ``bytes`` of the complete frame — the client side is the only consumer
    of DATA frames and writes them straight to disk, so there is no
    partial-frame surface to expose.
    """

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, data: bytes) -> list[tuple[int, int, bytes]]:
        self._buf += data
        frames: list[tuple[int, int, bytes]] = []
        while True:
            if len(self._buf) < HEADER.size:
                return frames
            magic, kind, channel, length = HEADER.unpack_from(self._buf)
            if magic != MAGIC:
                raise ProtocolError(
                    f"bad data-plane magic 0x{magic:02x} (want 0x{MAGIC:02x})"
                )
            if kind not in (KIND_CTRL, KIND_DATA):
                raise ProtocolError(f"unknown data-plane frame kind {kind}")
            if length > MAX_FRAME:
                raise ProtocolError(
                    f"data-plane frame exceeds maximum size "
                    f"({length} > {MAX_FRAME})"
                )
            end = HEADER.size + length
            if len(self._buf) < end:
                return frames
            payload = bytes(self._buf[HEADER.size:end])
            del self._buf[:end]
            frames.append((kind, channel, payload))

    @property
    def buffered(self) -> int:
        return len(self._buf)


def decode_ctrl(payload: bytes) -> dict:
    """Parse a CTRL payload, normalising JSON failures to ProtocolError."""
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed data-plane control frame: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("data-plane control frame must be a JSON object")
    return message
