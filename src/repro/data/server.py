"""Selector-based bulk data server: the node's data port.

One ``DataServer`` runs next to each DV daemon (or cluster node /
multi-core pool) on its own port, streaming context files in
length-prefixed chunks.  Design points:

* **Zero-copy body path.**  DATA frame headers are written separately from
  their bodies so the body can go straight from the page cache to the
  socket with ``os.sendfile``; where sendfile is unavailable the fallback
  is ``os.pread`` + ``memoryview`` send (no intermediate slicing copies).
* **Resumable.**  A fetch names ``(context, file, offset)``; the server
  streams from ``offset`` and announces the whole-file SHA-256 up front so
  the client can verify after completing a resumed download.
* **Fair + priority-aware.**  All transfers on the link share a
  :class:`~repro.data.scheduler.BandwidthScheduler` (token bucket + DRR),
  and each connection's control bytes (pong replies, ``fetch_start`` /
  ``fetch_end`` metadata) are flushed ahead of queued bulk frames —
  control only ever waits for an in-flight DATA frame to finish, never for
  the bulk queue to drain.
* **Non-blocking I/O thread.**  Like the DV control server, a single
  selector thread owns all sockets; blocking work (path resolution, stat,
  checksum, one-hop upstream proxy pulls) happens on a small worker pool.

The listener is bound in ``__init__`` (so the port is known before any
process forks — the multi-core supervisor ships the endpoint to executors
at spawn) but threads start only in :meth:`start`.
"""

from __future__ import annotations

import errno
import logging
import os
import queue
import selectors
import socket
import threading
import time
from collections import deque
from collections.abc import Callable

from repro.core.errors import (
    ErrorCode,
    FileNotInContextError,
    InvalidArgumentError,
    ProtocolError,
    SimFSError,
)
from repro.data.protocol import (
    DEFAULT_CHUNK,
    KIND_CTRL,
    decode_ctrl,
    encode_ctrl,
    encode_data_header,
)
from repro.data.scheduler import PRIO_CONTROL, BandwidthScheduler
from repro.metrics import MetricsRegistry
from repro.obs import SpanRecorder
from repro.obs.trace import parse_wire
from repro.util.checksums import file_checksum

__all__ = ["DataServer"]

log = logging.getLogger("repro.data.server")

_RECV_SIZE = 64 * 1024

#: Throughput histogram bounds, MB/s (localhost loopback reaches GB/s).
_MBPS_BUCKETS = (1, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000)


class _Transfer:
    """One in-flight (context, file, offset) pull on one connection."""

    __slots__ = (
        "channel", "conn", "context", "filename", "fd", "offset",
        "remaining", "size", "frame_left", "head", "started", "sent",
        "tc", "obs_began",
    )

    def __init__(self, conn, channel, context, filename, fd, offset, size):
        self.conn = conn
        self.channel = channel
        self.context = context
        self.filename = filename
        self.fd = fd
        self.offset = offset
        self.size = size
        self.remaining = size - offset
        self.frame_left = 0
        self.head = b""
        self.started = time.monotonic()
        self.sent = 0
        self.tc = None
        self.obs_began = 0.0


class _DataConn:
    __slots__ = (
        "sock", "fd", "addr", "decoder", "ctrl_out", "blocked",
        "transfers", "inflight", "events", "closing",
    )

    def __init__(self, sock, addr):
        from repro.data.protocol import DataFrameDecoder

        self.sock = sock
        self.fd = sock.fileno()
        self.addr = addr
        self.decoder = DataFrameDecoder()
        self.ctrl_out = bytearray()
        self.blocked = False
        self.transfers: dict[int, _Transfer] = {}
        self.inflight: _Transfer | None = None
        self.events = selectors.EVENT_READ
        self.closing = False


class DataServer:
    """Bulk data port for one node or executor pool.

    ``resolver(context, filename) -> path`` maps requests to files; the
    default resolver looks up directories registered via
    :meth:`add_context` with path confinement.  ``upstream(context,
    filename) -> path | None`` is the one-hop proxy hook: called (on a
    worker thread) when a file is not local, it may pull the file from the
    owning node and return a local spool path to serve.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        link_rate: float | None = None,
        burst: float | None = None,
        chunk_size: int = DEFAULT_CHUNK,
        quantum: int = 64 * 1024,
        resolver: Callable[[str, str], str] | None = None,
        lister: Callable[[str], list[str]] | None = None,
        upstream: Callable[[str, str], str | None] | None = None,
        metrics: MetricsRegistry | None = None,
        workers: int = 1,
        obs: SpanRecorder | None = None,
    ) -> None:
        self.chunk_size = int(chunk_size)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Span recorder for traced transfers — share the owning daemon's
        #: so ``data.fetch`` spans land in the same per-node ring.
        self.obs = obs if obs is not None else SpanRecorder(node="data")
        self._resolver = resolver
        self._lister = lister
        self.upstream = upstream
        self._dirs: dict[str, str] = {}
        self._sched = BandwidthScheduler(rate=link_rate, burst=burst, quantum=quantum)
        self._sums: dict[str, tuple[int, int, str]] = {}
        self._sums_lock = threading.Lock()
        self._use_sendfile = hasattr(os, "sendfile")

        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self.host, self.port = self._listener.getsockname()[:2]

        self._selector: selectors.BaseSelector | None = None
        self._conns: dict[int, _DataConn] = {}
        self._work: queue.Queue = queue.Queue()
        self._done: deque = deque()
        self._wake_r: socket.socket | None = None
        self._wake_w: socket.socket | None = None
        self._running = False
        self._io_thread: threading.Thread | None = None
        self._workers = max(1, int(workers))
        self._worker_threads: list[threading.Thread] = []

        m = self.metrics
        self._m_bytes = m.counter("transfer.bytes_sent")
        self._m_frames = m.counter("transfer.frames_sent")
        self._m_active = m.gauge("transfer.active")
        self._m_completed = m.counter("transfer.completed")
        self._m_resumed = m.counter("transfer.resumed")
        self._m_errors = m.counter("transfer.errors")
        self._m_proxied = m.counter("transfer.proxied")
        self._m_queue = m.gauge("transfer.queue_depth")
        self._m_mbps = m.histogram("transfer.throughput_mbps", buckets=_MBPS_BUCKETS)

    # -- context registration -------------------------------------------

    def add_context(self, name: str, directory: str) -> None:
        self._dirs[name] = os.path.realpath(directory)

    def _resolve(self, context: str, filename: str) -> str:
        if self._resolver is not None:
            return self._resolver(context, filename)
        directory = self._dirs.get(context)
        if directory is None:
            raise FileNotInContextError(f"unknown context {context!r}")
        path = os.path.realpath(os.path.join(directory, filename))
        if os.path.commonpath([path, directory]) != directory:
            raise FileNotInContextError(
                f"file {filename!r} escapes context directory"
            )
        return path

    def _list(self, context: str) -> list[str]:
        if self._lister is not None:
            return self._lister(context)
        directory = self._dirs.get(context)
        if directory is None:
            raise FileNotInContextError(f"unknown context {context!r}")
        try:
            names = sorted(
                n for n in os.listdir(directory)
                if os.path.isfile(os.path.join(directory, n))
            )
        except OSError:
            names = []
        return names

    def checksum(self, path: str) -> str:
        """Whole-file SHA-256, cached by (path, size, mtime_ns)."""
        st = os.stat(path)
        key = (st.st_size, st.st_mtime_ns)
        with self._sums_lock:
            cached = self._sums.get(path)
            if cached is not None and cached[:2] == key:
                return cached[2]
        digest = file_checksum(path)
        with self._sums_lock:
            self._sums[path] = (st.st_size, st.st_mtime_ns, digest)
        return digest

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._listener.listen(128)
        self._listener.setblocking(False)
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._selector = selectors.DefaultSelector()
        self._selector.register(self._listener, selectors.EVENT_READ, "listener")
        self._selector.register(self._wake_r, selectors.EVENT_READ, "waker")
        for i in range(self._workers):
            t = threading.Thread(
                target=self._worker_loop, name=f"data-worker-{i}", daemon=True
            )
            t.start()
            self._worker_threads.append(t)
        self._io_thread = threading.Thread(
            target=self._serve, name="data-io", daemon=True
        )
        self._io_thread.start()

    def stop(self) -> None:
        if not self._running:
            self._listener.close()
            return
        self._running = False
        self._wake()
        if self._io_thread is not None:
            self._io_thread.join(timeout=5.0)
        for _ in self._worker_threads:
            self._work.put(None)
        for t in self._worker_threads:
            t.join(timeout=5.0)
        self._worker_threads.clear()
        for conn in list(self._conns.values()):
            self._teardown(conn)
        if self._selector is not None:
            self._selector.close()
        for s in (self._wake_r, self._wake_w):
            if s is not None:
                s.close()
        self._listener.close()

    def _wake(self) -> None:
        if self._wake_w is None:
            return
        try:
            self._wake_w.send(b"\0")
        except OSError:
            pass

    def stats(self) -> dict:
        return {
            "host": self.host,
            "port": self.port,
            "connections": len(self._conns),
            "metrics": self.metrics.snapshot("transfer."),
        }

    # -- worker pool -----------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            item = self._work.get()
            if item is None:
                return
            conn, message = item
            try:
                result = self._prepare(message)
            except SimFSError as exc:
                result = {
                    "op": "error",
                    "channel": message.get("channel", 0),
                    "code": int(exc.code),
                    "error": str(exc),
                }
            except OSError as exc:
                result = {
                    "op": "error",
                    "channel": message.get("channel", 0),
                    "code": int(ErrorCode.ERR_NOT_FOUND),
                    "error": f"{type(exc).__name__}: {exc}",
                }
            self._done.append((conn, message, result))
            self._wake()

    def _prepare(self, message: dict) -> dict:
        op = message.get("op")
        context = message.get("context", "")
        if op == "list":
            return {
                "op": "listing",
                "channel": message.get("channel", 0),
                "context": context,
                "files": self._list(context),
            }
        filename = message.get("file", "")
        proxied = False
        try:
            path = self._resolve(context, filename)
            exists = os.path.isfile(path)
        except FileNotInContextError:
            path, exists = "", False
        if not exists and self.upstream is not None:
            pulled = self.upstream(context, filename)
            if pulled:
                path, exists, proxied = pulled, os.path.isfile(pulled), True
        if not exists:
            raise FileNotInContextError(
                f"file {filename!r} not available in context {context!r}"
            )
        size = os.path.getsize(path)
        offset = int(message.get("offset", 0))
        if offset < 0 or offset > size:
            # ERR_INVALID, not a protocol error: the client maps it to a
            # stale-.part condition and retries the fetch from offset 0.
            raise InvalidArgumentError(
                f"fetch offset {offset} out of range for size {size}"
            )
        digest = self.checksum(path)
        fd = os.open(path, os.O_RDONLY)
        return {
            "op": "start",
            "channel": message.get("channel", 0),
            "path": path,
            "fd": fd,
            "size": size,
            "offset": offset,
            "checksum": digest,
            "proxied": proxied,
            "priority": message.get("priority", "bulk"),
            "context": context,
            "file": filename,
            "tc": message.get("tc"),
        }

    # -- selector loop ---------------------------------------------------

    def _serve(self) -> None:
        sel = self._selector
        wait: float | None = None
        while self._running:
            timeout = 0.5 if wait is None else max(0.0, min(wait, 0.5))
            try:
                events = sel.select(timeout)
            except OSError:
                continue
            for key, mask in events:
                if key.data == "listener":
                    self._accept()
                elif key.data == "waker":
                    try:
                        self._wake_r.recv(4096)
                    except OSError:
                        pass
                else:
                    conn = key.data
                    if mask & selectors.EVENT_READ:
                        self._on_readable(conn)
                    if mask & selectors.EVENT_WRITE and conn.fd in self._conns:
                        self._on_writable(conn)
            self._drain_done()
            wait = self._pump()
            self._m_queue.set(self._sched.queue_depth())

    def _accept(self) -> None:
        while True:
            try:
                sock, addr = self._listener.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return
            sock.setblocking(False)
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass
            conn = _DataConn(sock, addr)
            self._conns[conn.fd] = conn
            self._selector.register(sock, selectors.EVENT_READ, conn)

    def _set_events(self, conn: _DataConn, events: int) -> None:
        if conn.events != events and conn.fd in self._conns:
            conn.events = events
            try:
                self._selector.modify(conn.sock, events, conn)
            except (KeyError, ValueError, OSError):
                pass

    def _on_readable(self, conn: _DataConn) -> None:
        try:
            data = conn.sock.recv(_RECV_SIZE)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._teardown(conn)
            return
        if not data:
            self._teardown(conn)
            return
        try:
            frames = conn.decoder.feed(data)
        except ProtocolError as exc:
            self._m_errors.inc()
            self._send_ctrl(conn, {"op": "error", "channel": 0,
                                   "code": int(ErrorCode.ERR_PROTOCOL),
                                   "error": str(exc)})
            conn.closing = True
            if conn.inflight is None and not conn.ctrl_out:
                self._teardown(conn)
            return
        for kind, channel, payload in frames:
            if kind != KIND_CTRL:
                self._teardown(conn)
                return
            try:
                message = decode_ctrl(payload)
            except ProtocolError as exc:
                self._m_errors.inc()
                self._send_ctrl(conn, {"op": "error", "channel": channel,
                                       "code": int(ErrorCode.ERR_PROTOCOL),
                                       "error": str(exc)})
                continue
            self._handle_ctrl(conn, channel, message)

    def _handle_ctrl(self, conn: _DataConn, channel: int, message: dict) -> None:
        op = message.get("op")
        if op == "ping":
            self._send_ctrl(conn, {"op": "pong", "channel": channel,
                                   "t": message.get("t")})
        elif op in ("fetch", "list"):
            message.setdefault("channel", channel)
            if op == "fetch" and message["channel"] in conn.transfers:
                self._m_errors.inc()
                self._send_ctrl(conn, {
                    "op": "error", "channel": message["channel"],
                    "code": int(ErrorCode.ERR_INVALID),
                    "error": f"channel {message['channel']} already transferring",
                })
                return
            self._work.put((conn, message))
        else:
            self._m_errors.inc()
            self._send_ctrl(conn, {"op": "error", "channel": channel,
                                   "code": int(ErrorCode.ERR_PROTOCOL),
                                   "error": f"unknown data-plane op {op!r}"})

    def _drain_done(self) -> None:
        while self._done:
            conn, message, result = self._done.popleft()
            if conn.fd not in self._conns or conn.closing:
                if result.get("op") == "start":
                    os.close(result["fd"])
                continue
            if result["op"] != "start":
                if result["op"] == "error":
                    self._m_errors.inc()
                self._send_ctrl(conn, result)
                continue
            self._begin_transfer(conn, result)

    def _begin_transfer(self, conn: _DataConn, result: dict) -> None:
        channel = result["channel"] & 0xFFFF
        if channel in conn.transfers:
            # Authoritative duplicate check: _handle_ctrl's early reject
            # cannot see fetches still sitting in the worker queue.
            os.close(result["fd"])
            self._m_errors.inc()
            self._send_ctrl(conn, {
                "op": "error", "channel": channel,
                "code": int(ErrorCode.ERR_INVALID),
                "error": f"channel {channel} already transferring",
            })
            return
        transfer = _Transfer(
            conn, channel, result["context"], result["file"],
            result["fd"], result["offset"], result["size"],
        )
        tc_wire = result.get("tc")
        if isinstance(tc_wire, str):
            transfer.tc = parse_wire(tc_wire)
        transfer.obs_began = self.obs.now()
        self._send_ctrl(conn, {
            "op": "fetch_start", "channel": channel,
            "size": result["size"], "offset": result["offset"],
            "checksum": result["checksum"],
        })
        if result["proxied"]:
            self._m_proxied.inc()
        if result["offset"]:
            self._m_resumed.inc()
        if transfer.remaining <= 0:
            os.close(transfer.fd)
            self._send_ctrl(conn, {"op": "fetch_end", "channel": channel,
                                   "bytes": 0})
            self._m_completed.inc()
            return
        conn.transfers[channel] = transfer
        priority = PRIO_CONTROL if result.get("priority") == "control" else None
        if priority is not None:
            self._sched.register(transfer, priority)
        else:
            self._sched.register(transfer)
        self._sched.mark_ready(transfer)
        self._m_active.inc()

    # -- the send pump ---------------------------------------------------

    def _pump(self) -> float | None:
        """Grant/send until the link is starved, blocked, or idle.

        Returns the scheduler's suggested wait (seconds) when
        token-starved, else None.
        """
        sched = self._sched
        spins = 0
        limit = max(128, 4 * sched.queue_depth() + 8)
        while self._running and spins < limit:
            spins += 1
            now = time.monotonic()
            transfer, budget = sched.grant(now)
            if transfer is None:
                return budget  # None (idle) or wait seconds
            conn = transfer.conn
            if conn.fd not in self._conns:
                self._abort_transfer(transfer)
                continue
            if conn.blocked:
                sched.mark_idle(transfer)
                continue
            # Priority lane: control bytes go out before any new bulk frame.
            self._flush_ctrl(conn)
            if conn.blocked:
                sched.mark_idle(transfer)
                continue
            if conn.inflight is not None and conn.inflight is not transfer:
                # Another transfer holds this connection mid-frame; this
                # one re-queues when the frame completes or the socket
                # unblocks.
                sched.mark_idle(transfer)
                continue
            sent = self._advance(conn, transfer, budget, now)
            if conn.fd not in self._conns:
                continue
            if sent == 0 and not conn.blocked:
                # No forward progress without a socket block: park the
                # stream and wait for the next event rather than spin.
                sched.mark_idle(transfer)
                return None
            if not conn.blocked and transfer.remaining > 0:
                sched.mark_ready(transfer)
        # Spin limit reached with streams still ready: come straight back.
        return 0.0 if sched.queue_depth() > 0 else None

    def _advance(self, conn: _DataConn, transfer: _Transfer,
                 budget: int, now: float) -> int:
        """Send up to ``budget`` body bytes of one transfer; returns sent."""
        if transfer.frame_left == 0:
            chunk = min(budget, self.chunk_size, transfer.remaining)
            if chunk <= 0:
                return 0
            transfer.head = encode_data_header(transfer.channel, chunk)
            transfer.frame_left = chunk
            conn.inflight = transfer
        try:
            while transfer.head:
                n = conn.sock.send(transfer.head)
                transfer.head = transfer.head[n:]
            want = min(budget, transfer.frame_left)
            sent = self._send_body(conn, transfer, want) if want > 0 else 0
        except (BlockingIOError, InterruptedError):
            self._block(conn, transfer)
            return 0
        except OSError:
            self._teardown(conn)
            return 0
        if sent:
            transfer.offset += sent
            transfer.remaining -= sent
            transfer.frame_left -= sent
            transfer.sent += sent
            self._m_bytes.inc(sent)
            self._sched.charge(transfer, sent, now)
        if transfer.frame_left == 0:
            conn.inflight = None
            self._m_frames.inc()
            self._flush_ctrl(conn)
            if transfer.remaining <= 0:
                self._finish_transfer(conn, transfer)
            else:
                # Frame boundary: any siblings parked behind it may go.
                self._reready(conn)
        elif sent < want:
            self._block(conn, transfer)
        return sent

    def _send_body(self, conn: _DataConn, transfer: _Transfer, want: int) -> int:
        if self._use_sendfile:
            try:
                n = os.sendfile(conn.fd, transfer.fd, transfer.offset, want)
                if n == 0:
                    raise OSError(errno.EIO, "file truncated mid-transfer")
                return n
            except OSError as exc:
                if exc.errno in (errno.EAGAIN, errno.EWOULDBLOCK):
                    raise BlockingIOError from exc
                if exc.errno in (errno.EINVAL, errno.ENOSYS, errno.ENOTSOCK):
                    self._use_sendfile = False
                else:
                    raise
        data = os.pread(transfer.fd, want, transfer.offset)
        if not data:
            raise OSError(errno.EIO, "file truncated mid-transfer")
        with memoryview(data) as view:
            return conn.sock.send(view)

    def _block(self, conn: _DataConn, transfer: _Transfer | None = None) -> None:
        conn.blocked = True
        if transfer is not None:
            self._sched.mark_idle(transfer)
        for t in conn.transfers.values():
            self._sched.mark_idle(t)
        self._set_events(conn, selectors.EVENT_READ | selectors.EVENT_WRITE)

    def _reready(self, conn: _DataConn) -> None:
        if conn.blocked:
            return
        for t in conn.transfers.values():
            if t.remaining > 0 and (conn.inflight is None or conn.inflight is t):
                self._sched.mark_ready(t)

    def _on_writable(self, conn: _DataConn) -> None:
        conn.blocked = False
        self._set_events(conn, selectors.EVENT_READ)
        self._flush_ctrl(conn)
        if conn.closing and not conn.ctrl_out and conn.inflight is None:
            self._teardown(conn)
            return
        self._reready(conn)

    def _flush_ctrl(self, conn: _DataConn) -> None:
        """Flush the priority lane; only an in-flight DATA frame may
        legitimately delay control bytes (frames are atomic on the wire)."""
        if conn.blocked or conn.inflight is not None or not conn.ctrl_out:
            return
        try:
            while conn.ctrl_out:
                n = conn.sock.send(conn.ctrl_out)
                del conn.ctrl_out[:n]
        except (BlockingIOError, InterruptedError):
            self._block(conn)
        except OSError:
            self._teardown(conn)

    def _send_ctrl(self, conn: _DataConn, message: dict) -> None:
        conn.ctrl_out += encode_ctrl(message)
        self._flush_ctrl(conn)

    def _finish_transfer(self, conn: _DataConn, transfer: _Transfer) -> None:
        os.close(transfer.fd)
        conn.transfers.pop(transfer.channel, None)
        self._sched.unregister(transfer)
        seconds = max(1e-9, time.monotonic() - transfer.started)
        # Account before fetch_end leaves: a client that saw the transfer
        # finish must also see it in the metrics snapshot.
        self._m_active.dec()
        self._m_completed.inc()
        self._m_mbps.observe(transfer.sent / seconds / 1e6)
        if transfer.tc is not None:
            self.obs.record(
                "data.fetch", transfer.tc, transfer.obs_began, self.obs.now(),
                context=transfer.context, file=transfer.filename,
                bytes=transfer.sent, offset=transfer.offset - transfer.sent,
            )
        self._send_ctrl(conn, {
            "op": "fetch_end", "channel": transfer.channel,
            "bytes": transfer.sent,
        })

    def _abort_transfer(self, transfer: _Transfer) -> None:
        try:
            os.close(transfer.fd)
        except OSError:
            pass
        self._sched.unregister(transfer)

    def _teardown(self, conn: _DataConn) -> None:
        if self._conns.pop(conn.fd, None) is None:
            return
        try:
            self._selector.unregister(conn.sock)
        except (KeyError, ValueError, OSError):
            pass
        for transfer in conn.transfers.values():
            self._abort_transfer(transfer)
            self._m_active.dec()
        conn.transfers.clear()
        conn.inflight = None
        try:
            conn.sock.close()
        except OSError:
            pass
