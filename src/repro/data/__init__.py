"""Bulk data plane: chunked zero-copy context-file transfer.

The control plane (``repro.dv``/``repro.cluster``) coordinates *which*
files exist and when they are ready; this package moves the bytes.  Each
node (or multi-core pool) runs a :class:`DataServer` on its own data port;
clients pull files with :class:`DataClient`, discovering the owning node's
endpoint via the routable ``fetch_info`` control-plane op.  Bandwidth on a
link is arbitrated by :class:`BandwidthScheduler` (token bucket + deficit
round-robin + a strict-priority control lane); the DES mirror is
``repro.des.components.VirtualDataPlane``.
"""

from repro.data.client import DataClient, FetchResult, TransferChecksumError
from repro.data.protocol import (
    DEFAULT_CHUNK,
    KIND_CTRL,
    KIND_DATA,
    MAX_FRAME,
    DataFrameDecoder,
    decode_ctrl,
    encode_ctrl,
    encode_data_header,
)
from repro.data.scheduler import (
    PRIO_BULK,
    PRIO_CONTROL,
    BandwidthScheduler,
    TokenBucket,
    max_min_rates,
)
from repro.data.server import DataServer

__all__ = [
    "DEFAULT_CHUNK",
    "KIND_CTRL",
    "KIND_DATA",
    "MAX_FRAME",
    "PRIO_BULK",
    "PRIO_CONTROL",
    "BandwidthScheduler",
    "DataClient",
    "DataFrameDecoder",
    "DataServer",
    "FetchResult",
    "TokenBucket",
    "TransferChecksumError",
    "decode_ctrl",
    "encode_ctrl",
    "encode_data_header",
    "max_min_rates",
]
