"""Blocking client for the bulk data plane.

``DataClient`` talks to one :class:`~repro.data.server.DataServer`.  It is
deliberately synchronous — analysis clients pull files one (or a few
sockets) at a time; concurrency comes from running many clients, which is
exactly what the bandwidth scheduler arbitrates on the server side.

Downloads land in ``<dest>.part`` and are renamed into place only after
the whole-file SHA-256 announced in ``fetch_start`` matches, so a partial
``.part`` file is always resumable: a re-issued fetch requests
``offset = len(part)`` and the server streams the remainder.
"""

from __future__ import annotations

import os
import socket
import time
from dataclasses import dataclass, field

from repro.core.errors import (
    DVConnectionLost,
    ErrorCode,
    FileNotInContextError,
    InvalidArgumentError,
    ProtocolError,
    SimFSError,
)
from repro.data.protocol import (
    KIND_CTRL,
    KIND_DATA,
    DataFrameDecoder,
    decode_ctrl,
    encode_ctrl,
)
from repro.util.checksums import file_checksum

__all__ = ["DataClient", "FetchResult", "TransferChecksumError"]

_RECV_SIZE = 256 * 1024


class TransferChecksumError(SimFSError):
    """Downloaded bytes do not hash to the server-announced checksum."""

    code = ErrorCode.ERR_CHECKSUM


@dataclass
class FetchResult:
    """Outcome of one :meth:`DataClient.fetch`."""

    context: str
    filename: str
    path: str
    size: int
    bytes: int            #: bytes transferred by this call (size - resume offset)
    resumed_from: int
    seconds: float
    checksum: str
    proxied: bool = field(default=False)

    @property
    def throughput_mbps(self) -> float:
        return self.bytes / max(self.seconds, 1e-9) / 1e6


def _map_error(result: dict) -> SimFSError:
    code = result.get("code", int(ErrorCode.ERR_PROTOCOL))
    text = result.get("error", "data-plane error")
    if code == int(ErrorCode.ERR_NOT_FOUND):
        return FileNotInContextError(text)
    if code == int(ErrorCode.ERR_INVALID):
        return InvalidArgumentError(text)
    return ProtocolError(text)


class DataClient:
    """One TCP connection to a data port."""

    def __init__(self, host: str, port: int, timeout: float = 60.0) -> None:
        self.host, self.port = host, port
        self._decoder = DataFrameDecoder()
        self._pending: list[tuple[int, int, bytes]] = []
        self._channel = 0
        try:
            self._sock = socket.create_connection((host, port), timeout=timeout)
            self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError as exc:
            raise DVConnectionLost(
                f"cannot reach data port {host}:{port}: {exc}"
            ) from exc
        self._sock.settimeout(timeout)

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> DataClient:
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- wire helpers ----------------------------------------------------

    def _send(self, message: dict) -> None:
        try:
            self._sock.sendall(encode_ctrl(message))
        except OSError as exc:
            raise DVConnectionLost(f"data connection lost: {exc}") from exc

    def _read_frame(self) -> tuple[int, int, bytes]:
        while True:
            if self._pending:
                return self._pending.pop(0)
            try:
                data = self._sock.recv(_RECV_SIZE)
            except socket.timeout as exc:
                raise DVConnectionLost("data connection timed out") from exc
            except OSError as exc:
                raise DVConnectionLost(f"data connection lost: {exc}") from exc
            if not data:
                raise DVConnectionLost("data connection closed by server")
            self._pending.extend(self._decoder.feed(data))

    # -- public API ------------------------------------------------------

    def ping(self) -> float:
        """Round-trip a control frame; returns latency in seconds."""
        start = time.monotonic()
        self._send({"op": "ping", "channel": 0, "t": start})
        kind, _, payload = self._read_frame()
        if kind != KIND_CTRL or decode_ctrl(payload).get("op") != "pong":
            raise ProtocolError("unexpected reply to data-plane ping")
        return time.monotonic() - start

    def list_files(self, context: str) -> list[str]:
        self._send({"op": "list", "channel": 0, "context": context})
        while True:
            kind, _, payload = self._read_frame()
            if kind != KIND_CTRL:
                raise ProtocolError("unexpected DATA frame during list")
            message = decode_ctrl(payload)
            op = message.get("op")
            if op == "listing":
                return list(message.get("files", []))
            if op == "error":
                raise _map_error(message)

    def fetch(
        self,
        context: str,
        filename: str,
        dest: str,
        *,
        resume: bool = True,
        expected_checksum: str | None = None,
        tc: str | None = None,
    ) -> FetchResult:
        """Pull ``(context, filename)`` into ``dest`` with verification.

        ``tc`` is an optional trace-context wire string
        (:meth:`repro.obs.trace.TraceContext.to_wire`); when given, the
        server records the transfer as a ``data.fetch`` span of that
        trace.  Servers that predate tracing ignore the key.
        """
        part = dest + ".part"
        offset = 0
        if resume and os.path.exists(part):
            offset = os.path.getsize(part)
        try:
            return self._fetch_once(context, filename, dest, part, offset,
                                    expected_checksum, tc)
        except InvalidArgumentError:
            if offset == 0:
                raise
            # Stale .part (source changed size); restart from scratch.
            os.unlink(part)
            return self._fetch_once(context, filename, dest, part, 0,
                                    expected_checksum, tc)

    def _fetch_once(self, context, filename, dest, part, offset,
                    expected_checksum, tc=None) -> FetchResult:
        self._channel = (self._channel % 0xFFFF) + 1
        channel = self._channel
        start = time.monotonic()
        request = {"op": "fetch", "channel": channel, "context": context,
                   "file": filename, "offset": offset}
        if tc is not None:
            request["tc"] = tc
        self._send(request)
        size = None
        checksum = ""
        received = 0
        fh = None
        try:
            while True:
                kind, chan, payload = self._read_frame()
                if kind == KIND_DATA:
                    if chan != channel or fh is None:
                        raise ProtocolError(
                            f"DATA frame on unexpected channel {chan}"
                        )
                    fh.write(payload)
                    received += len(payload)
                    continue
                message = decode_ctrl(payload)
                op = message.get("op")
                if op == "fetch_start":
                    size = int(message["size"])
                    checksum = message.get("checksum", "")
                    os.makedirs(os.path.dirname(part) or ".", exist_ok=True)
                    fh = open(part, "ab")
                    if fh.tell() != offset:
                        fh.truncate(offset)
                elif op == "fetch_end":
                    break
                elif op == "error":
                    raise _map_error(message)
        finally:
            if fh is not None:
                fh.flush()
                fh.close()
        seconds = max(1e-9, time.monotonic() - start)
        actual = os.path.getsize(part)
        if size is None or actual != size:
            raise ProtocolError(
                f"short transfer: have {actual} of {size} bytes"
            )
        digest = file_checksum(part)
        if checksum and digest != checksum:
            os.unlink(part)
            raise TransferChecksumError(
                f"checksum mismatch for {context}/{filename}: "
                f"{digest} != {checksum}"
            )
        if expected_checksum and digest != expected_checksum:
            os.unlink(part)
            raise TransferChecksumError(
                f"checksum mismatch for {context}/{filename}: "
                f"{digest} != {expected_checksum}"
            )
        os.replace(part, dest)
        return FetchResult(
            context=context, filename=filename, path=dest, size=size,
            bytes=received, resumed_from=offset, seconds=seconds,
            checksum=digest,
        )
