"""Trace replay through the SimFS cache model (Fig. 5's measurement loop).

Replays an access trace against a bounded storage area without timing.  A
miss on ``d_i`` restarts the simulation from the closest previous
checkpoint and produces the output steps up to ``d_i`` (its *miss cost*,
Sec. III-D), all of which enter the cache; if the next miss falls later in
the same window the running simulation continues (one restart serves it),
and when the analysis jumps elsewhere the simulation is killed (Sec. IV-C)
so the unproduced tail costs nothing.  The replay counts what Fig. 5
reports — **simulated output steps** (bars) and **restarts** (black dots)
— plus hit/eviction statistics, and is also how the cost models obtain the
re-simulation volume ``V(γ)`` (Sec. V).
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterable
from dataclasses import dataclass

from repro.cache.manager import StorageArea
from repro.core.steps import StepGeometry

__all__ = ["ReplayResult", "replay_trace"]


@dataclass(frozen=True)
class ReplayResult:
    """Counters from one trace replay."""

    accesses: int
    hits: int
    misses: int
    restarts: int                #: re-simulations launched
    simulated_outputs: int       #: output steps produced by re-simulations
    evictions: int

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


def replay_trace(
    trace: Iterable[int],
    geometry: StepGeometry,
    policy: str,
    cache_fraction: float | None = None,
    capacity_entries: int | None = None,
    warm: Iterable[int] = (),
    max_parallel_sims: int = 8,
) -> ReplayResult:
    """Replay ``trace`` and return the Fig. 5 counters.

    Parameters
    ----------
    policy:
        Replacement scheme name (``lru``/``lirs``/``arc``/``bcl``/``dcl``).
    cache_fraction:
        Cache size as a fraction of the total data volume (the paper uses
        25 %); mutually exclusive with ``capacity_entries``.
    warm:
        Output steps resident before the replay starts (e.g. what a
        previous workload left behind).
    max_parallel_sims:
        How many re-simulations may be alive at once (the context's
        ``smax``); interleaved analyses share production through them.
    """
    if (cache_fraction is None) == (capacity_entries is None):
        raise ValueError("pass exactly one of cache_fraction/capacity_entries")
    if capacity_entries is None:
        total = geometry.num_output_steps
        capacity_entries = max(1, int(total * cache_fraction))

    area = StorageArea(policy, capacity_bytes=capacity_entries, entry_bytes=1)
    for key in warm:
        area.insert(key, cost=float(geometry.miss_cost(key)))

    restarts = 0
    simulated = 0
    hits = 0
    misses = 0
    accesses = 0
    # Active re-simulations: window -> highest output produced so far.  A
    # miss later in an active window continues that simulation (no new
    # restart); up to ``max_parallel_sims`` windows stay alive so
    # interleaved analyses share production, and the least recently
    # continued one is killed beyond that (Sec. IV-C) — its unproduced
    # tail costs nothing.
    active: OrderedDict[tuple[int, int], int] = OrderedDict()
    for key in trace:
        accesses += 1
        if area.access(key):
            hits += 1
            continue
        misses += 1
        key_ts = key * geometry.delta_d
        window = next(
            (
                w
                for w, upto in active.items()
                if w[0] * geometry.delta_r < key_ts <= w[1] * geometry.delta_r
                and key > upto
            ),
            None,
        )
        if window is not None:
            # A running simulation will produce this step: continue it.
            first = active[window] + 1
            active[window] = key
            active.move_to_end(window)
        else:
            # New restart from the closest previous checkpoint.
            restarts += 1
            window = geometry.resim_job_extent(key)
            first = window[0] * geometry.delta_r // geometry.delta_d + 1
            active[window] = key
            active.move_to_end(window)
            while len(active) > max_parallel_sims:
                active.popitem(last=False)
        produced = range(first, key + 1)
        simulated += len(produced)
        # The missed step is pinned through its own insertion wave so cache
        # pressure from sibling outputs cannot evict it before it is read.
        area.insert(key, cost=float(geometry.miss_cost(key)), pinned=True)
        for out in produced:
            if out != key and out not in area:
                area.insert(out, cost=float(geometry.miss_cost(out)))
        area.unpin(key)
        area.evict_until_fits()
    return ReplayResult(
        accesses=accesses,
        hits=hits,
        misses=misses,
        restarts=restarts,
        simulated_outputs=simulated,
        evictions=len(area.evictions),
    )
