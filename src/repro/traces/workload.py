"""Multi-analysis workloads with controlled execution overlap (Sec. V-A).

The cost studies use ``z`` synthetic forward-in-time analyses, each starting
at a random output step; their *overlap* — how much their executions
interleave — degrades temporal locality and therefore raises the
re-simulation volume ``V(γ)`` (Figs. 13/14 discussion).

Overlap model: analysis ``j`` executes over a virtual-time window starting
at ``o_j = j * L * (1 - overlap)``; its accesses are placed uniformly in the
window and all analyses are merged by virtual time.  ``overlap = 0`` gives
strictly sequential execution, ``overlap = 1`` full interleaving, and the
mapping is monotone in between.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.errors import InvalidArgumentError

__all__ = ["AnalysisRun", "ForwardWorkload"]


@dataclass(frozen=True)
class AnalysisRun:
    """One synthetic analysis: a forward scan of the timeline."""

    start_step: int
    length: int

    @property
    def accesses(self) -> range:
        return range(self.start_step, self.start_step + self.length)


@dataclass(frozen=True)
class ForwardWorkload:
    """``z`` forward analyses with a given execution overlap."""

    num_output_steps: int
    num_analyses: int
    analysis_length: int
    overlap: float          #: 0 (sequential) .. 1 (fully interleaved)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_analyses < 1:
            raise InvalidArgumentError("num_analyses must be >= 1")
        if not 1 <= self.analysis_length <= self.num_output_steps:
            raise InvalidArgumentError(
                f"analysis_length {self.analysis_length} outside "
                f"[1, {self.num_output_steps}]"
            )
        if not 0.0 <= self.overlap <= 1.0:
            raise InvalidArgumentError(
                f"overlap must be in [0, 1], got {self.overlap}"
            )

    def analyses(self) -> list[AnalysisRun]:
        """The per-analysis access sequences γ(j)."""
        rng = random.Random(self.seed)
        runs = []
        max_start = self.num_output_steps - self.analysis_length + 1
        for _ in range(self.num_analyses):
            runs.append(
                AnalysisRun(start_step=rng.randint(1, max_start),
                            length=self.analysis_length)
            )
        return runs

    def merged_trace(self) -> list[int]:
        """The global access sequence γ seen by the DV."""
        rng = random.Random(self.seed + 1)
        events: list[tuple[float, int, int]] = []
        window = float(self.analysis_length)
        for j, run in enumerate(self.analyses()):
            origin = j * window * (1.0 - self.overlap)
            # Accesses keep their order within the analysis; jitter spreads
            # them through the window so interleaving is fine-grained.
            times = sorted(rng.uniform(0.0, window) for _ in range(run.length))
            for idx, key in enumerate(run.accesses):
                events.append((origin + times[idx], j, key))
        events.sort()
        return [key for _t, _j, key in events]
