"""Synthetic analysis access traces (paper Sec. III-D, *Caching Schemes
Evaluation*).

The paper generates, per access pattern, 50 traces that each start at a
random point of the simulation timeline and access a random number of
output steps (100-400), then concatenates them into a single trace replayed
by a synthetic analysis tool:

* **forward** — ascending consecutive output steps;
* **backward** — descending consecutive output steps;
* **random** — uniformly random steps.

All generators take an explicit seed; traces are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.errors import InvalidArgumentError

__all__ = ["TraceSpec", "forward_trace", "backward_trace", "random_trace",
           "concatenated_trace", "PATTERNS"]


@dataclass(frozen=True)
class TraceSpec:
    """Parameters of the paper's trace generation recipe."""

    num_output_steps: int          #: timeline length (e.g. 1152 for 4 days)
    num_traces: int = 50           #: single traces to concatenate
    min_len: int = 100
    max_len: int = 400

    def __post_init__(self) -> None:
        if self.num_output_steps < 1:
            raise InvalidArgumentError("num_output_steps must be >= 1")
        if not 1 <= self.min_len <= self.max_len:
            raise InvalidArgumentError(
                f"bad trace length range [{self.min_len}, {self.max_len}]"
            )
        if self.num_traces < 1:
            raise InvalidArgumentError("num_traces must be >= 1")


def forward_trace(start: int, length: int, num_steps: int) -> list[int]:
    """Ascending trajectory from ``start``, clamped to the timeline."""
    _check(start, num_steps)
    stop = min(start + length, num_steps + 1)
    return list(range(start, stop))


def backward_trace(start: int, length: int, num_steps: int) -> list[int]:
    """Descending trajectory from ``start`` down to at most step 1."""
    _check(start, num_steps)
    stop = max(start - length, 0)
    return list(range(start, stop, -1))


def random_trace(rng: random.Random, length: int, num_steps: int) -> list[int]:
    """Uniformly random output steps."""
    return [rng.randint(1, num_steps) for _ in range(length)]


def concatenated_trace(pattern: str, spec: TraceSpec, seed: int) -> list[int]:
    """The paper's recipe: ``num_traces`` single traces, each starting at a
    random point and accessing a random number of steps, concatenated."""
    rng = random.Random(seed)
    out: list[int] = []
    for _ in range(spec.num_traces):
        length = rng.randint(spec.min_len, spec.max_len)
        start = rng.randint(1, spec.num_output_steps)
        if pattern == "forward":
            out += forward_trace(start, length, spec.num_output_steps)
        elif pattern == "backward":
            out += backward_trace(start, length, spec.num_output_steps)
        elif pattern == "random":
            out += random_trace(rng, length, spec.num_output_steps)
        else:
            raise InvalidArgumentError(
                f"unknown pattern {pattern!r}; expected forward/backward/random"
            )
    return out


PATTERNS = ("forward", "backward", "random")


def _check(start: int, num_steps: int) -> None:
    if not 1 <= start <= num_steps:
        raise InvalidArgumentError(
            f"trace start {start} outside timeline [1, {num_steps}]"
        )
