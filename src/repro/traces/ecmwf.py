"""Synthetic ECMWF-like archive access trace.

The paper replays a real trace of the ECMWF ECFS archival system
(Grawinkel et al., FAST'15): all successful accesses from January 2012 to
May 2014, touching 874 distinct files 659,989 times.  The real trace is not
redistributable, so the reproduction generates a synthetic trace matching
its published aggregate characteristics:

* a fixed population of distinct files (874 by default) mapped onto the
  simulation timeline,
* a heavy-tailed (Zipf) file-popularity distribution — archival workloads
  re-access a small hot set very frequently,
* temporal burstiness: runs of accesses stay within a small neighbourhood
  (analysts read consecutive forecast steps) before jumping to another
  region.

What Fig. 5 needs from this trace is the *regime* — strongly skewed re-use
with mixed locality — which separates cost-aware eviction (BCL/DCL) from
purely recency-based schemes; see DESIGN.md for the substitution note.
"""

from __future__ import annotations

import random

from repro.core.errors import InvalidArgumentError

__all__ = ["ECMWF_FILES", "ECMWF_ACCESSES", "ecmwf_like_trace"]

#: Published aggregate statistics of the paper's ECMWF trace.
ECMWF_FILES = 874
ECMWF_ACCESSES = 659_989


def ecmwf_like_trace(
    num_output_steps: int,
    seed: int,
    num_files: int = ECMWF_FILES,
    num_accesses: int = 20_000,
    zipf_s: float = 1.1,
    burst_mean: int = 8,
    burst_span: int = 4,
) -> list[int]:
    """Generate a synthetic archive-access trace over the timeline.

    Parameters
    ----------
    num_output_steps:
        Timeline length; the distinct-file population is mapped uniformly
        onto it.
    num_accesses:
        Trace length.  The default (20k) keeps experiment runtime sane while
        preserving the distribution; pass ``ECMWF_ACCESSES`` for full scale.
    zipf_s:
        Zipf exponent of the popularity distribution.
    burst_mean / burst_span:
        Geometric mean length of bursts and the neighbourhood radius (in
        population rank) a burst wanders over.
    """
    if num_files < 1 or num_accesses < 1:
        raise InvalidArgumentError("num_files and num_accesses must be >= 1")
    if num_files > num_output_steps:
        num_files = num_output_steps
    if zipf_s <= 0:
        raise InvalidArgumentError(f"zipf_s must be > 0, got {zipf_s}")

    rng = random.Random(seed)
    # Population: num_files distinct steps spread over the timeline, in a
    # shuffled order so popularity rank is independent of position.
    population = rng.sample(range(1, num_output_steps + 1), num_files)
    # Zipf CDF over ranks.
    weights = [1.0 / (rank**zipf_s) for rank in range(1, num_files + 1)]
    total = sum(weights)
    cdf = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cdf.append(acc)

    def draw_rank() -> int:
        u = rng.random()
        lo, hi = 0, num_files - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cdf[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return lo

    trace: list[int] = []
    while len(trace) < num_accesses:
        anchor = draw_rank()
        burst_len = 1 + min(
            int(rng.expovariate(1.0 / burst_mean)), num_accesses - len(trace) - 1
        )
        for _ in range(burst_len):
            rank = anchor + rng.randint(-burst_span, burst_span)
            rank = min(max(rank, 0), num_files - 1)
            trace.append(population[rank])
    return trace[:num_accesses]
