"""Access-trace generation (forward/backward/random, ECMWF-like) and cache
replay for the Fig. 5 and cost-model experiments."""

from repro.traces.ecmwf import ECMWF_ACCESSES, ECMWF_FILES, ecmwf_like_trace
from repro.traces.patterns import (
    PATTERNS,
    TraceSpec,
    backward_trace,
    concatenated_trace,
    forward_trace,
    random_trace,
)
from repro.traces.replay import ReplayResult, replay_trace
from repro.traces.workload import AnalysisRun, ForwardWorkload

__all__ = [
    "AnalysisRun",
    "ECMWF_ACCESSES",
    "ECMWF_FILES",
    "ForwardWorkload",
    "PATTERNS",
    "ReplayResult",
    "TraceSpec",
    "backward_trace",
    "concatenated_trace",
    "ecmwf_like_trace",
    "forward_trace",
    "random_trace",
    "replay_trace",
]
