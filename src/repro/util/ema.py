"""Exponential moving average used to estimate restart latencies.

Paper Sec. IV-C1c: with non-constant restart latencies (e.g. variable batch
queueing times) SimFS tracks the latency with an exponential moving average
"so to consider only the most recent observation"; the smoothing factor is a
simulation-context parameter.
"""

from __future__ import annotations

from repro.core.errors import InvalidArgumentError

__all__ = ["ExponentialMovingAverage"]


class ExponentialMovingAverage:
    """EMA with smoothing factor ``alpha`` in (0, 1].

    ``value = alpha * sample + (1 - alpha) * value``; before the first
    observation the estimate falls back to ``initial`` (which defaults to
    0.0 — an optimistic estimate that under-prefetches rather than spawning
    simulations for latencies never observed).
    """

    def __init__(self, smoothing: float, initial: float = 0.0) -> None:
        if not 0.0 < smoothing <= 1.0:
            raise InvalidArgumentError(
                f"smoothing factor must be in (0, 1], got {smoothing}"
            )
        self._alpha = smoothing
        self._value = float(initial)
        self._count = 0

    @property
    def value(self) -> float:
        """Current estimate."""
        return self._value

    @property
    def count(self) -> int:
        """Number of observations folded in so far."""
        return self._count

    def observe(self, sample: float) -> float:
        """Fold in a new sample and return the updated estimate."""
        if self._count == 0:
            self._value = float(sample)
        else:
            self._value = self._alpha * sample + (1.0 - self._alpha) * self._value
        self._count += 1
        return self._value

    def reset(self, initial: float = 0.0) -> None:
        """Forget all observations."""
        self._value = float(initial)
        self._count = 0
