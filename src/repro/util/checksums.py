"""File checksum helpers backing ``SIMFS_Bitrep`` (paper Sec. III-C2).

The way the checksum is computed is simulator-specific in SimFS (a driver
function); these helpers provide the default whole-file digest drivers can
use or replace.
"""

from __future__ import annotations

import hashlib
import os

__all__ = ["file_checksum", "bytes_checksum"]

_CHUNK = 1 << 20


def bytes_checksum(data: bytes) -> str:
    """Hex SHA-256 of an in-memory blob."""
    return hashlib.sha256(data).hexdigest()


def file_checksum(path: str | os.PathLike[str]) -> str:
    """Hex SHA-256 of a file, streamed in 1 MiB chunks."""
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        while True:
            chunk = fh.read(_CHUNK)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()
