"""Clock abstraction shared by real mode and virtual-time mode.

The DV coordinator, cache manager, and prefetch agents are written against
this interface so the identical logic runs both against wall-clock time (the
TCP daemon) and inside the discrete-event simulator (``repro.des``), where
seconds are simulated (see DESIGN.md Sec. 6).
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable

__all__ = ["Clock", "WallClock", "ManualClock"]


@runtime_checkable
class Clock(Protocol):
    """Minimal monotonically non-decreasing clock."""

    def now(self) -> float:
        """Current time in seconds."""
        ...


class WallClock:
    """Real-time clock backed by :func:`time.monotonic`."""

    def __init__(self) -> None:
        self._origin = time.monotonic()

    def now(self) -> float:
        return time.monotonic() - self._origin


class ManualClock:
    """Clock advanced explicitly; used by tests and the DES engine."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> float:
        """Move time forward by ``dt`` seconds (must be >= 0)."""
        if dt < 0:
            raise ValueError(f"cannot move time backwards (dt={dt})")
        self._now += dt
        return self._now

    def set(self, t: float) -> float:
        """Jump to absolute time ``t`` (must not be in the past)."""
        if t < self._now:
            raise ValueError(f"cannot move time backwards ({t} < {self._now})")
        self._now = float(t)
        return self._now
