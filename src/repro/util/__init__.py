"""Shared utilities: EMA estimation, checksums, clock abstraction."""

from repro.util.checksums import bytes_checksum, file_checksum
from repro.util.clock import Clock, ManualClock, WallClock
from repro.util.ema import ExponentialMovingAverage

__all__ = [
    "Clock",
    "ExponentialMovingAverage",
    "ManualClock",
    "WallClock",
    "bytes_checksum",
    "file_checksum",
]
