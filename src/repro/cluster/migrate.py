"""Live context migration: move a context between live cluster nodes.

Ring membership used to be the only thing that moved contexts — a node
died and the hash reassigned its contexts cold.  Migration moves one
context from its current (healthy) owner to a chosen destination while
both keep serving, the relief valve the autoscaler pulls when a node
saturates (NEXUSAI-style demand scaling: the decision is made where the
load is, no coordinator).

The protocol is source-driven over the ordinary
:class:`~repro.cluster.link.PeerLink`, reusing the HA tier's
snapshot+delta codec (:func:`~repro.cluster.replication.diff_state` /
:func:`~repro.cluster.replication.apply_delta`):

1. **Pre-copy** — the source streams ``kind="snap"`` then ``kind="delta"``
   frames of the shard's control-plane state (clients, waiter table,
   cache-resident keys, re-simulation progress markers, latency EMA)
   while the shard keeps serving; each round shrinks the final handoff.
2. **Cutover** — under the node lock the source captures the final state
   (every waiter annotated with its ingress origin; local clients get the
   source itself as origin), **pins** the context to the destination on
   the ring (a versioned placement override that gossip spreads and the
   epoch bump advertises), and deactivates the shard (waiter table
   cleared so nothing is failed; in-flight re-simulations are killed and
   their progress markers travel in the state).  The job-intake freeze is
   exactly this window: ops racing the cutover block briefly on the node
   lock, then route to the destination via the pinned ring.
3. **Finalize** — the ``kind="final"`` frame carries the last state and
   the pin; the destination adopts the pin, activates the context (the
   PFS scan finds files already on shared storage), restores the state
   exactly as HA promotion does — waiters re-registered and replayed,
   interrupted re-simulations relaunched from their progress markers,
   readies pushed for files already on disk — and best-effort pulls
   cache files the PFS does not share from the source's data-plane port.
   The source records every migrated waiter as pending-at-destination,
   so a later destination death replays them, and gossips immediately so
   clients redirect on their next ring refresh.

**Abort** is the bugfix-shaped edge: if the destination is unreachable
at cutover the source re-pins the context to *itself* at a higher pin
version (outranking any pin the lost final frame may still have
delivered), re-activates, and restores its own captured state — waiters
survive, clients never saw the move.  If instead the **source dies
mid-migration**, the destination holds the pre-copied state in its
incoming store and the ring reassignment promotes from that partial
handoff exactly like an HA replica (``ClusterNode._promote_warm``); at
worst the handoff degrades to the cold replay path that failover has
always used.
"""

from __future__ import annotations

import json
import threading
import time

from repro.cluster.replication import apply_delta, diff_state
from repro.core.errors import (
    DVConnectionLost,
    InvalidArgumentError,
    SimFSError,
)

__all__ = ["MigrationManager"]


class MigrationManager:
    """Both halves of the migration protocol for one cluster node."""

    def __init__(self, node, precopy_rounds: int = 2) -> None:
        self.node = node
        self.precopy_rounds = precopy_rounds
        self._lock = threading.Lock()
        #: Source side: contexts with a migration in flight (one at a time
        #: per context; concurrent requests are rejected, not queued).
        self._migrating: set[str] = set()
        #: Destination side: pre-copied state per context, promotable if
        #: the source dies before the final frame lands.
        self._incoming: dict[str, dict] = {}
        self.last_outgoing: dict | None = None
        self.last_incoming: dict | None = None
        metrics = node.metrics
        self._m_started = metrics.counter("migrate.started")
        self._m_completed = metrics.counter("migrate.completed")
        self._m_aborted = metrics.counter("migrate.aborted")
        self._m_adopted = metrics.counter("migrate.adopted")
        self._m_promoted = metrics.counter("migrate.promoted_partial")
        self._m_waiters = metrics.counter("migrate.waiters_moved")
        self._m_bytes = metrics.counter("migrate.bytes_sent")
        self._m_frames_recv = metrics.counter("migrate.frames_received")
        self._m_fetched = metrics.counter("migrate.files_fetched")
        self._m_freeze = metrics.histogram("migrate.freeze_seconds")

    # ------------------------------------------------------------------ #
    # Source side
    # ------------------------------------------------------------------ #
    def migrate(
        self, context: str, dest: str, precopy_rounds: int | None = None
    ) -> dict:
        """Move ``context`` to ``dest``; returns a result summary.

        Raises :class:`InvalidArgumentError` on a bad request (not the
        owner, unknown destination, migration already running) and
        :class:`DVConnectionLost` when the destination became unreachable
        and the migration rolled back (the context is still served here).
        """
        node = self.node
        if node.engine is not None:
            raise InvalidArgumentError(
                "live migration is not supported on engine-mode nodes "
                "(the shards live in executor processes)"
            )
        if dest == node.node_id:
            raise InvalidArgumentError(
                f"context {context!r} is already on {dest!r}"
            )
        with node._lock:
            if context not in node._specs:
                raise InvalidArgumentError(f"unknown context {context!r}")
            owner = node.ring.owner(context)
            peer = node.table.get(dest)
        if owner != node.node_id:
            raise InvalidArgumentError(
                f"context {context!r} is owned by {owner!r}, not this node"
            )
        if peer is None or not peer.alive:
            raise InvalidArgumentError(f"destination {dest!r} is not alive")
        with self._lock:
            if context in self._migrating:
                raise InvalidArgumentError(
                    f"context {context!r} is already migrating"
                )
            self._migrating.add(context)
        try:
            return self._run(
                context, dest,
                self.precopy_rounds if precopy_rounds is None
                else precopy_rounds,
            )
        finally:
            with self._lock:
                self._migrating.discard(context)

    def _run(self, context: str, dest: str, rounds: int) -> dict:
        node = self.node
        obs = node.server.obs
        # Migrations are rare and operator-relevant: always sampled, so
        # `simfs-ctl trace <id>` reconstructs the move end to end.
        tc = obs.start_trace(sampled=True)
        tc_wire = tc.to_wire()
        obs.journal(
            "migrate.start", context=context, dest=dest,
            trace_id=f"{tc.trace_id:016x}",
        )
        self._m_started.inc()
        began = time.monotonic()
        obs_began = obs.now()
        seq = 0
        acked: dict | None = None
        # Phase 1: pre-copy while the shard keeps serving.  Every round
        # ships what changed since the last acknowledged state; the final
        # handoff then carries only the remaining delta-sized snapshot.
        for _ in range(max(0, rounds)):
            state = node._capture_repl(context)
            if state is None:
                break  # shard gone (racing a reassignment); cutover decides
            if acked is None:
                frame = {"kind": "snap", "state": state}
            else:
                delta = diff_state(acked, state)
                if delta is None:
                    break  # converged; nothing left to pre-copy
                frame = {"kind": "delta", "delta": delta}
            seq += 1
            frame.update({
                "op": "migrate", "from": node.node_id,
                "context": context, "seq": seq, "tc": tc_wire,
            })
            reply = self._send(dest, frame)
            if reply is None:
                raise DVConnectionLost(
                    f"destination {dest!r} unreachable during pre-copy; "
                    f"context {context!r} untouched"
                )
            acked = state if reply.get("ok") else None

        obs.record(
            "migrate.precopy", tc, obs_began, obs.now(),
            context=context, dest=dest, frames=seq,
        )

        # Phase 2: cutover under the node lock — the job-intake freeze.
        # Racing client ops block on this lock, then reroute to the
        # pinned destination; _forward_routed absorbs the destination's
        # activation lag with its ERR_CONTEXT retry loop.
        freeze_began = time.monotonic()
        obs_freeze_began = obs.now()
        with node._lock:
            if node.ring.owner(context) != node.node_id:
                raise InvalidArgumentError(
                    f"lost ownership of {context!r} mid-migration"
                )
            final = node._capture_repl(context)
            if final is None:
                raise InvalidArgumentError(
                    f"context {context!r} has no local shard to migrate"
                )
            # Waiters of this node's own clients carry no ingress origin;
            # the destination must route their readies back through us.
            final["waiters"] = [
                [cid, fn, origin or node.node_id]
                for cid, fn, origin in final["waiters"]
            ]
            version = node._bump_pin(context, dest)
            node._deactivate(context)
        seq += 1
        frame = {
            "op": "migrate", "from": node.node_id, "context": context,
            "seq": seq, "kind": "final", "state": final,
            "pin": [context, dest, version],
            "data_port": node.data.port, "tc": tc_wire,
        }
        reply = self._send(dest, frame)
        if reply is None or not reply.get("ok"):
            self._abort(context, final, version)
            self._m_aborted.inc()
            detail = (reply or {}).get("detail", "unreachable at cutover")
            obs.journal(
                "migrate.abort", context=context, dest=dest, detail=detail,
            )
            raise DVConnectionLost(
                f"migration of {context!r} to {dest!r} aborted ({detail}); "
                "the context is still served here"
            )
        freeze_s = time.monotonic() - freeze_began
        self._m_freeze.observe(freeze_s)
        obs.record(
            "migrate.freeze", tc, obs_freeze_began,
            obs_freeze_began + freeze_s, context=context, dest=dest,
        )
        waiters = final.get("waiters", ())
        with node._lock:
            # Dest death must replay these from here: the migrated
            # waiters' readies now come from dest, and _sync_ring's
            # pending scan is the mechanism that notices a dead owner.
            for entry in waiters:
                node._pending[(entry[0], context, entry[1])] = dest
            for cid in final.get("clients", ()):
                if cid in node._proxies:
                    continue  # a gateway's client: its ingress tracks it
                node._ingress_ctx.setdefault(cid, {})[context] = dest
        self._m_completed.inc()
        self._m_waiters.inc(len(waiters))
        node._gossip_soon()
        result = {
            "context": context, "from": node.node_id, "to": dest,
            "pin_version": version, "precopy_frames": seq - 1,
            "moved_waiters": len(waiters),
            "moved_clients": len(final.get("clients", ())),
            "resumed_sims": len(final.get("sims", ())),
            "freeze_seconds": round(freeze_s, 6),
            "total_seconds": round(time.monotonic() - began, 6),
        }
        obs.record(
            "migrate.total", tc, obs_began, obs.now(),
            context=context, dest=dest, waiters=len(waiters),
        )
        obs.journal(
            "migrate.cutover", context=context, dest=dest,
            freeze_seconds=result["freeze_seconds"],
            moved_waiters=len(waiters),
            trace_id=f"{tc.trace_id:016x}",
        )
        self.last_outgoing = dict(result, at=time.time())
        return result

    def _abort(self, context: str, state: dict, version: int) -> None:
        """Cutover failed: pin the context back to this node at a higher
        version (outranks a pin the lost final frame may have installed)
        and restore the captured state locally — nothing is lost."""
        node = self.node
        with node._lock:
            node._adopt_pin(context, node.node_id, version + 1, force=True)
            if context in node._specs and context not in node._active:
                node._activate(context)
        waiters = [e for e in state.get("waiters", ()) if len(e) >= 2]
        node._register_waiter_origins(waiters)
        try:
            shard = node.server.coordinator.shard(context)
        except SimFSError:
            return
        ready = shard.restore_repl_state(state, node.server._clock.now())
        for notification in ready:
            node.server._push_ready(notification)
        node._gossip_soon()

    def _send(self, dest: str, frame: dict) -> dict | None:
        try:
            link = self.node._link_to(dest)
            reply = link.call(frame, timeout=self.node.rpc_timeout)
        except (DVConnectionLost, SimFSError, OSError):
            return None
        self._m_bytes.inc(len(json.dumps(frame, separators=(",", ":"))))
        return reply

    # ------------------------------------------------------------------ #
    # Destination side
    # ------------------------------------------------------------------ #
    def receive(self, frame: dict) -> dict:
        """Apply one migration frame from a peer (the ``migrate`` op)."""
        context = frame.get("context")
        src = frame.get("from")
        kind = frame.get("kind")
        seq = int(frame.get("seq", 0))
        if not isinstance(context, str) or not isinstance(src, str):
            return {"ok": False, "detail": "malformed migrate frame"}
        self._m_frames_recv.inc()
        if kind == "snap":
            with self._lock:
                self._incoming[context] = {
                    "src": src, "seq": seq,
                    "state": frame.get("state") or {},
                    "received_at": time.time(),
                }
            return {"ok": True, "seq": seq}
        if kind == "delta":
            with self._lock:
                record = self._incoming.get(context)
                if (
                    record is None
                    or record["src"] != src
                    or seq != record["seq"] + 1
                ):
                    return {"ok": False, "resync": True}
                delta = frame.get("delta")
                if not isinstance(delta, dict):
                    return {"ok": False, "resync": True}
                record["state"] = apply_delta(record["state"], delta)
                record["seq"] = seq
                record["received_at"] = time.time()
            return {"ok": True, "seq": seq}
        if kind == "final":
            return self._receive_final(frame)
        return {"ok": False, "detail": f"unknown migrate kind {kind!r}"}

    def _receive_final(self, frame: dict) -> dict:
        node = self.node
        context = frame["context"]
        src = frame["from"]
        state = frame.get("state")
        if not isinstance(state, dict):
            return {"ok": False, "detail": "final frame without state"}
        if node.engine is not None:
            return {
                "ok": False,
                "detail": "engine-mode node cannot accept a migration",
            }
        pin = frame.get("pin") or [context, node.node_id, 1]
        target, version = str(pin[1]), int(pin[2])
        with node._lock:
            if context not in node._specs:
                return {"ok": False, "detail": f"unknown context {context!r}"}
            node._adopt_pin(context, target, version, force=True)
            if context not in node._active:
                node._activate(context)
        with self._lock:
            self._incoming.pop(context, None)
        waiters = [e for e in state.get("waiters", ()) if len(e) >= 2]
        node._register_waiter_origins(waiters)
        try:
            shard = node.server.coordinator.shard(context)
        except SimFSError:
            return {"ok": False, "detail": "activation failed"}
        ready = shard.restore_repl_state(state, node.server._clock.now())
        for notification in ready:
            node.server._push_ready(notification)
        self._m_adopted.inc()
        node.server.obs.journal(
            "migrate.adopt", context=context, src=src,
            restored_waiters=len(waiters),
        )
        self.last_incoming = {
            "context": context, "from": src, "at": time.time(),
            "restored_waiters": len(waiters),
            "resumed_sims": len(state.get("sims", ())),
        }
        self._fetch_missing(
            context, src, frame.get("data_port"), state,
            tc=frame.get("tc"),
        )
        node._gossip_soon()
        return {"ok": True, "restored_waiters": len(waiters)}

    def _fetch_missing(
        self, context: str, src: str, data_port, state: dict,
        tc: str | None = None,
    ) -> None:
        """Best-effort background pull of cache-resident files the shared
        PFS does not already provide, over the source's data plane.  On a
        shared-PFS deployment this is a no-op (the activation scan found
        everything); without one it warms the destination's cache so the
        migrated files are not re-simulated."""
        node = self.node
        with node._lock:
            spec = node._specs.get(context)
            peer = node.table.get(src)
        if spec is None or peer is None:
            return
        port = int(data_port or 0) or peer.data_port
        if not port:
            return
        import os

        missing = []
        for key in state.get("resident", ()):
            try:
                filename = spec.context.filename_of(int(key))
            except (TypeError, ValueError, SimFSError):
                continue
            if not os.path.isfile(os.path.join(spec.output_dir, filename)):
                missing.append(filename)
        if not missing:
            return

        def pull() -> None:
            from repro.data.client import DataClient

            try:
                with DataClient(
                    peer.host, port, timeout=node.rpc_timeout
                ) as client:
                    for filename in missing:
                        client.fetch(
                            context, filename,
                            os.path.join(spec.output_dir, filename),
                            tc=tc,
                        )
                        self._m_fetched.inc()
            except (SimFSError, OSError):
                pass  # the shard re-simulates whatever never arrived

        threading.Thread(
            target=pull,
            name=f"migrate-fetch-{node.node_id}-{context}",
            daemon=True,
        ).start()

    # ------------------------------------------------------------------ #
    # Promotion from a partial handoff (source died mid-migration)
    # ------------------------------------------------------------------ #
    def has_incoming(self, context: str) -> bool:
        with self._lock:
            return context in self._incoming

    def promote_incoming(self, context: str) -> int:
        """This node became owner of a context whose migration source died
        before the final frame: restore from the freshest pre-copied
        state, exactly like an HA promotion.  Returns waiters restored."""
        with self._lock:
            record = self._incoming.pop(context, None)
        if record is None:
            return 0
        node = self.node
        state = record["state"]
        waiters = [e for e in state.get("waiters", ()) if len(e) >= 2]
        node._register_waiter_origins(waiters)
        try:
            shard = node.server.coordinator.shard(context)
        except SimFSError:
            return 0
        ready = shard.restore_repl_state(state, node.server._clock.now())
        for notification in ready:
            node.server._push_ready(notification)
        self._m_promoted.inc()
        node.server.obs.journal(
            "migrate.promote_partial", context=context, src=record["src"],
            restored_waiters=len(waiters),
        )
        self.last_incoming = {
            "context": context, "from": record["src"], "at": time.time(),
            "restored_waiters": len(waiters), "partial": True,
        }
        return len(waiters)

    def prune(self, alive: set[str], owner_lookup) -> None:
        """Drop incoming state whose source died while the ring assigned
        the context elsewhere — another node owns the cold restart, and a
        stale partial handoff must not shadow a future migration.  Called
        from ``_sync_ring`` with the node lock held."""
        with self._lock:
            for context in list(self._incoming):
                record = self._incoming[context]
                if record["src"] in alive:
                    continue
                if owner_lookup(context) != self.node.node_id:
                    del self._incoming[context]

    # ------------------------------------------------------------------ #
    def describe(self) -> dict:
        with self._lock:
            return {
                "migrating": sorted(self._migrating),
                "incoming": {
                    name: {
                        "src": record["src"], "seq": record["seq"],
                        "waiters": len(record["state"].get("waiters", ())),
                    }
                    for name, record in sorted(self._incoming.items())
                },
                "last_outgoing": self.last_outgoing,
                "last_incoming": self.last_incoming,
            }
