"""Metrics-driven elasticity: when to migrate, grow, or shrink.

The policy half (:class:`AutoscalerPolicy`) is pure and deterministic —
a list of per-node load samples in, a list of decisions out — so the
exact same object drives both the live cluster and the DES scale
scenarios (policy changes are validated in virtual time before they
touch a deployment, and a live incident can be replayed in the DES).

The driver half (:class:`Autoscaler`) is deliberately **decentralized**,
after NEXUSAI's Demand Scaling: every node runs its own sampler and only
ever executes migrations whose *source is itself*.  A saturated node
sheds load without asking a coordinator; the placement pins it creates
converge through gossip.  Since every node feeds the same policy the
same samples (modulo sampling skew), the per-node views agree on which
single node should act — and the migration protocol rejects a stale
loser anyway (only the current owner can move a context).  ``ScaleUp`` /
``ScaleDown`` decisions are surfaced as metrics and status hints for the
operator (or the DES, which can actually add and drain nodes); a live
node cannot conjure hardware.

Load is scored from the shard control plane: a context's score is its
blocked-waiter count plus running re-simulations plus queued jobs, and a
node's score is the sum over its contexts.  A node is *saturated* when
its score exceeds ``high`` or its ``op.open.seconds`` p99 exceeds the
SLO; migration picks the hottest context on the hottest saturated node
and moves it to the coldest peer when the peer can absorb it without
saturating — otherwise it escalates to a scale-up (no thrashing: a
post-decision cooldown holds further action while the cluster absorbs
the move).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.core.errors import DVConnectionLost, SimFSError

__all__ = [
    "NodeLoad",
    "Migrate",
    "ScaleUp",
    "ScaleDown",
    "AutoscalerPolicy",
    "Autoscaler",
]


@dataclass(frozen=True)
class NodeLoad:
    """One node's load sample: per-context scores plus open-latency p99."""

    node_id: str
    contexts: dict[str, float] = field(default_factory=dict)
    p99_open_s: float | None = None

    @property
    def score(self) -> float:
        return float(sum(self.contexts.values()))

    @staticmethod
    def from_sample(sample: dict) -> "NodeLoad":
        """Build from a ``load`` op reply (``ClusterNode.local_load``)."""
        contexts: dict[str, float] = {}
        for name, depth in (sample.get("contexts") or {}).items():
            contexts[str(name)] = (
                float(depth.get("waiters", 0))
                + float(depth.get("sims", 0))
                + float(depth.get("queued", 0))
            )
        p99 = sample.get("p99_open_s")
        return NodeLoad(
            str(sample.get("node")),
            contexts,
            None if p99 is None else float(p99),
        )


@dataclass(frozen=True)
class Migrate:
    context: str
    src: str
    dest: str


@dataclass(frozen=True)
class ScaleUp:
    count: int = 1


@dataclass(frozen=True)
class ScaleDown:
    node_id: str


class AutoscalerPolicy:
    """Deterministic decision function over a set of load samples.

    Ties break lexicographically by node/context id, so every node (and
    every DES run) derives the same decision from the same samples.
    Stateful only in its cooldown counter — construct one per driver.
    """

    def __init__(
        self,
        high: float = 8.0,
        low: float = 1.0,
        slo_p99_s: float | None = None,
        cooldown_ticks: int = 3,
        min_nodes: int = 1,
    ) -> None:
        self.high = high
        self.low = low
        self.slo_p99_s = slo_p99_s
        self.cooldown_ticks = cooldown_ticks
        self.min_nodes = min_nodes
        self._cooldown = 0

    def saturated(self, load: NodeLoad) -> bool:
        if load.score > self.high:
            return True
        return (
            self.slo_p99_s is not None
            and load.p99_open_s is not None
            and load.p99_open_s > self.slo_p99_s
        )

    def decide(self, loads: list[NodeLoad]) -> list:
        """One tick: at most one decision, then a cooldown."""
        if self._cooldown > 0:
            self._cooldown -= 1
            return []
        if not loads:
            return []
        hot = [load for load in loads if self.saturated(load)]
        if hot:
            cold = [load for load in loads if not self.saturated(load)]
            if not cold:
                # Nowhere to shed to: the cluster itself is too small.
                self._cooldown = self.cooldown_ticks
                return [ScaleUp(1)]
            src = max(hot, key=lambda load: (load.score, load.node_id))
            dest = min(cold, key=lambda load: (load.score, load.node_id))
            movable = [
                (score, name)
                for name, score in src.contexts.items()
                if score > 0
            ]
            if not movable:
                # Saturated by latency alone with nothing queued to move
                # (e.g. cold-cache thrash) — not a migration's problem.
                return []
            score, name = max(movable)
            if dest.score + score > self.high:
                # Even the coldest peer would saturate taking it.  A fresh
                # node could host it — unless the context alone exceeds
                # the mark, where more hardware cannot split the load.
                if score <= self.high:
                    self._cooldown = self.cooldown_ticks
                    return [ScaleUp(1)]
                return []
            self._cooldown = self.cooldown_ticks
            return [Migrate(name, src.node_id, dest.node_id)]
        if (
            len(loads) > self.min_nodes
            and all(load.score < self.low for load in loads)
        ):
            victim = min(loads, key=lambda load: (load.score, load.node_id))
            headroom = sum(
                max(0.0, self.high - load.score)
                for load in loads
                if load is not victim
            )
            if headroom >= victim.score:
                self._cooldown = self.cooldown_ticks
                return [ScaleDown(victim.node_id)]
        return []


class Autoscaler:
    """Per-node sampling loop driving :class:`AutoscalerPolicy` live.

    Executes only migrations sourced at its own node; scale hints are
    counted and surfaced through ``rebalance-status``.
    """

    def __init__(self, node, policy: AutoscalerPolicy,
                 interval: float = 2.0) -> None:
        self.node = node
        self.policy = policy
        self.interval = interval
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()
        self._last_decisions: list[dict] = []
        self._last_tick_at: float | None = None
        metrics = node.metrics
        self._m_ticks = metrics.counter("autoscale.ticks")
        self._m_migrates = metrics.counter("autoscale.migrations")
        self._m_up = metrics.counter("autoscale.scale_up_hints")
        self._m_down = metrics.counter("autoscale.scale_down_hints")
        self._m_errors = metrics.counter("autoscale.errors")

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop,
            name=f"autoscaler-{self.node.node_id}",
            daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.tick()
            except Exception:
                self._m_errors.inc()

    def sample(self) -> list[NodeLoad]:
        """This node's load plus every live peer's (best effort: an
        unreachable peer is simply absent from the sample — membership
        will deal with it)."""
        loads = [NodeLoad.from_sample(self.node.local_load())]
        with self.node._lock:
            peers = list(self.node.table.alive_peers())
        for peer in peers:
            try:
                reply = self.node._link_to(peer.node_id).call(
                    {"op": "load"}, timeout=self.node.rpc_timeout
                )
            except (DVConnectionLost, SimFSError, OSError):
                continue
            sample = reply.get("load")
            if isinstance(sample, dict):
                loads.append(NodeLoad.from_sample(sample))
        return loads

    def tick(self) -> list:
        """One sample/decide/act round; returns the policy decisions."""
        self._m_ticks.inc()
        decisions = self.policy.decide(self.sample())
        record: list[dict] = []
        for decision in decisions:
            if isinstance(decision, Migrate):
                entry = {
                    "action": "migrate", "context": decision.context,
                    "src": decision.src, "dest": decision.dest,
                }
                if decision.src == self.node.node_id:
                    try:
                        self.node.migration.migrate(
                            decision.context, decision.dest
                        )
                        entry["executed"] = True
                        self._m_migrates.inc()
                    except (SimFSError, OSError) as exc:
                        entry["executed"] = False
                        entry["detail"] = str(exc)
                        self._m_errors.inc()
                else:
                    entry["executed"] = False  # that node acts, not us
                record.append(entry)
            elif isinstance(decision, ScaleUp):
                self._m_up.inc()
                record.append({"action": "scale_up", "count": decision.count})
            elif isinstance(decision, ScaleDown):
                self._m_down.inc()
                record.append(
                    {"action": "scale_down", "node": decision.node_id}
                )
        # Every decision lands in the node's structured journal too, so
        # `simfs-ctl trace-slow` shows *why* a context moved next to the
        # latency spans of the move itself.
        obs = self.node.server.obs
        for entry in record:
            obs.journal("autoscale", decision=dict(entry))
        with self._lock:
            self._last_decisions = record
            self._last_tick_at = time.time()
        return decisions

    def describe(self) -> dict:
        with self._lock:
            return {
                "interval": self.interval,
                "high": self.policy.high,
                "low": self.policy.low,
                "slo_p99_s": self.policy.slo_p99_s,
                "last_decisions": list(self._last_decisions),
                "last_tick_at": self._last_tick_at,
            }
