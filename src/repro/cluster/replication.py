"""Replicated contexts: hot failover and background healing (HA tier).

Without replication every context has exactly one ring owner; when that
node dies all warm state — the waiter table, cache/storage metadata,
ready events, in-flight re-simulation progress — dies with it, and
blocked clients stall through failure detection plus a cold replay.
This module places each context's control-plane state on its owner
**plus the next ``factor - 1`` ring successors** (the ring's preference
list, :meth:`~repro.cluster.ring.HashRing.successors`), so the node the
ring promotes after a death is always already holding a warm copy.

Three cooperating pieces:

:class:`ReplicaStore` — the replica side.  Holds the last applied state
per context plus the ``(source, epoch, seq)`` stream position, and
enforces the acceptance rules: contiguous sequence numbers per source
(anything else answers ``resync`` and the owner falls back to a full
snapshot), duplicate frames are ignored, and **fencing** — a frame from
a node the receiver's own ring does not consider the context's owner,
or any frame arriving once this node has itself become the active
owner, is rejected with ``fenced`` so a partitioned stale owner can
never overwrite a promoted replica.  Fences are judged afresh on every
frame against the receiver's current ring (ring epochs are per-node
counters, never compared across nodes), and the fenced sender stands
down only transiently — it retries after ``fence_retry`` seconds or on
any local membership change, so a fence issued from a
not-yet-converged ring heals itself as gossip catches up.

:class:`ReplicationManager` — the owner side.  A pump thread snapshots
each owned context's shard state (via the node's capture hook, which
annotates waiters with their ingress origin), diffs it against what each
replica last acknowledged, and ships per-context **delta frames** with
monotonically increasing sequence numbers over the node's
:class:`~repro.cluster.link.PeerLink`\\ s; a periodic full snapshot per
stream bounds divergence (anti-entropy), and any gap the replica reports
is repaired the same way.  The pump also *is* the background healing
pass: after a membership change the successor list is recomputed, new
``(context, replica)`` streams start unsynced, and the queue of unsynced
streams (``repl.healing_queue``) drains by shipping snapshots until the
context is back at full replication factor.

Promotion — the node calls :meth:`ReplicationManager.promote` when ring
reassignment activates a context for which the store holds replicated
state: the shard is rebuilt through
:meth:`~repro.dv.shard.ContextShard.restore_repl_state` (waiters
re-registered and their re-simulations relaunched, in-flight progress
resumed, latency EMA seeded), proxies are registered so ready
notifications route back out through each waiter's ingress node, and
files that already landed on the shared PFS are acknowledged
immediately.  The blocked client sees its ready arrive — no error, no
retry, no reconnect.

``frame_hook`` exists for the fault-injection harness: it sees every
outgoing frame and may ``drop`` it (models loss — the sequence gap
forces a resync), ``dup`` it (the replica must ignore the duplicate), or
delay inside the hook (replication lag grows and the ``repl.lag_seconds``
gauge shows it).
"""

from __future__ import annotations

import json
import threading
import time
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.core.errors import DVConnectionLost, SimFSError

__all__ = [
    "diff_state",
    "apply_delta",
    "ReplicaStore",
    "ReplicationManager",
]

#: Keys of a replication state dict that hold *sets* represented as
#: sorted lists (diffed as add/remove), vs. scalars replaced wholesale.
_SET_KEYS = ("clients", "waiters", "resident")
_SCALAR_KEYS = ("alpha", "alpha_count", "sims")


def _as_tuple(value) -> tuple:
    """Hashable form of a state-list entry (waiters arrive as lists)."""
    return tuple(value) if isinstance(value, list) else (value,)


def diff_state(old: dict, new: dict) -> dict | None:
    """Delta turning ``old`` into ``new`` (None when identical).

    Set-like keys diff to ``<key>_add`` / ``<key>_del`` lists; scalar
    keys are replaced when changed.  ``apply_delta(old, diff) == new``.
    """
    delta: dict = {}
    for key in _SET_KEYS:
        old_items = {_as_tuple(v): v for v in old.get(key, ())}
        new_items = {_as_tuple(v): v for v in new.get(key, ())}
        added = [new_items[k] for k in new_items if k not in old_items]
        removed = [old_items[k] for k in old_items if k not in new_items]
        if added:
            delta[f"{key}_add"] = sorted(added)
        if removed:
            delta[f"{key}_del"] = sorted(removed)
    for key in _SCALAR_KEYS:
        if old.get(key) != new.get(key):
            delta[key] = new.get(key)
    return delta or None


def apply_delta(state: dict, delta: dict) -> dict:
    """Return a new state dict with ``delta`` folded into ``state``."""
    result = {key: value for key, value in state.items()}
    for key in _SET_KEYS:
        add = delta.get(f"{key}_add")
        remove = delta.get(f"{key}_del")
        if add is None and remove is None:
            continue
        items = {_as_tuple(v): v for v in result.get(key, ())}
        for value in remove or ():
            items.pop(_as_tuple(value), None)
        for value in add or ():
            items[_as_tuple(value)] = value
        result[key] = sorted(items.values())
    for key in _SCALAR_KEYS:
        if key in delta:
            result[key] = delta[key]
    return result


@dataclass
class _ReplicaRecord:
    """Replica-side stream position + state for one context."""

    src: str
    epoch: int
    seq: int
    state: dict
    received_at: float


class ReplicaStore:
    """Replica half: replicated context state plus acceptance rules."""

    def __init__(self) -> None:
        self._records: dict[str, _ReplicaRecord] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    def receive(
        self,
        frame: dict,
        local_epoch: int,
        local_owner: str | None,
        self_is_owner: bool,
        now: float | None = None,
    ) -> dict:
        """Apply one replication frame; returns the reply payload.

        ``local_epoch``/``local_owner`` describe the receiver's current
        ring view of the frame's context; ``self_is_owner`` is True when
        the receiver itself actively owns it (promoted).  Replies:
        ``{"ok": True}`` applied (or duplicate ignored), ``{"resync":
        True}`` sequence gap — send a snapshot, ``{"fenced": True,
        "epoch": e}`` the sender is not the owner in the receiver's ring
        and must stand down.

        The fence is evaluated afresh on every frame against the
        receiver's *own* ring — ring epochs are per-node counters and are
        never compared across nodes (two nodes with identical membership
        can sit at different epochs after a staggered bring-up).  A fence
        is therefore allowed to be wrong transiently: if the receiver's
        ring is the stale side, the sender's retry succeeds as soon as
        membership converges here.
        """
        context = frame.get("context")
        sender = frame.get("from")
        epoch = int(frame.get("epoch", 0))
        seq = int(frame.get("seq", 0))
        kind = frame.get("kind")
        if not isinstance(context, str) or not isinstance(sender, str):
            return {"resync": True}
        if self_is_owner or local_owner != sender:
            # The sender is not this context's owner as far as this node
            # can tell — a deposed owner that has not heard it lost the
            # ring, or a legit owner this node has not yet heard of.
            return {"fenced": True, "epoch": local_epoch}
        now = time.time() if now is None else now
        with self._lock:
            record = self._records.get(context)
            if kind == "snap":
                state = frame.get("state")
                if not isinstance(state, dict):
                    return {"resync": True}
                self._records[context] = _ReplicaRecord(
                    sender, epoch, seq, state, now
                )
                return {"ok": True, "seq": seq}
            if record is None or record.src != sender:
                return {"resync": True}
            if seq <= record.seq:
                return {"ok": True, "seq": record.seq, "duplicate": True}
            if seq != record.seq + 1:
                return {"resync": True}
            delta = frame.get("delta")
            if not isinstance(delta, dict):
                return {"resync": True}
            record.state = apply_delta(record.state, delta)
            record.seq = seq
            record.epoch = epoch
            record.received_at = now
            return {"ok": True, "seq": seq}

    # ------------------------------------------------------------------ #
    def has(self, context: str) -> bool:
        with self._lock:
            return context in self._records

    def take(self, context: str) -> dict | None:
        """Pop the replicated state for promotion (one shot)."""
        with self._lock:
            record = self._records.pop(context, None)
        return record.state if record is not None else None

    def drop(self, context: str) -> None:
        with self._lock:
            self._records.pop(context, None)

    def contexts(self) -> list[str]:
        with self._lock:
            return sorted(self._records)

    def describe(self, now: float | None = None) -> dict:
        """Per-context stream positions (the ``ha`` op's replica view)."""
        now = time.time() if now is None else now
        with self._lock:
            return {
                name: {
                    "src": record.src,
                    "epoch": record.epoch,
                    "seq": record.seq,
                    "age_seconds": round(max(0.0, now - record.received_at), 3),
                    "waiters": len(record.state.get("waiters", ())),
                    "clients": len(record.state.get("clients", ())),
                }
                for name, record in sorted(self._records.items())
            }


@dataclass
class _Stream:
    """Owner-side stream state for one (context, replica) pair."""

    peer_id: str
    context: str
    seq: int = 0
    #: Last state the replica acknowledged (None = snapshot needed).
    acked: dict | None = None
    needs_snapshot: bool = True
    #: True when this stream exists because of a membership change while
    #: the context was already replicated (its first sync is a *heal*).
    healing: bool = False
    last_sync: float = field(default_factory=time.time)
    last_snapshot: float = 0.0


class ReplicationManager:
    """Owner half: the delta pump, healing pass, and promotion."""

    def __init__(
        self,
        node,
        factor: int,
        interval: float = 0.1,
        anti_entropy_interval: float = 5.0,
        frame_hook: Callable[[str, dict], str | None] | None = None,
    ) -> None:
        self.node = node
        self.factor = factor
        self.interval = interval
        self.anti_entropy_interval = anti_entropy_interval
        self.frame_hook = frame_hook
        self.store = ReplicaStore()
        self.last_promotion: dict | None = None
        self._streams: dict[tuple[str, str], _Stream] = {}
        #: Contexts a replica fenced us on → (our ring epoch at the
        #: time, retry deadline).  A fence is a transient stand-down,
        #: not a death sentence: it clears on any local membership
        #: change or after ``fence_retry`` seconds, whichever comes
        #: first.  Safety lives on the receiver, which re-evaluates the
        #: fence against its own ring on every frame — the sender only
        #: backs off to avoid hammering a peer that said no.
        self._fenced: dict[str, tuple[int, float]] = {}
        self.fence_retry = max(10.0 * interval, 0.5)
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        metrics = node.metrics
        self._m_frames = metrics.counter("repl.frames_sent")
        self._m_bytes = metrics.counter("repl.bytes_sent")
        self._m_snapshots = metrics.counter("repl.snapshots_sent")
        self._m_resyncs = metrics.counter("repl.resyncs")
        self._m_fence = metrics.counter("repl.fenced")
        self._m_promotions = metrics.counter("repl.promotions")
        self._m_restored = metrics.counter("repl.waiters_restored")
        self._m_healed = metrics.counter("repl.healed")
        self._m_queue = metrics.gauge("repl.healing_queue")
        self._m_lag_s = metrics.gauge("repl.lag_seconds")
        self._m_lag_b = metrics.gauge("repl.lag_bytes")
        self._m_frames_recv = metrics.counter("repl.frames_received")

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._pump_loop,
            name=f"repl-pump-{self.node.node_id}",
            daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)

    def _pump_loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.pump()
            except Exception:
                # The replication plane must survive any single bad pass.
                pass

    # ------------------------------------------------------------------ #
    # Replica-side entry (the node's ``repl`` op hands frames here)
    # ------------------------------------------------------------------ #
    def receive(self, frame: dict) -> dict:
        context = frame.get("context")
        node = self.node
        with node._lock:
            local_epoch = node.ring.epoch
            local_owner = (
                node.ring.owner(context) if isinstance(context, str) else None
            )
            self_is_owner = (
                local_owner == node.node_id and context in node._active
            )
        self._m_frames_recv.inc()
        return self.store.receive(
            frame, local_epoch=local_epoch, local_owner=local_owner,
            self_is_owner=self_is_owner,
        )

    # ------------------------------------------------------------------ #
    # Healing trigger (the node calls this on every membership change)
    # ------------------------------------------------------------------ #
    def schedule_heal(self) -> None:
        """A membership change happened: new streams created from here on
        are re-replication (healing), not initial bring-up."""
        with self._lock:
            for stream in self._streams.values():
                if stream.needs_snapshot:
                    stream.healing = True
        self._heal_mark = True

    _heal_mark = False

    # ------------------------------------------------------------------ #
    # The pump: capture, diff, ship, heal
    # ------------------------------------------------------------------ #
    def pump(self, now: float | None = None) -> None:
        """One replication pass.  Called periodically by the pump thread;
        tests call it directly for deterministic stepping (``now``
        overrides the wall clock for the fence-retry bookkeeping)."""
        now = time.time() if now is None else now
        node = self.node
        with node._lock:
            epoch = node.ring.epoch
            alive = set(node.table.alive_ids())
            plan: dict[str, list[str]] = {}
            for name in sorted(node._active):
                chain = node.ring.successors(name, self.factor)
                if not chain or chain[0] != node.node_id:
                    continue  # not the owner (racing a reassignment)
                plan[name] = [
                    peer for peer in chain[1:] if peer in alive
                ]
        heal_mark = self._heal_mark
        self._heal_mark = False
        with self._lock:
            # Prune streams for contexts we no longer own or peers that
            # left the replica set; create streams for new pairs.
            wanted = {
                (name, peer) for name, peers in plan.items() for peer in peers
            }
            for key in [k for k in self._streams if k not in wanted]:
                del self._streams[key]
            for name, peers in plan.items():
                for peer in peers:
                    if (name, peer) not in self._streams:
                        self._streams[(name, peer)] = _Stream(
                            peer_id=peer, context=name, healing=heal_mark,
                        )
            # A fenced context stays silent until our ring changes or the
            # retry window lapses; the replica re-judges every attempt
            # against its own ring, so retrying is always safe.
            for name, (fenced_epoch, retry_at) in list(self._fenced.items()):
                if epoch != fenced_epoch or now >= retry_at:
                    del self._fenced[name]
            streams = [
                s for s in self._streams.values()
                if s.context not in self._fenced
            ]
        states: dict[str, dict | None] = {}
        for name in plan:
            if name not in self._fenced:
                states[name] = node._capture_repl(name)
        lag_bytes = 0.0
        for stream in streams:
            state = states.get(stream.context)
            if state is None:
                continue
            lag_bytes += self._ship_stream(stream, state, epoch, now)
        with self._lock:
            pending = [
                s for s in self._streams.values()
                if s.needs_snapshot or s.acked is None
            ]
            self._m_queue.set(len(pending))
            lag = max(
                (now - s.last_sync for s in self._streams.values()),
                default=0.0,
            )
        self._m_lag_s.set(round(lag, 6))
        self._m_lag_b.set(lag_bytes)

    def _ship_stream(
        self, stream: _Stream, state: dict, epoch: int, now: float
    ) -> float:
        """Bring one replica up to date; returns unshipped backlog bytes."""
        snapshot_due = (
            stream.needs_snapshot
            or stream.acked is None
            or now - stream.last_snapshot >= self.anti_entropy_interval
        )
        if snapshot_due:
            frame = {
                "op": "repl", "from": self.node.node_id,
                "context": stream.context, "epoch": epoch,
                "seq": stream.seq + 1, "kind": "snap", "state": state,
            }
        else:
            delta = diff_state(stream.acked, state)
            if delta is None:
                stream.last_sync = now
                return 0.0
            frame = {
                "op": "repl", "from": self.node.node_id,
                "context": stream.context, "epoch": epoch,
                "seq": stream.seq + 1, "kind": "delta", "delta": delta,
            }
        stream.seq += 1
        size = float(len(json.dumps(frame, separators=(",", ":"))))
        reply = self._send_frame(stream.peer_id, frame)
        if reply is None:
            # Unreachable (or dropped by the fault hook): the sequence
            # gap forces a snapshot resync once the peer answers again.
            stream.needs_snapshot = True
            return size
        if reply.get("fenced"):
            # Stand down, but only briefly: the replica judged us against
            # *its* ring, which may simply not have converged yet (a
            # staggered bring-up routinely fences the rightful owner's
            # first frame).  The replica never applied this frame, so the
            # resumed stream must restart from a snapshot.
            self._m_fence.inc()
            stream.needs_snapshot = True
            with self._lock:
                self._fenced[stream.context] = (
                    epoch, now + self.fence_retry
                )
            return 0.0
        if reply.get("resync"):
            self._m_resyncs.inc()
            stream.needs_snapshot = True
            # Retry immediately as a snapshot (one extra round trip, not
            # one extra pump interval).
            snap = {
                "op": "repl", "from": self.node.node_id,
                "context": stream.context, "epoch": epoch,
                "seq": stream.seq + 1, "kind": "snap", "state": state,
            }
            stream.seq += 1
            reply = self._send_frame(stream.peer_id, snap)
            if reply is None or not reply.get("ok"):
                return size
            self._m_snapshots.inc()
            self._mark_synced(stream, state, now, snapshotted=True)
            return 0.0
        if reply.get("ok"):
            if frame["kind"] == "snap":
                self._m_snapshots.inc()
            self._mark_synced(
                stream, state, now, snapshotted=frame["kind"] == "snap"
            )
            return 0.0
        return size

    def _mark_synced(
        self, stream: _Stream, state: dict, now: float, snapshotted: bool
    ) -> None:
        first_sync = stream.needs_snapshot or stream.acked is None
        stream.acked = state
        stream.last_sync = now
        if snapshotted:
            stream.last_snapshot = now
            stream.needs_snapshot = False
        if first_sync and stream.healing:
            stream.healing = False
            self._m_healed.inc()

    def _send_frame(self, peer_id: str, frame: dict) -> dict | None:
        # Head-sampled trace context per frame: sampled frames show up as
        # ``op.repl`` spans on the replica, tying replication lag into
        # the same trace plane as client traffic.
        obs = getattr(getattr(self.node, "server", None), "obs", None)
        if obs is not None:
            tc = obs.start_trace()
            if tc.sampled:
                frame = dict(frame, tc=tc.to_wire())
        action = self.frame_hook(peer_id, frame) if self.frame_hook else None
        if action == "drop":
            return None
        try:
            link = self.node._link_to(peer_id)
            if action == "dup":
                link.call(dict(frame), timeout=self.node.rpc_timeout)
            reply = link.call(frame, timeout=self.node.rpc_timeout)
        except (DVConnectionLost, SimFSError, OSError):
            return None
        self._m_frames.inc()
        self._m_bytes.inc(len(json.dumps(frame, separators=(",", ":"))))
        return reply

    # ------------------------------------------------------------------ #
    # Promotion
    # ------------------------------------------------------------------ #
    def promote(self, context_name: str) -> int:
        """This node just became owner of a context it held replica state
        for: rebuild the shard from that state (hot failover).  Returns
        the number of waiters restored (0 on a cold activation)."""
        state = self.store.take(context_name)
        if state is None:
            return 0
        node = self.node
        waiters = [
            entry for entry in state.get("waiters", ()) if len(entry) >= 2
        ]
        node._register_waiter_origins(waiters)
        try:
            shard = node.server.coordinator.shard(context_name)
        except SimFSError:
            return 0
        # The shard's clock is the server's (monotonic) clock, not wall
        # time — mixing them trips the shard's time-went-backwards guard.
        ready = shard.restore_repl_state(state, node.server._clock.now())
        for notification in ready:
            node.server._push_ready(notification)
        self._m_promotions.inc()
        if waiters:
            self._m_restored.inc(len(waiters))
        node.server.obs.journal(
            "ha.promote", context=context_name,
            restored_waiters=len(waiters),
            resumed_sims=len(state.get("sims", ())),
        )
        self.last_promotion = {
            "context": context_name,
            "at": time.time(),
            "restored_waiters": len(waiters),
            "resumed_sims": len(state.get("sims", ())),
        }
        return len(waiters)

    # ------------------------------------------------------------------ #
    # Introspection (the ``ha`` op / simfs-ctl ha-status)
    # ------------------------------------------------------------------ #
    def describe(self) -> dict:
        node = self.node
        now = time.time()
        with node._lock:
            contexts = sorted(node._specs)
            chains = {
                name: node.ring.successors(name, self.factor)
                for name in contexts
            }
        with self._lock:
            streams = {
                (s.context, s.peer_id): s for s in self._streams.values()
            }
            fenced = sorted(self._fenced)
            queue = sum(
                1 for s in streams.values()
                if s.needs_snapshot or s.acked is None
            )
        view: dict[str, dict] = {}
        for name in contexts:
            chain = chains.get(name, [])
            replicas = []
            for peer in chain[1:]:
                stream = streams.get((name, peer))
                replicas.append({
                    "node": peer,
                    "synced": bool(
                        stream is not None
                        and stream.acked is not None
                        and not stream.needs_snapshot
                    ),
                    "seq": stream.seq if stream is not None else 0,
                    "lag_seconds": (
                        round(max(0.0, now - stream.last_sync), 3)
                        if stream is not None else None
                    ),
                })
            view[name] = {
                "owner": chain[0] if chain else None,
                "replicas": replicas,
                "role": (
                    "owner" if chain and chain[0] == node.node_id
                    else "replica" if node.node_id in chain else None
                ),
            }
        return {
            "factor": self.factor,
            "contexts": view,
            "replica_of": self.store.describe(now),
            "fenced": fenced,
            "healing_queue": queue,
            "last_promotion": self.last_promotion,
        }
