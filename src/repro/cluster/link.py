"""Peer-to-peer link: one DV daemon talking to another's wire port.

A :class:`PeerLink` is the client half of a node-to-node connection.  It
speaks the same negotiated wire protocol as DVLib (binary codec by
default), identifies itself with a ``node:<id>`` client id, and carries
the three cluster ops:

* request/reply — ``fwd`` → ``fwd_reply`` (gateway forwarding) and
  ``gossip`` → ``reply`` (membership exchange), matched by ``req``;
* unsolicited — incoming ``fwd`` frames *from* the peer (the owner
  routing a ``ready`` notification back through this link's server side)
  are handed to the ``on_fwd`` callback.

A dead link fails every outstanding call with
:class:`~repro.core.errors.DVConnectionLost` and fires ``on_down`` once;
the owning :class:`~repro.cluster.node.ClusterNode` treats that as hard
evidence against the peer and re-dials lazily if it ever comes back.

Maintenance note: the dial/handshake/listener bootstrap here mirrors
``TcpConnection._connect``/``_listen`` in :mod:`repro.client.dvlib` —
a wire-protocol change (e.g. a new hello field) must land in both.
"""

from __future__ import annotations

import itertools
import queue
import random
import socket
import threading
import time
from collections.abc import Callable

from repro.core.errors import DVConnectionLost, SimFSError
from repro.dv.protocol import (
    CODEC_BINARY,
    CODEC_LEGACY,
    PROTOCOL_VERSION,
    SUPPORTED_CODECS,
    MessageReader,
    encode_frame,
    send_message,
)

__all__ = ["DialBackoff", "PeerLink", "PeerTimeout"]


class DialBackoff:
    """Capped exponential backoff with jitter for peer re-dials.

    A dead peer used to be re-dialed in a tight loop: every gossip round
    and every ``_link_to`` miss paid a fresh connect attempt (instant
    ``ECONNREFUSED`` on a crashed-but-routable host, a full connect
    timeout on a black-holed one).  This gate spaces attempts out per
    peer — delays double from ``base`` up to ``cap``, with up to
    ``jitter`` fractional random extension so a cluster of survivors does
    not re-dial a rebooting peer in lockstep — and forgets a peer
    entirely on the first successful dial.

    Thread-safe; ``now`` parameters exist for deterministic tests.
    """

    def __init__(
        self,
        base: float = 0.5,
        cap: float = 30.0,
        jitter: float = 0.5,
        seed: int | None = None,
    ) -> None:
        self.base = base
        self.cap = cap
        self.jitter = jitter
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        # peer_id -> (consecutive failures, earliest next attempt)
        self._state: dict[str, tuple[int, float]] = {}

    def ready(self, peer_id: str, now: float | None = None) -> bool:
        """May we dial this peer now?"""
        now = time.monotonic() if now is None else now
        with self._lock:
            entry = self._state.get(peer_id)
            return entry is None or now >= entry[1]

    def failures(self, peer_id: str) -> int:
        with self._lock:
            entry = self._state.get(peer_id)
            return entry[0] if entry is not None else 0

    def failed(self, peer_id: str, now: float | None = None) -> float:
        """Record a failed dial; returns the delay until the next try."""
        now = time.monotonic() if now is None else now
        with self._lock:
            fails = self._state.get(peer_id, (0, 0.0))[0] + 1
            delay = min(self.cap, self.base * (1 << min(fails - 1, 30)))
            delay *= 1.0 + self.jitter * self._rng.random()
            self._state[peer_id] = (fails, now + delay)
            return delay

    def succeeded(self, peer_id: str) -> None:
        """A dial got through: drop all backoff state for the peer."""
        with self._lock:
            self._state.pop(peer_id, None)


class PeerTimeout(DVConnectionLost):
    """The peer did not answer within the RPC timeout.

    Distinct from a torn connection on purpose: a slow peer (workers
    parked on PFS I/O) is *not* hard death evidence — callers feed this
    into the graded ``heartbeat_missed`` path instead of an instant
    ``link_failed`` verdict, so a stall cannot split ring ownership."""


class PeerLink:
    """Outbound connection from one cluster node to a peer daemon."""

    def __init__(
        self,
        self_id: str,
        peer_id: str,
        host: str,
        port: int,
        on_fwd: Callable[[dict], None] | None = None,
        on_down: Callable[[str], None] | None = None,
        connect_timeout: float = 5.0,
        codec: str = CODEC_BINARY,
        path: str | None = None,
    ) -> None:
        self.self_id = self_id
        self.peer_id = peer_id
        self._on_fwd = on_fwd
        self._on_down = on_down
        self._reqs = itertools.count(1)
        self._waiters: dict[int, queue.Queue] = {}
        self._lock = threading.Lock()
        self._send_lock = threading.Lock()
        self._closed = False
        self.codec = CODEC_LEGACY
        try:
            if path is not None:
                # Same-host peering (multi-core executors): a Unix-domain
                # stream socket carries the identical wire protocol.
                self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                self._sock.settimeout(connect_timeout)
                self._sock.connect(path)
            else:
                self._sock = socket.create_connection(
                    (host, port), timeout=connect_timeout
                )
        except OSError as exc:
            where = path if path is not None else f"{host}:{port}"
            raise DVConnectionLost(
                f"cannot reach peer {peer_id!r} at {where}: {exc}"
            ) from exc
        self._sock.settimeout(None)
        try:
            self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass
        hello = {"op": "hello", "req": 0, "client_id": f"node:{self_id}"}
        if codec != CODEC_LEGACY:
            hello["vers"] = PROTOCOL_VERSION
            hello["codec"] = codec
            # Peers propagate trace contexts on forwarded frames; asking
            # for tracing here lets the peer send traced binary kinds back.
            hello["trace"] = 1
        try:
            send_message(self._sock, hello)
            reader = MessageReader(self._sock)
            reply = reader.read_message()
        except (OSError, SimFSError) as exc:
            self._abandon()
            raise DVConnectionLost(
                f"peer {peer_id!r} handshake failed: {exc}"
            ) from exc
        if reply is None or reply.get("error"):
            self._abandon()
            raise DVConnectionLost(
                f"peer {peer_id!r} rejected the hello: {reply!r}"
            )
        granted = reply.get("codec", CODEC_LEGACY)
        if granted in SUPPORTED_CODECS and granted != CODEC_LEGACY:
            self.codec = granted
            reader.set_codec(granted)
        self._reader = reader
        self._listener = threading.Thread(
            target=self._listen,
            name=f"peerlink-{self_id}-{peer_id}",
            daemon=True,
        )
        self._listener.start()

    # ------------------------------------------------------------------ #
    def _listen(self) -> None:
        try:
            while not self._closed:
                message = self._reader.read_message()
                if message is None:
                    break
                op = message.get("op")
                if op == "fwd":
                    # Unsolicited: the peer routing a notification to a
                    # client that entered the cluster through this node.
                    if self._on_fwd is not None:
                        try:
                            self._on_fwd(message)
                        except Exception:
                            pass  # routing must not kill the link
                elif "req" in message:
                    with self._lock:
                        waiter = self._waiters.pop(message["req"], None)
                    if waiter is not None:
                        waiter.put(message)
        except (SimFSError, OSError):
            pass
        self._fail_outstanding()
        if not self._closed and self._on_down is not None:
            self._on_down(self.peer_id)

    def _fail_outstanding(self) -> None:
        with self._lock:
            waiters = list(self._waiters.values())
            self._waiters.clear()
        for waiter in waiters:
            waiter.put(None)

    # ------------------------------------------------------------------ #
    def call(self, message: dict, timeout: float = 10.0) -> dict:
        """Request/reply round trip; raises :class:`DVConnectionLost` when
        the link dies or the peer stops answering."""
        if self._closed:
            raise DVConnectionLost(f"link to {self.peer_id!r} is closed")
        req = next(self._reqs)
        message = dict(message)
        message["req"] = req
        waiter: queue.Queue = queue.Queue(maxsize=1)
        with self._lock:
            self._waiters[req] = waiter
        try:
            self.send(message)
            reply = waiter.get(timeout=timeout)
        except queue.Empty:
            raise PeerTimeout(
                f"peer {self.peer_id!r} did not answer within {timeout}s"
            ) from None
        finally:
            with self._lock:
                self._waiters.pop(req, None)
        if reply is None:
            raise DVConnectionLost(f"link to {self.peer_id!r} died mid-call")
        return reply

    def send(self, message: dict) -> None:
        """One-way frame (no reply expected)."""
        data = encode_frame(message, self.codec)
        try:
            with self._send_lock:
                self._sock.sendall(data)
        except OSError as exc:
            raise DVConnectionLost(
                f"link to {self.peer_id!r} died on send: {exc}"
            ) from exc

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._abandon()

    def _abandon(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass
