"""Consistent-hash ring: ``context_name`` → owning DV daemon.

The cluster tier spreads simulation contexts across cooperating daemons
by consistent hashing with virtual nodes: every node is hashed onto the
ring at ``vnodes`` points, and a context is owned by the first node
clockwise from the hash of its name.  Virtual nodes smooth the split
(with 64 vnodes the largest share is typically within ~20% of fair), and
consistency keeps reassignment minimal — when a node dies, only the
contexts it owned move, every other mapping is untouched.

Hashes are MD5-derived, **not** Python's ``hash()``: the latter is
per-process salted, and the whole point of the ring is that every
daemon, every client, and the DES model compute the same owner for the
same membership without talking to each other.  The ``epoch`` counter
increments on every membership change; peers compare epochs during
gossip to spot stale views cheaply.

**Placement pins** overlay the hash: live migration moves a context to
a node the hash would not pick, so the ring keeps an explicit
``context → node`` override map.  ``owner()`` honours a pin whenever the
pinned node is alive; ``successors()`` keeps the pinned owner at the
head of the preference list and fills the rest by the normal hash walk,
so replication and failover stay anchored to the ring even for migrated
contexts.  A pin whose target leaves the ring dissolves — ownership
falls back to pure hashing, which is exactly the pre-migration owner
chain the failover paths already know how to handle.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right

from repro.core.errors import InvalidArgumentError

__all__ = ["HashRing"]


def _hash64(data: str) -> int:
    """Stable 64-bit hash point (first 8 bytes of MD5)."""
    return int.from_bytes(
        hashlib.md5(data.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """Consistent-hash ring with virtual nodes.

    Not thread-safe by itself — the cluster node and the DES model
    serialize membership changes under their own locks.
    """

    def __init__(self, vnodes: int = 64) -> None:
        if vnodes < 1:
            raise InvalidArgumentError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self.epoch = 0
        self._nodes: set[str] = set()
        self._points: list[tuple[int, str]] = []  # sorted (hash, node_id)
        self._pins: dict[str, str] = {}  # context_name -> pinned node_id

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def nodes(self) -> list[str]:
        return sorted(self._nodes)

    def add_node(self, node_id: str) -> bool:
        """Add a node; returns True when the membership actually changed."""
        if node_id in self._nodes:
            return False
        self._nodes.add(node_id)
        for idx in range(self.vnodes):
            point = (_hash64(f"{node_id}#{idx}"), node_id)
            self._points.insert(bisect_right(self._points, point), point)
        self.epoch += 1
        return True

    def remove_node(self, node_id: str) -> bool:
        """Remove a node; returns True when the membership actually changed."""
        if node_id not in self._nodes:
            return False
        self._nodes.discard(node_id)
        self._points = [p for p in self._points if p[1] != node_id]
        for name in [n for n, pin in self._pins.items() if pin == node_id]:
            del self._pins[name]
        self.epoch += 1
        return True

    def pin(self, context_name: str, node_id: str) -> bool:
        """Pin ``context_name`` to ``node_id`` (a migration placement
        override); returns True when the placement actually changed."""
        if node_id not in self._nodes:
            raise InvalidArgumentError(
                f"cannot pin {context_name!r} to unknown node {node_id!r}"
            )
        if self._pins.get(context_name) == node_id:
            return False
        self._pins[context_name] = node_id
        self.epoch += 1
        return True

    def unpin(self, context_name: str) -> bool:
        """Drop a pin; ownership reverts to pure hashing."""
        if context_name not in self._pins:
            return False
        del self._pins[context_name]
        self.epoch += 1
        return True

    def pins(self) -> dict[str, str]:
        return dict(self._pins)

    def owner(self, context_name: str) -> str | None:
        """The node owning ``context_name`` (None on an empty ring)."""
        pinned = self._pins.get(context_name)
        if pinned is not None and pinned in self._nodes:
            return pinned
        if not self._points:
            return None
        point = _hash64(context_name)
        idx = bisect_right(self._points, (point, "￿"))
        if idx == len(self._points):
            idx = 0  # wrap around
        return self._points[idx][1]

    def successors(self, context_name: str, count: int) -> list[str]:
        """The context's preference list: the owner plus the next distinct
        nodes clockwise, up to ``count`` entries (fewer when the ring is
        smaller).  ``successors(name, n)[0] == owner(name)``; replication
        places a context's state on exactly this list, so that when the
        owner dies the ring's *new* owner is always the first replica."""
        if count < 1:
            raise InvalidArgumentError(f"count must be >= 1, got {count}")
        if not self._points:
            return []
        chosen: list[str] = []
        pinned = self._pins.get(context_name)
        if pinned is not None and pinned in self._nodes:
            chosen.append(pinned)
        point = _hash64(context_name)
        start = bisect_right(self._points, (point, "￿"))
        for offset in range(len(self._points)):
            if len(chosen) == count:
                break
            node_id = self._points[(start + offset) % len(self._points)][1]
            if node_id not in chosen:
                chosen.append(node_id)
        return chosen

    def assignment(self, context_names: list[str]) -> dict[str, str]:
        """Bulk ``owner`` lookup: ``{context_name: node_id}``."""
        return {name: self.owner(name) for name in context_names}
