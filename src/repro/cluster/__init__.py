"""DV cluster tier: a consistent-hash ring of cooperating daemons.

The single-daemon DV (:mod:`repro.dv`) owns every context of an
installation; this package spreads contexts across peers:

* :mod:`repro.cluster.ring` — :class:`HashRing`, the deterministic
  ``context_name`` → node mapping every participant computes locally;
* :mod:`repro.cluster.membership` — :class:`PeerTable`, the gossiped
  generation-numbered peer view behind failure detection;
* :mod:`repro.cluster.link` — :class:`PeerLink`, node-to-node RPC over
  the ordinary DV wire protocol (``fwd``/``fwd_reply``/``gossip`` ops);
* :mod:`repro.cluster.node` — :class:`ClusterNode`, a DVServer plus the
  gateway-forwarding, ready-routing and failover machinery;
* :mod:`repro.cluster.replication` — the HA tier: owner→replica state
  streaming with epoch fencing, hot promotion and background healing;
* :mod:`repro.cluster.migrate` — :class:`MigrationManager`, live
  context migration (pre-copy, cutover freeze, pinned placement);
* :mod:`repro.cluster.autoscaler` — the decentralized metrics-driven
  policy deciding when to migrate, grow, or shrink;
* :mod:`repro.cluster.client` — :class:`ClusterConnection`, the
  one-hop cluster-aware DVLib connection.

The DES twin lives in :class:`repro.des.components.VirtualCluster`,
which drives the same :class:`HashRing`/:class:`PeerTable` logic on the
virtual clock for node-count sweeps and failure-schedule experiments.
"""

from repro.cluster.autoscaler import (
    Autoscaler,
    AutoscalerPolicy,
    Migrate,
    NodeLoad,
    ScaleDown,
    ScaleUp,
)
from repro.cluster.client import ClusterConnection
from repro.cluster.link import DialBackoff, PeerLink
from repro.cluster.membership import PeerInfo, PeerTable
from repro.cluster.migrate import MigrationManager
from repro.cluster.node import ClusterNode, ContextSpec, parse_peer
from repro.cluster.replication import ReplicaStore, ReplicationManager
from repro.cluster.ring import HashRing

__all__ = [
    "HashRing",
    "PeerInfo",
    "PeerTable",
    "PeerLink",
    "DialBackoff",
    "ClusterNode",
    "ContextSpec",
    "parse_peer",
    "ClusterConnection",
    "ReplicaStore",
    "ReplicationManager",
    "MigrationManager",
    "Autoscaler",
    "AutoscalerPolicy",
    "NodeLoad",
    "Migrate",
    "ScaleUp",
    "ScaleDown",
]
