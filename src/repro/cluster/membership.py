"""Cluster membership: the peer table behind the gossip plane.

A :class:`PeerTable` is the pure state machine both deployments drive —
the TCP cluster node feeds it wall-clock heartbeat outcomes and gossiped
views, the DES model feeds it virtual-time failure schedules.  It holds
no sockets and no threads, which is what makes the failover logic
testable without either.

Every peer entry carries a **generation**: a number the node picks at
startup and bumps on every restart.  Merge rules during gossip:

* an unknown node is added (joins propagate epidemically);
* a higher generation always wins (a restarted node supersedes every
  rumor about its previous life);
* at equal generation, *dead beats alive* — a death rumor spreads and
  sticks until the node itself comes back with a new generation.

Liveness is heartbeat-driven: ``heartbeat_missed`` counts consecutive
failures and declares the peer dead at ``suspect_after``;
``link_failed`` is the fast path for hard evidence (a TCP reset from a
forwarding attempt) and kills the entry immediately.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["PeerInfo", "PeerTable"]


@dataclass
class PeerInfo:
    """One row of the peer table."""

    node_id: str
    host: str
    port: int
    generation: int = 1
    alive: bool = True
    last_seen: float = 0.0
    missed: int = 0
    #: The node's bulk data-plane port (0 = no data plane advertised).
    data_port: int = 0

    def wire(self) -> dict:
        """JSON form carried inside ``gossip`` frames."""
        return {
            "id": self.node_id, "host": self.host, "port": self.port,
            "gen": self.generation, "alive": self.alive,
            "data": self.data_port,
        }


@dataclass
class PeerTable:
    """Membership view of one node (itself included, always alive)."""

    self_id: str
    self_host: str = "127.0.0.1"
    self_port: int = 0
    generation: int = 1
    suspect_after: int = 3
    peers: dict[str, PeerInfo] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.peers[self.self_id] = PeerInfo(
            self.self_id, self.self_host, self.self_port, self.generation
        )

    # ------------------------------------------------------------------ #
    def upsert(
        self, node_id: str, host: str, port: int,
        generation: int = 1, now: float = 0.0, data_port: int = 0,
    ) -> bool:
        """Add or refresh a peer (seed configuration, gossip discovery)."""
        known = self.peers.get(node_id)
        if known is None:
            self.peers[node_id] = PeerInfo(
                node_id, host, port, generation, last_seen=now,
                data_port=data_port,
            )
            return True
        if generation > known.generation:
            self.peers[node_id] = PeerInfo(
                node_id, host, port, generation, last_seen=now,
                data_port=data_port,
            )
            return True
        if data_port and not known.data_port:
            known.data_port = data_port
        return False

    def merge_view(self, view: list[dict], now: float = 0.0) -> bool:
        """Fold a gossiped peer list into this table; True if anything
        changed that affects the ring (joins, deaths, resurrections)."""
        changed = False
        for entry in view:
            node_id = entry.get("id")
            if not isinstance(node_id, str) or node_id == self.self_id:
                continue  # nobody outranks a node about itself
            generation = int(entry.get("gen", 1))
            alive = bool(entry.get("alive", True))
            known = self.peers.get(node_id)
            if known is None:
                self.peers[node_id] = PeerInfo(
                    node_id, str(entry.get("host", "")), int(entry.get("port", 0)),
                    generation, alive=alive, last_seen=now,
                    data_port=int(entry.get("data", 0)),
                )
                changed = True
            elif generation > known.generation:
                known.generation = generation
                known.host = str(entry.get("host", known.host))
                known.port = int(entry.get("port", known.port))
                known.data_port = int(entry.get("data", known.data_port))
                if known.alive != alive:
                    known.alive = alive
                    changed = True
                known.missed = 0
                known.last_seen = now
            elif generation == known.generation:
                if not known.data_port and entry.get("data"):
                    # Same-generation refinement: learn a peer's data port
                    # from gossip (a seed entry predates the peer binding
                    # its data plane).
                    known.data_port = int(entry.get("data", 0))
                if known.alive and not alive:
                    known.alive = False  # death rumor sticks
                    changed = True
        return changed

    def view(self) -> list[dict]:
        """This table's wire form (the ``view`` field of ``gossip``)."""
        return [peer.wire() for peer in self.peers.values()]

    # ------------------------------------------------------------------ #
    def heartbeat_ok(self, node_id: str, now: float = 0.0) -> None:
        peer = self.peers.get(node_id)
        if peer is not None:
            peer.missed = 0
            peer.last_seen = now

    def heartbeat_missed(self, node_id: str) -> bool:
        """Record one missed heartbeat; True when this crossed the
        suspicion threshold and the peer is now considered dead."""
        peer = self.peers.get(node_id)
        if peer is None or not peer.alive:
            return False
        peer.missed += 1
        if peer.missed >= self.suspect_after:
            peer.alive = False
            return True
        return False

    def link_failed(self, node_id: str) -> bool:
        """Hard evidence (connection reset mid-RPC): declare dead now."""
        peer = self.peers.get(node_id)
        if peer is None or not peer.alive or node_id == self.self_id:
            return False
        peer.alive = False
        return True

    def mark_alive(self, node_id: str, now: float = 0.0) -> bool:
        """Direct contact with a previously dead peer (same generation)."""
        peer = self.peers.get(node_id)
        if peer is None or peer.alive:
            return False
        peer.alive = True
        peer.missed = 0
        peer.last_seen = now
        return True

    # ------------------------------------------------------------------ #
    def alive_ids(self) -> list[str]:
        return sorted(p.node_id for p in self.peers.values() if p.alive)

    def alive_peers(self) -> list[PeerInfo]:
        """Live peers excluding this node (the heartbeat targets)."""
        return [
            p for p in self.peers.values()
            if p.alive and p.node_id != self.self_id
        ]

    def get(self, node_id: str) -> PeerInfo | None:
        return self.peers.get(node_id)
