"""ClusterNode: a DV daemon cooperating in a consistent-hash ring.

One :class:`ClusterNode` wraps one :class:`~repro.dv.server.DVServer`
and adds the three cluster planes:

**Ownership** — every node knows the full context catalog
(:meth:`add_context` is called with the same specs on every node) but
*activates* only the contexts the :class:`~repro.cluster.ring.HashRing`
assigns to it: activation registers the shard with the coordinator and
scans the (PFS-shared) storage area; deactivation unregisters it.  When
membership changes, the ring diff drives activate/deactivate on every
node independently — no coordinator election, no migration protocol,
just convergent hashing.

**Gateway forwarding** — any node accepts any client.  An op naming a
context this node does not own is wrapped in a ``fwd`` frame and shipped
to the owner over a :class:`~repro.cluster.link.PeerLink`; the owner
executes it against its shard on behalf of the client and answers with
``fwd_reply``.  ``ready`` notifications for such proxied clients travel
the reverse path: the owner remembers which peer each proxied client
entered through and pushes a one-way ``fwd(ready)`` down that peer
link's server side; the ingress node delivers it to the real client
connection.  Clients that want one-hop steady state use
:class:`~repro.cluster.client.ClusterConnection` instead and talk to
owners directly.

**Membership/failover** — a heartbeat thread gossips the
:class:`~repro.cluster.membership.PeerTable` with every live peer; a
peer is declared dead after ``suspect_after`` missed rounds, or
immediately when a forwarding RPC hits a torn connection.  Death removes
the node from the ring, the survivors activate the contexts they
inherit, and the ingress nodes **replay** every forwarded open still
waiting on the dead owner against the new one — blocked clients are
re-queued instead of hung.  A node losing ownership while alive does the
same replay for its own captured waiters before unregistering the shard.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import threading
import time
from dataclasses import dataclass, field

from repro.cluster.autoscaler import Autoscaler
from repro.cluster.link import DialBackoff, PeerLink, PeerTimeout
from repro.cluster.membership import PeerTable
from repro.cluster.migrate import MigrationManager
from repro.cluster.replication import ReplicationManager
from repro.cluster.ring import HashRing
from repro.core.context import SimulationContext
from repro.core.errors import (
    DETAIL_ALREADY_ATTACHED,
    DETAIL_NOT_ATTACHED,
    DVConnectionLost,
    ErrorCode,
    FileNotInContextError,
    InvalidArgumentError,
    ProtocolError,
    SimFSError,
)
from repro.data.client import DataClient
from repro.data.server import DataServer
from repro.dv.coordinator import Notification
from repro.dv.protocol import OP_FWD, OP_GOSSIP, make_fwd, unwrap_fwd
from repro.dv.server import _ROUTABLE_OPS, DVServer

__all__ = ["ContextSpec", "ClusterNode", "parse_peer"]


def parse_peer(spec: str) -> tuple[str | None, str, int]:
    """Parse ``id@host:port`` (ring membership known up front) or
    ``host:port`` (node id learned from the first gossip exchange)."""
    node_id: str | None = None
    addr = spec
    if "@" in spec:
        node_id, addr = spec.split("@", 1)
    host, _, port = addr.rpartition(":")
    if not host or not port.isdigit():
        raise InvalidArgumentError(
            f"peer spec {spec!r} is not [id@]host:port"
        )
    return node_id, host, int(port)


@dataclass
class ContextSpec:
    """Catalog entry: how to activate one context on this node."""

    context: SimulationContext
    output_dir: str
    restart_dir: str
    alpha_delay: float = 0.0
    tau_delay: float = 0.0


@dataclass
class _ProxyClient:
    """Owner-side stand-in for a client connected at a peer gateway.

    Quacks like the server's ``_ClientConn`` where op handlers care
    (``client_id``/``contexts``); ``conn`` is the peer's server-side
    connection, the channel ``ready`` notifications route back through.
    """

    client_id: str
    origin: str | None = None
    peer_client_id: str | None = None
    conn: object | None = None
    contexts: set[str] = field(default_factory=set)


class ClusterNode:
    """One DV daemon in a cluster of cooperating peers."""

    def __init__(
        self,
        node_id: str,
        host: str = "127.0.0.1",
        port: int = 0,
        peers: tuple[str, ...] | list[str] = (),
        vnodes: int = 16,
        generation: int = 1,
        heartbeat_interval: float = 0.5,
        suspect_after: int = 3,
        rpc_timeout: float = 10.0,
        mode: str = "selector",
        workers: int | None = None,
        engine_workers: int | None = None,
        data_port: int = 0,
        data_link_rate: float | None = None,
        replication_factor: int = 1,
        repl_interval: float = 0.1,
        anti_entropy_interval: float = 5.0,
        repl_frame_hook=None,
        autoscale_policy=None,
        autoscale_interval: float = 2.0,
    ) -> None:
        if replication_factor < 1:
            raise InvalidArgumentError(
                f"replication_factor must be >= 1, got {replication_factor}"
            )
        if replication_factor > 1 and engine_workers is not None and engine_workers > 1:
            # The executor pool's shards live in other processes; the
            # replication pump cannot snapshot them from here.  HA is a
            # single-coordinator feature for now.
            raise InvalidArgumentError(
                "replication_factor > 1 is not supported with engine_workers"
            )
        self.node_id = node_id
        self.heartbeat_interval = heartbeat_interval
        self.rpc_timeout = rpc_timeout
        # Cluster nodes need worker headroom beyond the plain daemon's
        # default: a forwarded op parks a worker on a peer round trip,
        # and gossip merges run there too.
        self.server = DVServer(host, port, mode=mode, workers=workers or 4)
        # Spans recorded by this daemon must carry the cluster identity,
        # not the generic "dv", so a merged trace names its hops.
        self.server.obs.node = node_id
        #: Bulk data plane: bound here (so the port is known before the
        #: engine forks and before hellos advertise it), threads started
        #: in :meth:`start`.  Serves every context in the catalog from its
        #: PFS directory; files this node cannot resolve locally are
        #: proxied one hop from the ring owner's data port into a spool.
        self.data = DataServer(
            host, data_port,
            link_rate=data_link_rate,
            metrics=self.server.metrics,
            resolver=self._data_resolve,
            lister=self._data_list,
            upstream=self._data_upstream,
            obs=self.server.obs,
        )
        self._spool: str | None = None
        self._spool_lock = threading.Lock()
        self.server.set_data_endpoint(host, self.data.port)
        #: Multi-core engine (``engine_workers > 1``): contexts this node
        #: owns are served by a shared-nothing executor pool instead of
        #: the node's own coordinator; the node stays the cluster-facing
        #: ingress/gossip front and forwards owned-context ops inward.
        self.engine = None
        if engine_workers is not None and engine_workers > 1:
            from repro.dv.multicore import MultiCoreServer

            self.engine = MultiCoreServer(
                workers=engine_workers,
                accept="none",
                rpc_timeout=rpc_timeout,
                ready_router=self._engine_ready,
                data_endpoint=(host, self.data.port),
            )
        self.metrics = self.server.metrics
        self.ring = HashRing(vnodes)
        self.table = PeerTable(
            node_id, host, port,
            generation=generation, suspect_after=suspect_after,
        )
        #: Serializes membership/ring/activation state.  Never held across
        #: a peer round trip (replays run after release).
        self._lock = threading.RLock()
        self._links: dict[str, PeerLink] = {}
        self._links_lock = threading.Lock()
        self._seeds: list[tuple[str, int]] = []
        self._specs: dict[str, ContextSpec] = {}
        self._active: set[str] = set()
        # Owner-side proxies for clients that entered through a peer.
        self._proxies: dict[str, _ProxyClient] = {}
        # Ingress-side state for this node's own clients: which contexts
        # each reaches through forwarding (and who owned them at attach
        # time), plus which forwarded opens still wait on a ready from
        # which owner.  Ownership changes trigger re-attach/replay.
        self._ingress_ctx: dict[str, dict[str, str]] = {}
        self._pending: dict[tuple[str, str, str], str] = {}
        self._stop = threading.Event()
        self._hb_thread: threading.Thread | None = None
        # Re-dial pacing for unreachable peers: one shared backoff gate
        # covers gossip dead-peer probes and lazy _link_to dials, so a
        # down peer costs a bounded (and jittered) trickle of connect
        # attempts instead of one per round/op.
        self._dial_backoff = DialBackoff(
            base=heartbeat_interval,
            cap=max(heartbeat_interval * 64, 5.0),
        )

        for spec in peers:
            peer_id, peer_host, peer_port = parse_peer(spec)
            if peer_id is None:
                self._seeds.append((peer_host, peer_port))
            elif peer_id != node_id:
                self.table.upsert(peer_id, peer_host, peer_port)

        self._m_fwd_sent = self.metrics.counter("cluster.fwd_sent")
        self._m_fwd_recv = self.metrics.counter("cluster.fwd_received")
        self._m_ready_routed = self.metrics.counter("cluster.ready_routed")
        self._m_gossip = self.metrics.counter("cluster.gossip_rounds")
        self._m_failovers = self.metrics.counter("cluster.failovers")
        self._m_replayed = self.metrics.counter("cluster.replayed_waits")
        self._m_epoch = self.metrics.gauge("cluster.ring_epoch")
        self._m_peers = self.metrics.gauge("cluster.peers_alive")
        self._m_redial = self.metrics.counter("cluster.redial")

        #: HA tier: owner→replica state streaming and hot promotion.
        #: None at factor 1 (the pre-HA single-owner behavior).
        self.repl: ReplicationManager | None = None
        if replication_factor > 1:
            self.repl = ReplicationManager(
                self, replication_factor,
                interval=repl_interval,
                anti_entropy_interval=anti_entropy_interval,
                frame_hook=repl_frame_hook,
            )

        #: Versioned placement pins (context -> (target | None, version)),
        #: the migration overlay on the ring.  Gossip merges them with
        #: higher-version-wins, so every node converges on the same
        #: placement; a ``None`` target is a dissolved pin that must still
        #: outrank the stale pin it replaced.
        self._pin_versions: dict[str, tuple[str | None, int]] = {}
        self._synced_epoch = -1
        #: Live migration protocol, both halves (source and destination).
        self.migration = MigrationManager(self)
        #: Decentralized autoscaler: each node watches its own load plus
        #: the peers' and migrates contexts *it* owns when saturated.
        self.autoscaler: Autoscaler | None = None
        if autoscale_policy is not None:
            self.autoscaler = Autoscaler(
                self, autoscale_policy, interval=autoscale_interval
            )

        self.server.register_op(
            OP_FWD, self._op_fwd, reply_op="fwd_reply", needs_worker=True
        )
        self.server.register_op(OP_GOSSIP, self._op_gossip, needs_worker=True)
        # describe() takes the cluster lock, which activation may hold
        # across a PFS directory scan — never run it on the event loop.
        self.server.register_op("cluster", self._op_cluster, needs_worker=True)
        self.server.register_op("repl", self._op_repl, needs_worker=True)
        self.server.register_op("ha", self._op_ha, needs_worker=True)
        # Migration control/data frames and the load/rebalance probes all
        # take the cluster lock (and migrate crosses the wire) — workers.
        self.server.register_op("migrate", self._op_migrate, needs_worker=True)
        self.server.register_op("load", self._op_load, needs_worker=True)
        self.server.register_op(
            "rebalance", self._op_rebalance, needs_worker=True
        )
        # Observability plane: cluster-wide versions of the daemon's
        # trace/trace_slow ops — merge local spans (and the engine's)
        # with every live peer's, reporting unreachable peers in the
        # payload instead of failing the whole query.
        self.server.register_op(
            "trace", self._op_trace, needs_worker=True, replace=True
        )
        self.server.register_op(
            "trace_slow", self._op_trace_slow, needs_worker=True, replace=True
        )
        self.server.register_op(
            "metrics_text", self._op_metrics_text,
            needs_worker=True, replace=True,
        )
        if self.engine is not None:
            # The real shards live in the pool: a client's `stats` must
            # show the merged executor view, not this node's empty
            # coordinator.
            self.server.register_op(
                "stats", self._op_engine_stats, needs_worker=True, replace=True
            )
        self.server.set_cluster_hooks(
            route_op=self._route_op,
            ready_router=self._ready_router,
            hello_extra=self._hello_extra,
            drop_hook=self._drop_hook,
        )
        with self._lock:
            self._sync_ring()

    # ------------------------------------------------------------------ #
    # Context catalog
    # ------------------------------------------------------------------ #
    def add_context(
        self,
        context: SimulationContext,
        output_dir: str,
        restart_dir: str,
        alpha_delay: float = 0.0,
        tau_delay: float = 0.0,
    ) -> None:
        """Declare a context cluster-wide; activate it here if owned.

        Call with the same catalog on every node — ``output_dir``/
        ``restart_dir`` normally live on the shared PFS, so whichever
        node owns the context finds the same files.
        """
        with self._lock:
            self._specs[context.name] = ContextSpec(
                context, output_dir, restart_dir, alpha_delay, tau_delay
            )
            if self.engine is not None:
                # The pool catalog ships to executors at spawn time, so
                # every context must be declared before start() — inactive
                # until ring ownership says otherwise.
                self.engine.add_context(
                    context, output_dir, restart_dir,
                    alpha_delay=alpha_delay, tau_delay=tau_delay,
                    active=False,
                )
            if self.ring.owner(context.name) == self.node_id:
                self._activate(context.name)

    def owner_of(self, context_name: str) -> str | None:
        with self._lock:
            return self.ring.owner(context_name)

    def active_contexts(self) -> list[str]:
        with self._lock:
            return sorted(self._active)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def address(self) -> tuple[str, int]:
        return self.server.address

    def start(self) -> None:
        if self.engine is not None:
            # Fork the executor fleet before this process grows threads
            # (server loop, heartbeats): forking a multithreaded parent
            # risks inheriting locks mid-flight.
            self.engine.start()
        self.data.start()
        self.server.start()
        host, port = self.server.address
        with self._lock:
            me = self.table.peers[self.node_id]
            me.host, me.port = host, port
            me.data_port = self.data.port
        self._hb_thread = threading.Thread(
            target=self._heartbeat_loop,
            name=f"cluster-hb-{self.node_id}",
            daemon=True,
        )
        self._hb_thread.start()
        if self.repl is not None:
            self.repl.start()
        if self.autoscaler is not None:
            self.autoscaler.start()

    def stop(self, drain_timeout: float = 5.0) -> None:
        """Tear the node down (abruptly from the peers' point of view —
        survivors notice through heartbeats, exactly like a crash)."""
        self._stop.set()
        if self.autoscaler is not None:
            self.autoscaler.stop()
        if self.repl is not None:
            self.repl.stop()
        if self._hb_thread is not None:
            self._hb_thread.join(timeout=5.0)
        with self._links_lock:
            links, self._links = list(self._links.values()), {}
        for link in links:
            link.close()
        # Client plane first (drains replies that may still need the
        # engine), then the executor pool.
        self.server.stop(drain_timeout=drain_timeout)
        if self.engine is not None:
            self.engine.stop(drain_timeout=drain_timeout)
        self.data.stop()
        if self._spool is not None:
            shutil.rmtree(self._spool, ignore_errors=True)
            self._spool = None

    def __enter__(self) -> "ClusterNode":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # Ring maintenance (all called with self._lock held)
    # ------------------------------------------------------------------ #
    def _sync_ring(
        self,
    ) -> tuple[
        list[tuple[str, str]], list[tuple[str, str, str]], list[str]
    ]:
        """Reconcile ring membership with the peer table; activate and
        deactivate contexts accordingly.  Returns the client re-attaches,
        waiter replays and replica promotions the caller must run *after*
        releasing the lock (they cross the wire)."""
        alive = set(self.table.alive_ids())
        for node_id in self.ring.nodes():
            if node_id not in alive:
                self.ring.remove_node(node_id)
        for node_id in sorted(alive):
            if node_id not in self.ring:
                self.ring.add_node(node_id)
        # Placement pins: a pin whose target died dissolves at a *higher*
        # version (every survivor computes the same version, so gossip
        # converges and the stale pin can never resurrect); a pin whose
        # target just joined the ring is (re-)applied.
        ring_pins = self.ring.pins()
        for name, (target, version) in list(self._pin_versions.items()):
            if target is not None and target not in alive:
                self._pin_versions[name] = (None, version + 1)
                self.ring.unpin(name)
            elif target is not None and ring_pins.get(name) != target:
                self.ring.pin(name, target)
        # Pre-copied migration state whose source died while the ring
        # assigned the context elsewhere is stale — drop it.
        self.migration.prune(alive, self.ring.owner)
        self._m_epoch.set(self.ring.epoch)
        self._m_peers.set(len(alive))
        # Membership *or* pin movement both bump the epoch; either one
        # must re-run the activation reconcile below.
        if self.ring.epoch == self._synced_epoch:
            return [], [], []
        self._synced_epoch = self.ring.epoch
        if self.repl is not None:
            # Membership moved: re-replication from here on is healing.
            self.repl.schedule_heal()
        reattaches: list[tuple[str, str]] = []
        replays: list[tuple[str, str, str]] = []
        promotions: list[str] = []
        for name in sorted(self._specs):
            owner = self.ring.owner(name)
            if owner == self.node_id and name not in self._active:
                self._activate(name)
                if (
                    self.repl is not None and self.repl.store.has(name)
                ) or self.migration.has_incoming(name):
                    # We hold warm state for the context we just
                    # inherited — a replica stream or a pre-copied
                    # migration handoff whose source died: hot promotion
                    # (runs on the replay thread, outside this lock).
                    promotions.append(name)
            elif owner != self.node_id and name in self._active:
                attached, waits = self._deactivate(name)
                reattaches.extend(attached)
                replays.extend(waits)
        # This node's clients whose forwarded attachment points at a node
        # that no longer owns the context: re-register them with the new
        # owner so their next op does not bounce with "not attached".
        for client_id, attachments in self._ingress_ctx.items():
            for context_name, owner in attachments.items():
                if self.ring.owner(context_name) != owner:
                    reattaches.append((client_id, context_name))
        # Forwarded opens whose owner is gone: queue them for replay
        # against whoever the ring now assigns.
        for key, owner in list(self._pending.items()):
            if owner not in alive:
                client_id, context_name, filename = key
                replays.append((client_id, context_name, filename))
                del self._pending[key]
        return reattaches, replays, promotions

    def _activate(self, name: str) -> None:
        if self.engine is not None:
            self.engine.activate(name)
            self._active.add(name)
            return
        spec = self._specs[name]
        self.server.add_context(
            spec.context, spec.output_dir, spec.restart_dir,
            alpha_delay=spec.alpha_delay, tau_delay=spec.tau_delay,
        )
        self._active.add(name)

    def _deactivate(
        self, name: str
    ) -> tuple[list[tuple[str, str]], list[tuple[str, str, str]]]:
        """Unregister a context this node no longer owns.  Attached
        clients and captured waiters are returned for re-registration and
        replay against the new owner (waiters are cleared first, so the
        unregister does not fail them)."""
        self._active.discard(name)
        if self.engine is not None:
            return self.engine.deactivate(name)
        return self.server.coordinator.release_context(name)

    # ------------------------------------------------------------------ #
    # Membership plane
    # ------------------------------------------------------------------ #
    def _apply_membership(self, mutate) -> None:
        """Run a peer-table mutation; if it changed the ring, reassign
        contexts, re-attach displaced clients and replay orphaned waiters
        (outside the lock)."""
        with self._lock:
            reattaches, replays, promotions = (
                self._sync_ring() if mutate() else ([], [], [])
            )
        if reattaches or replays or promotions:
            self._m_failovers.inc()
            # A replay serializes peer round trips: run it on its own
            # thread so neither the heartbeat loop nor a pool worker
            # (both of which land here) stalls on it — a starved worker
            # pool would time out inbound gossip and cascade false
            # death verdicts.
            threading.Thread(
                target=self._replay, args=(reattaches, replays, promotions),
                name=f"cluster-replay-{self.node_id}", daemon=True,
            ).start()

    def _peer_down(self, node_id: str) -> None:
        """Hard evidence a peer is gone (torn forwarding connection)."""
        with self._links_lock:
            link = self._links.pop(node_id, None)
        if link is not None:
            link.close()
        self._apply_membership(lambda: self.table.link_failed(node_id))

    def _on_link_down(self, node_id: str) -> None:
        self._peer_down(node_id)

    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(self.heartbeat_interval):
            try:
                self._gossip_round()
            except Exception:
                # The membership plane must survive any single bad round.
                pass

    def _gossip_round(self) -> None:
        with self._lock:
            view = self.table.view()
            pins = self._pins_wire()
            targets = list(self.table.alive_peers())
            known_addrs = {(p.host, p.port) for p in self.table.peers.values()}
        frame = {
            "op": OP_GOSSIP, "from": self.node_id,
            "view": view, "pins": pins,
        }
        for peer in targets:
            if self._stop.is_set():
                return
            try:
                reply = self._link_to(peer.node_id).call(
                    frame, timeout=self.rpc_timeout
                )
            except (DVConnectionLost, SimFSError, OSError):
                self._apply_membership(
                    lambda peer_id=peer.node_id:
                        self.table.heartbeat_missed(peer_id)
                )
                continue
            self._m_gossip.inc()
            peer_view = reply.get("view") or []
            peer_pins = reply.get("pins") or []
            self._apply_membership(
                lambda peer_id=peer.node_id, peer_view=peer_view,
                peer_pins=peer_pins: (
                    self.table.heartbeat_ok(peer_id, now=time.time()),
                    self.table.merge_view(peer_view, now=time.time())
                    | self._merge_pins(peer_pins),
                )[1]
            )
        # Probe dead peers too: if both sides declared each other dead
        # (symmetric partition), neither would otherwise ever dial again.
        # The shared dial-backoff gate spaces probes out (capped
        # exponential with jitter) so a decommissioned peer does not cost
        # every round a dial timeout forever.
        with self._lock:
            dead = [
                p for p in self.table.peers.values()
                if not p.alive and p.node_id != self.node_id
            ]
        for peer in dead:
            if self._stop.is_set():
                return
            if not self._dial_backoff.ready(peer.node_id):
                continue
            self._m_redial.inc()
            try:
                probe = PeerLink(
                    self.node_id, peer.node_id, peer.host, peer.port,
                    connect_timeout=1.0,
                )
            except DVConnectionLost:
                self._dial_backoff.failed(peer.node_id)
                continue
            try:
                reply = probe.call(frame, timeout=self.rpc_timeout)
            except (DVConnectionLost, SimFSError, OSError):
                self._dial_backoff.failed(peer.node_id)
                continue
            finally:
                probe.close()
            self._dial_backoff.succeeded(peer.node_id)
            peer_view = reply.get("view") or []
            peer_pins = reply.get("pins") or []
            self._apply_membership(
                lambda peer_id=peer.node_id, peer_view=peer_view,
                peer_pins=peer_pins: (
                    self.table.mark_alive(peer_id, now=time.time())
                    | self.table.merge_view(peer_view, now=time.time())
                    | self._merge_pins(peer_pins)
                )
            )
        # Seeds configured as bare host:port — gossip once to learn ids.
        for host, port in list(self._seeds):
            if (host, port) in known_addrs:
                self._seeds.remove((host, port))
                continue
            try:
                # Bounded dial: an unreachable seed must not stretch the
                # heartbeat round (and with it, failure detection).
                probe = PeerLink(
                    self.node_id, f"{host}:{port}", host, port,
                    connect_timeout=1.0,
                )
            except DVConnectionLost:
                continue
            try:
                reply = probe.call(frame, timeout=self.rpc_timeout)
            except (DVConnectionLost, SimFSError, OSError):
                continue
            finally:
                probe.close()
            peer_id = reply.get("from")
            peer_view = reply.get("view") or []
            if isinstance(peer_id, str):
                self._apply_membership(
                    lambda: self.table.upsert(
                        peer_id, host, port, now=time.time()
                    ) | self.table.merge_view(peer_view, now=time.time())
                )
                self._seeds.remove((host, port))

    def _link_to(self, node_id: str) -> PeerLink:
        with self._links_lock:
            link = self._links.get(node_id)
            if link is not None and not link.closed:
                return link
        peer = self.table.get(node_id)
        if peer is None or not peer.alive:
            raise DVConnectionLost(f"peer {node_id!r} is not alive")
        if not self._dial_backoff.ready(node_id):
            raise DVConnectionLost(
                f"peer {node_id!r} dial is backing off"
            )
        if self._dial_backoff.failures(node_id):
            self._m_redial.inc()
        try:
            fresh = PeerLink(
                self.node_id, node_id, peer.host, peer.port,
                on_fwd=self._on_peer_fwd, on_down=self._on_link_down,
            )
        except DVConnectionLost:
            self._dial_backoff.failed(node_id)
            raise
        self._dial_backoff.succeeded(node_id)
        with self._links_lock:
            link = self._links.get(node_id)
            if link is not None and not link.closed:
                fresh.close()  # lost the race; reuse the winner
                return link
            self._links[node_id] = fresh
        return fresh

    # ------------------------------------------------------------------ #
    # Gateway forwarding (ingress side)
    # ------------------------------------------------------------------ #
    def _route_op(self, conn, message: dict) -> dict:
        """DVServer hook: handle an op for a context this node does not
        own by forwarding it to the owner.  Runs on a worker thread."""
        inner = {k: v for k, v in message.items() if k != "req"}
        payload, owner = self._forward_routed(conn.client_id, inner)
        self._track_ingress(conn.client_id, inner, payload, owner)
        return payload

    def _track_ingress(
        self, client_id: str, inner: dict, payload: dict, owner: str
    ) -> None:
        """Record ingress bookkeeping against ``owner`` — the node the op
        was *actually* forwarded to (not a re-derived ring lookup: the
        ring may already have moved on, and a pending wait recorded
        against the wrong, still-alive owner would never be replayed)."""
        op = inner.get("op")
        context = inner.get("context")
        if payload.get("error") or not isinstance(context, str):
            return
        # Under the cluster lock: _sync_ring iterates these tables while
        # reconciling a membership change.
        with self._lock:
            if op == "attach":
                self._ingress_ctx.setdefault(client_id, {})[context] = owner
            elif op == "finalize":
                self._ingress_ctx.get(client_id, {}).pop(context, None)
            elif op == "open" and not payload.get("available"):
                self._pending[(client_id, context, inner.get("file"))] = owner
            elif op == "release":
                self._pending.pop((client_id, context, inner.get("file")), None)
            elif op == "acquire":
                for result in payload.get("results", ()):
                    if not result.get("available"):
                        key = (client_id, context, result.get("file"))
                        self._pending[key] = owner

    def _forward_for(self, client_id: str, inner: dict) -> dict:
        return self._forward_routed(client_id, inner)[0]

    def _forward_routed(self, client_id: str, inner: dict) -> tuple[dict, str]:
        """Route one op for one client to the context's current owner,
        surviving owner death (fail over and retry) and activation lag
        on a new owner (brief retry while membership converges).

        Returns ``(payload, owner)`` where ``owner`` is the node that
        actually served the op — the identity ingress bookkeeping must
        record for the dead-owner replay scan.
        """
        context = inner.get("context")
        deadline = time.monotonic() + self.rpc_timeout
        while True:
            promote = False
            with self._lock:
                owner = self.ring.owner(context) if context else None
                known = context in self._specs
                if owner == self.node_id and known and context not in self._active:
                    self._activate(context)
                    # A forwarded op can beat the heartbeat to the ring
                    # change: promote warm state here too, not only from
                    # _sync_ring, or the first op after a failover would
                    # see a cold shard.
                    promote = (
                        self.repl is not None and self.repl.store.has(context)
                    ) or self.migration.has_incoming(context)
            if promote:
                try:
                    self._promote_warm(context)
                except Exception:
                    pass
            if owner is None:
                return {
                    "error": int(ErrorCode.ERR_CONTEXT),
                    "detail": f"no live node owns context {context!r}",
                }, self.node_id
            if owner == self.node_id:
                return self._execute_local(client_id, inner), owner
            tc = inner.get("tc")
            try:
                link = self._link_to(owner)
                self._m_fwd_sent.inc()
                frame = make_fwd(self.node_id, client_id, inner)
                if tc is not None:
                    # Hoist the trace context onto the fwd frame itself:
                    # the owner's dispatch timing then records an
                    # ``op.fwd`` span without unwrapping the payload.
                    frame["tc"] = tc
                fwd_began = self.server.obs.now()
                reply = link.call(frame, timeout=self.rpc_timeout)
                if tc is not None:
                    self.server.obs.record(
                        "fwd", tc, fwd_began, self.server.obs.now(),
                        op=inner.get("op"), context=context, peer=owner,
                    )
            except PeerTimeout:
                # Slow, not dead: a stalled owner (workers parked on PFS
                # I/O) must not be instantly exiled — that would activate
                # its contexts here while it still serves them.  Feed the
                # graded suspicion path instead and report the failure.
                self._apply_membership(
                    lambda: self.table.heartbeat_missed(owner)
                )
                return {
                    "error": int(ErrorCode.ERR_CONNECTION),
                    "detail": f"owner {owner!r} of {context!r} timed out",
                }, owner
            except (DVConnectionLost, OSError):
                self._peer_down(owner)
                if time.monotonic() >= deadline:
                    return {
                        "error": int(ErrorCode.ERR_CONNECTION),
                        "detail": f"owner {owner!r} of {context!r} is unreachable",
                    }, owner
                continue
            payload = reply.get("payload")
            if not isinstance(payload, dict):
                payload = {
                    "error": reply.get("error", int(ErrorCode.ERR_PROTOCOL)),
                    "detail": reply.get("detail", "malformed fwd_reply"),
                }
            if (
                payload.get("error") == int(ErrorCode.ERR_CONTEXT)
                and known
                and time.monotonic() < deadline
            ):
                # The owner has not activated the context yet (its view of
                # the membership change lags ours) — give it a beat.
                time.sleep(0.05)
                continue
            if (
                payload.get("error") == int(ErrorCode.ERR_INVALID)
                and DETAIL_NOT_ATTACHED in payload.get("detail", "")
                and inner.get("op") not in ("attach", "finalize")
                and context in self._ingress_ctx.get(client_id, {})
                and time.monotonic() < deadline
            ):
                # The context moved before our replay re-registered this
                # client with the new owner: attach and retry.
                if self._ensure_attached(client_id, context):
                    continue
            return payload, owner

    def _execute_local(self, client_id: str, inner: dict) -> dict:
        """Run a client op against the local shards on behalf of a client
        that has no local connection object (replay, self-owned fallback)."""
        op = inner.get("op")
        if self.engine is not None:
            if op not in _ROUTABLE_OPS:
                return {
                    "error": int(ErrorCode.ERR_PROTOCOL),
                    "detail": f"op {op!r} cannot be executed for a routed client",
                }
            payload = self.engine.forward(client_id, inner)
            payload.setdefault("error", int(ErrorCode.SUCCESS))
            # The engine's coordinators live in other processes, so the
            # proxy's attachment set is maintained here rather than by the
            # op handlers quacking at it.
            proxy = self._proxies.get(client_id)
            if proxy is not None and not payload.get("error"):
                context = inner.get("context")
                if op == "attach" and isinstance(context, str):
                    proxy.contexts.add(context)
                elif op == "finalize":
                    proxy.contexts.discard(context)
                    if not proxy.contexts:
                        self._proxies.pop(client_id, None)
            return payload
        handler = self.server._handlers.get(op)
        if handler is None or op not in _ROUTABLE_OPS:
            return {
                "error": int(ErrorCode.ERR_PROTOCOL),
                "detail": f"op {op!r} cannot be executed for a routed client",
            }
        proxy = self._proxies.get(client_id)
        if proxy is None:
            proxy = self._proxies.setdefault(client_id, _ProxyClient(client_id))
        payload = self.server._run_op(proxy, handler, inner)
        payload.setdefault("error", int(ErrorCode.SUCCESS))
        if (
            not payload.get("error")
            and op == "finalize"
            and not proxy.contexts
        ):
            # Last attachment gone: drop the proxy entry (both the fwd
            # and the local-fallback path execute through here, so
            # long-lived gateways do not accumulate dead proxies).
            self._proxies.pop(client_id, None)
        return payload

    def _engine_ready(self, notification: Notification) -> None:
        """Engine callback: a pool executor resolved a wait.  Deliver to
        the real client — a local connection via the server's ready plane,
        or back out the ingress peer link for a proxied cluster client
        (``_push_ready`` falls through to ``_ready_router`` for those)."""
        with self._lock:
            self._pending.pop(
                (notification.client_id, notification.context_name,
                 notification.filename),
                None,
            )
        self.server._push_ready(notification)

    def _ensure_attached(self, client_id: str, context_name: str) -> bool:
        """Register a client with the context's current owner, treating
        "already attached" as success (replays race with each other and
        with the client's own traffic)."""
        payload, owner = self._forward_routed(
            client_id, {"op": "attach", "context": context_name}
        )
        error = payload.get("error")
        ok = not error or (
            error == int(ErrorCode.ERR_INVALID)
            and DETAIL_ALREADY_ATTACHED in payload.get("detail", "")
        )
        if ok:
            with self._lock:
                attachments = self._ingress_ctx.get(client_id)
                if attachments is not None and context_name in attachments:
                    attachments[context_name] = owner
        return ok

    def _replay(
        self,
        reattaches: list[tuple[str, str]],
        replays: list[tuple[str, str, str]],
        promotions: tuple[str, ...] | list[str] = (),
    ) -> None:
        """Re-register displaced clients with the new owner and re-issue
        the forwarded opens stranded by the ownership change, so blocked
        clients get their ready from the new owner instead of hanging on
        the dead one.  Replica promotions run first: a hot-promoted shard
        already holds the dead owner's waiter table, so replays arriving
        afterwards are idempotent re-registrations, not cold rebuilds."""
        for context_name in promotions:
            try:
                self._promote_warm(context_name)
            except Exception:
                pass  # a failed promotion degrades to the cold path
        seen: set[tuple[str, str]] = set()
        for client_id, context_name in reattaches:
            if (client_id, context_name) not in seen:
                seen.add((client_id, context_name))
                self._ensure_attached(client_id, context_name)
        for client_id, context_name, filename in replays:
            if (client_id, context_name) not in seen:
                seen.add((client_id, context_name))
                if not self._ensure_attached(client_id, context_name):
                    self.server._push_ready(
                        Notification(client_id, context_name, filename, ok=False)
                    )
                    continue
            payload, owner = self._forward_routed(
                client_id,
                {"op": "open", "context": context_name, "file": filename},
            )
            self._m_replayed.inc()
            if payload.get("error"):
                self.server._push_ready(
                    Notification(client_id, context_name, filename, ok=False)
                )
            elif payload.get("available"):
                # Already on the shared PFS: resolve the wait right away.
                self.server._push_ready(
                    Notification(client_id, context_name, filename, ok=True)
                )
            else:
                with self._lock:
                    self._pending[(client_id, context_name, filename)] = owner

    # ------------------------------------------------------------------ #
    # Gateway forwarding (owner side)
    # ------------------------------------------------------------------ #
    def _op_fwd(self, conn, message: dict) -> dict | None:
        """Server op: execute a peer-forwarded client op locally."""
        origin, client_id, inner = unwrap_fwd(message)
        self._m_fwd_recv.inc()
        if inner.get("op") == "ready":
            # Symmetric delivery path: a peer dialled us to route a ready
            # for a client that entered through this node.
            self._deliver_routed_ready(client_id, inner)
            return None
        proxy = self._proxies.get(client_id)
        if proxy is None:
            proxy = self._proxies.setdefault(client_id, _ProxyClient(client_id))
        proxy.origin = origin
        proxy.peer_client_id = getattr(conn, "client_id", None)
        proxy.conn = conn
        return {"payload": self._execute_local(client_id, inner)}

    def _ready_router(self, notification: Notification) -> None:
        """DVServer hook: deliver a notification whose client is not a
        local connection — push it through the proxied client's ingress
        peer link."""
        proxy = self._proxies.get(notification.client_id)
        if proxy is None:
            return
        frame = make_fwd(self.node_id, notification.client_id, {
            "op": "ready",
            "context": notification.context_name,
            "file": notification.filename,
            "ok": notification.ok,
        })
        if proxy.conn is not None:
            try:
                self.server._send(proxy.conn, frame)
                self._m_ready_routed.inc()
                return
            except (OSError, SimFSError):
                pass
        if proxy.origin and proxy.origin != self.node_id:
            # Promoted-replica path: the waiter entered the cluster at its
            # origin node and our copy of its ingress channel is only a
            # recorded name (the dead owner held the live connection) —
            # dial the origin and route the ready over our own link; the
            # origin's fwd handler delivers it to the real client.
            try:
                self._link_to(proxy.origin).send(frame)
                self._m_ready_routed.inc()
            except (DVConnectionLost, SimFSError, OSError):
                pass

    def _on_peer_fwd(self, message: dict) -> None:
        """PeerLink callback: unsolicited ``fwd`` from a peer over one of
        our outbound links (the owner routing a ready back to us)."""
        try:
            _origin, client_id, inner = unwrap_fwd(message)
        except ProtocolError:
            return
        if inner.get("op") == "ready":
            self._deliver_routed_ready(client_id, inner)

    def _deliver_routed_ready(self, client_id: str, inner: dict) -> None:
        context = inner.get("context")
        filename = inner.get("file")
        ok = bool(inner.get("ok", True))
        with self._lock:
            self._pending.pop((client_id, context, filename), None)
        self.server._push_ready(
            Notification(client_id, context, filename, ok=ok)
        )

    # ------------------------------------------------------------------ #
    # Remaining hooks and service ops
    # ------------------------------------------------------------------ #
    def _op_gossip(self, conn, message: dict) -> dict:
        view = message.get("view")
        pins = message.get("pins")
        sender = message.get("from")

        def mutate() -> bool:
            changed = False
            if isinstance(sender, str):
                # Direct contact outranks any death rumor: the peer is
                # talking to us, so it is alive — this is the rejoin path
                # for a peer that was falsely declared dead (rumors at
                # the same generation can never resurrect it).
                changed |= self.table.mark_alive(sender, now=time.time())
            if isinstance(view, list):
                changed |= self.table.merge_view(view, now=time.time())
            if isinstance(pins, list):
                changed |= self._merge_pins(pins)
            return changed

        self._apply_membership(mutate)
        with self._lock:
            return {
                "from": self.node_id,
                "view": self.table.view(),
                "pins": self._pins_wire(),
                "epoch": self.ring.epoch,
            }

    def _op_cluster(self, conn, message: dict) -> dict:
        return {
            "cluster": self.describe(),
            "metrics": self.metrics.snapshot("cluster."),
        }

    # ------------------------------------------------------------------ #
    # Observability plane (cluster-wide trace reconstruction)
    # ------------------------------------------------------------------ #
    def _obs_peer_query(self, message: dict):
        """Fan one obs query out to every live peer with recursion off;
        yields ``(peer_id, reply | None)`` — ``None`` marks a peer that
        could not be reached (the caller reports it, never fails).
        Peers gossip already declared dead are yielded as unreachable
        without burning a dial on them: their spans are just as missing
        from the merged view either way, and a partial view must say so."""
        with self._lock:
            peer_ids = [p.node_id for p in self.table.alive_peers()]
            dead_ids = [
                p.node_id for p in self.table.peers.values()
                if not p.alive and p.node_id != self.node_id
            ]
        for peer_id in dead_ids:
            yield peer_id, None
        for peer_id in peer_ids:
            try:
                reply = self._link_to(peer_id).call(
                    dict(message, fanout=0), timeout=self.rpc_timeout
                )
            except (DVConnectionLost, SimFSError, OSError):
                reply = None
            yield peer_id, reply

    def _op_trace(self, conn, message: dict) -> dict:
        """Cluster ``trace`` op: one trace's spans merged from every
        reachable node (and this node's executor pool), deduplicated by
        span id and sorted by start time."""
        trace_id = message.get("trace_id")
        if not isinstance(trace_id, str) or not trace_id:
            raise InvalidArgumentError("trace requires a 'trace_id' string")
        spans = list(self.server.obs.trace(trace_id))
        if self.engine is not None:
            spans.extend(self.engine.trace_spans(trace_id))
        nodes = [self.node_id]
        unreachable: list[str] = []
        if message.get("fanout", 1):
            query = {"op": "trace", "trace_id": trace_id}
            for peer_id, reply in self._obs_peer_query(query):
                if reply is None:
                    unreachable.append(peer_id)
                    continue
                payload = reply.get("trace") or {}
                spans.extend(payload.get("spans") or ())
                nodes.extend(payload.get("nodes") or (peer_id,))
                unreachable.extend(payload.get("unreachable") or ())
        seen: set[str] = set()
        merged = []
        for span in spans:
            span_id = span.get("span_id")
            if span_id in seen:
                continue
            seen.add(span_id)
            merged.append(span)
        merged.sort(key=lambda s: (s.get("start", 0.0), s.get("end", 0.0)))
        return {"trace": {
            "trace_id": trace_id.lower(),
            "spans": merged,
            "nodes": sorted(set(nodes)),
            "unreachable": sorted(set(unreachable)),
        }}

    def _op_trace_slow(self, conn, message: dict) -> dict:
        """Cluster ``trace_slow`` op: the slowest spans and the decision
        journals of every reachable node."""
        limit = max(1, int(message.get("limit", 20)))
        spans = list(self.server.obs.slow(limit))
        journal = self.server.obs.journal_entries(limit=limit)
        if self.engine is not None:
            spans.extend(self.engine.slow_spans(limit))
        nodes = [self.node_id]
        unreachable: list[str] = []
        if message.get("fanout", 1):
            query = {"op": "trace_slow", "limit": limit}
            for peer_id, reply in self._obs_peer_query(query):
                if reply is None:
                    unreachable.append(peer_id)
                    continue
                payload = reply.get("slow") or {}
                spans.extend(payload.get("spans") or ())
                journal.extend(payload.get("journal") or ())
                nodes.extend(payload.get("nodes") or (peer_id,))
                unreachable.extend(payload.get("unreachable") or ())
        spans.sort(key=lambda s: s.get("duration", 0.0), reverse=True)
        journal.sort(key=lambda e: e.get("ts", 0.0))
        return {"slow": {
            "spans": spans[:limit],
            "journal": journal[-limit:],
            "nodes": sorted(set(nodes)),
            "unreachable": sorted(set(unreachable)),
        }}

    def _local_metrics_text(self) -> str:
        """This node's Prometheus exposition (pool-merged in engine mode:
        the real shards live in the executors, not our registry)."""
        if self.engine is None:
            return self.server.metrics_text()
        from repro.metrics import merge_snapshots
        from repro.obs.export import render_prometheus

        pool = self.engine.stats()
        merged = merge_snapshots([pool["metrics"], self.metrics.snapshot()])
        return render_prometheus(merged, self.server.obs.exemplars())

    def _op_metrics_text(self, conn, message: dict) -> dict:
        """Cluster ``metrics_text`` op: this node's exposition, plus —
        unless ``fanout`` is off — every reachable peer's, concatenated
        under ``# node <id>`` separators for ``simfs-ctl metrics-export``
        (scrapers wanting a single node's series hit its own /metrics)."""
        text = self._local_metrics_text()
        nodes = [self.node_id]
        unreachable: list[str] = []
        if message.get("fanout", 1):
            parts = [f"# node {self.node_id}\n{text}"]
            for peer_id, reply in self._obs_peer_query({"op": "metrics_text"}):
                if reply is None:
                    unreachable.append(peer_id)
                    continue
                parts.append(
                    f"# node {peer_id}\n{reply.get('text') or ''}"
                )
                nodes.extend(reply.get("nodes") or (peer_id,))
            text = "\n".join(parts)
        return {
            "text": text,
            "nodes": sorted(set(nodes)),
            "unreachable": sorted(set(unreachable)),
        }

    # ------------------------------------------------------------------ #
    # HA tier (owner→replica streaming, promotion, healing)
    # ------------------------------------------------------------------ #
    def _op_repl(self, conn, message: dict) -> dict:
        """Server op: a peer owner streaming replicated context state."""
        if self.repl is None:
            with self._lock:
                epoch = self.ring.epoch
            return {"fenced": True, "epoch": epoch,
                    "detail": "replication disabled on this node"}
        return self.repl.receive(message)

    def _op_ha(self, conn, message: dict) -> dict:
        """Server op: HA status (``simfs-ctl ha-status``)."""
        if self.repl is None:
            payload = {
                "factor": 1, "contexts": {}, "replica_of": {},
                "fenced": [], "healing_queue": 0, "last_promotion": None,
            }
        else:
            payload = self.repl.describe()
        payload["self"] = self.node_id
        return {"ha": payload, "metrics": self.metrics.snapshot("repl.")}

    # ------------------------------------------------------------------ #
    # Live migration (placement pins, the migrate op, load probes)
    # ------------------------------------------------------------------ #
    def _pins_wire(self) -> list[list]:
        """Wire form of the pin table (called with the lock held): a
        dissolved pin travels as an empty target so its higher version
        still suppresses the stale pin on peers."""
        return [
            [name, target or "", version]
            for name, (target, version) in sorted(self._pin_versions.items())
        ]

    def _adopt_pin(
        self, context_name: str, target: str | None, version: int,
        force: bool = False,
    ) -> bool:
        """Apply a pin observation if it outranks what we hold (called
        with the lock held).  ``force`` accepts an equal version too —
        the migration destination installing the pin it was handed."""
        _cur, cur_version = self._pin_versions.get(context_name, (None, 0))
        if version < cur_version or (version == cur_version and not force):
            return False
        target = target or None
        self._pin_versions[context_name] = (target, version)
        if target is not None and target in self.ring:
            changed = self.ring.pin(context_name, target)
        else:
            changed = self.ring.unpin(context_name)
        self._m_epoch.set(self.ring.epoch)
        return changed

    def _bump_pin(self, context_name: str, target: str) -> int:
        """Install a new pin at the next version (called with the lock
        held by the migration source at cutover); returns the version."""
        _cur, cur_version = self._pin_versions.get(context_name, (None, 0))
        version = cur_version + 1
        self._pin_versions[context_name] = (target, version)
        if target in self.ring:
            self.ring.pin(context_name, target)
        self._m_epoch.set(self.ring.epoch)
        return version

    def _merge_pins(self, entries) -> bool:
        """Merge gossiped pin observations (called with the lock held)."""
        changed = False
        for entry in entries or ():
            try:
                name, target, version = entry[0], entry[1], int(entry[2])
            except (TypeError, ValueError, IndexError):
                continue
            if not isinstance(name, str) or not isinstance(target, str):
                continue
            changed |= self._adopt_pin(name, target, version)
        return changed

    def _gossip_soon(self) -> None:
        """Kick an immediate out-of-band gossip round (migration cutover
        must not wait a heartbeat interval to advertise the new pin)."""

        def run() -> None:
            try:
                self._gossip_round()
            except Exception:
                pass

        threading.Thread(
            target=run, name=f"cluster-gossip-now-{self.node_id}",
            daemon=True,
        ).start()

    def _promote_warm(self, context_name: str) -> None:
        """Warm-restore a context this node just inherited: replicated
        state first (HA tier), else a pre-copied migration handoff whose
        source died before the final frame."""
        if self.repl is not None and self.repl.store.has(context_name):
            try:
                self.repl.promote(context_name)
                return
            except Exception:
                pass
        self.migration.promote_incoming(context_name)

    def local_load(self) -> dict:
        """This node's load sample for the autoscaler: per-context waiter
        / running-sim / queued-job depth, open-latency p99, and the wire
        message counter (rate is the sampler's job)."""
        contexts: dict[str, dict] = {}
        if self.engine is None:
            for shard in self.server.coordinator.shards():
                summary = shard.summary()
                contexts[summary["context"]] = {
                    "waiters": summary["waited_keys"],
                    "sims": summary["running_sims"],
                    "queued": summary["queued_jobs"],
                }
        snap = self.metrics.snapshot("op.open.seconds")
        series = snap.get("op.open.seconds") or {}
        frames = self.metrics.snapshot("wire.frames_recv")
        return {
            "node": self.node_id,
            "contexts": contexts,
            "p99_open_s": series.get("p99"),
            "msgs": (frames.get("wire.frames_recv") or {}).get("value", 0),
        }

    def _op_migrate(self, conn, message: dict) -> dict:
        """Server op, two roles: peer data frames (``kind`` set) feed the
        destination half; control requests (``context``/``dest``) start a
        migration, forwarded to the owner when that is not us."""
        if message.get("kind"):
            return self.migration.receive(message)
        context = message.get("context")
        dest = message.get("dest")
        if not isinstance(context, str) or not isinstance(dest, str):
            raise InvalidArgumentError(
                "migrate needs a context and a dest node id"
            )
        with self._lock:
            owner = (
                self.ring.owner(context) if context in self._specs else None
            )
        if owner is None:
            return {
                "error": int(ErrorCode.ERR_CONTEXT),
                "detail": f"no live node owns context {context!r}",
            }
        if owner == dest:
            return {"migrate": {
                "context": context, "from": owner, "to": dest, "noop": True,
            }}
        if owner != self.node_id:
            reply = self._link_to(owner).call(
                {"op": "migrate", "context": context, "dest": dest},
                timeout=self.rpc_timeout,
            )
            return {k: v for k, v in reply.items() if k != "req"}
        return {"migrate": self.migration.migrate(context, dest)}

    def _op_load(self, conn, message: dict) -> dict:
        return {"load": self.local_load()}

    def _op_rebalance(self, conn, message: dict) -> dict:
        """Server op: rebalance status (``simfs-ctl rebalance-status``)."""
        with self._lock:
            pins = self.ring.pins()
            epoch = self.ring.epoch
        return {
            "rebalance": {
                "self": self.node_id,
                "epoch": epoch,
                "pins": pins,
                "migration": self.migration.describe(),
                "autoscaler": (
                    self.autoscaler.describe() if self.autoscaler else None
                ),
                "load": self.local_load(),
            },
            "metrics": self.metrics.snapshot("migrate."),
        }

    def _capture_repl(self, context_name: str) -> dict | None:
        """Replication-pump hook: snapshot an owned shard's control-plane
        state, annotating each waiter with its ingress origin so that a
        promoted replica can route readies back out through it."""
        try:
            shard = self.server.coordinator.shard(context_name)
        except SimFSError:
            return None
        state = shard.capture_repl_state()
        state["waiters"] = [
            [
                client_id,
                filename,
                getattr(self._proxies.get(client_id), "origin", None),
            ]
            for client_id, filename in state["waiters"]
        ]
        return state

    def _register_waiter_origins(self, waiters: list) -> None:
        """Promotion prep: recreate owner-side proxies for replicated
        waiters that entered through a gateway, so their ready
        notifications have a route back out (``_ready_router`` dials the
        origin when no live server-side channel exists)."""
        for entry in waiters:
            client_id = entry[0]
            origin = entry[2] if len(entry) > 2 else None
            if not isinstance(client_id, str):
                continue
            if not origin or origin == self.node_id:
                continue
            proxy = self._proxies.get(client_id)
            if proxy is None:
                proxy = self._proxies.setdefault(
                    client_id, _ProxyClient(client_id)
                )
            if proxy.origin is None:
                proxy.origin = origin

    def _op_engine_stats(self, conn, message: dict) -> dict:
        """Replacement ``stats`` op (engine mode): the pool's merged view
        plus this node's own wire/cluster metric series."""
        from repro.metrics import merge_snapshots

        pool = self.engine.stats()
        local = self.server._op_stats(conn, message)["stats"]
        server_info = dict(pool["server"])
        server_info["mode"] = "cluster+multiproc"
        server_info["node"] = self.node_id
        server_info["connected_clients"] = (
            local.get("server", {}).get("connected_clients", 0)
        )
        return {"stats": {
            "contexts": pool["contexts"],
            "totals": pool["totals"],
            "metrics": merge_snapshots(
                [pool["metrics"], local.get("metrics", {})]
            ),
            "server": server_info,
        }}

    def _hello_extra(self) -> dict:
        return {"cluster": self.describe()}

    def describe(self) -> dict:
        """JSON view of the ring/membership (hello extra, ``cluster`` op,
        ``simfs-ctl cluster-status``)."""
        with self._lock:
            return {
                "self": self.node_id,
                "generation": self.table.generation,
                "epoch": self.ring.epoch,
                "vnodes": self.ring.vnodes,
                "nodes": [p.wire() for p in self.table.peers.values()],
                "contexts": {
                    name: self.ring.owner(name) for name in sorted(self._specs)
                },
                "pins": self.ring.pins(),
                "active": sorted(self._active),
                "replication": self.repl.factor if self.repl else 1,
                "engine": (
                    {"mode": "multiproc", "workers": self.engine.workers}
                    if self.engine is not None else None
                ),
            }

    # ------------------------------------------------------------------ #
    # Data plane (callbacks run on DataServer worker threads)
    # ------------------------------------------------------------------ #
    def _data_resolve(self, context: str, filename: str) -> str:
        """Map a fetch to a file path: the context's PFS output dir first,
        then this node's proxy spool (files pulled from the owner)."""
        with self._lock:
            spec = self._specs.get(context)
        if spec is None:
            raise FileNotInContextError(f"unknown context {context!r}")
        base = os.path.realpath(spec.output_dir)
        path = os.path.realpath(os.path.join(base, filename))
        if os.path.commonpath([path, base]) != base:
            raise FileNotInContextError(
                f"file {filename!r} escapes context directory"
            )
        if not os.path.isfile(path) and self._spool is not None:
            spooled = os.path.join(self._spool, context, filename)
            if os.path.isfile(spooled):
                return spooled
        return path

    def _data_list(self, context: str) -> list[str]:
        with self._lock:
            spec = self._specs.get(context)
        if spec is None:
            raise FileNotInContextError(f"unknown context {context!r}")
        naming = spec.context.driver.naming
        try:
            return sorted(
                n for n in os.listdir(spec.output_dir)
                if naming.is_output(n)
                and os.path.isfile(os.path.join(spec.output_dir, n))
            )
        except OSError:
            return []

    def _data_upstream(self, context: str, filename: str) -> str | None:
        """One-hop proxy: pull a non-local file from the ring owner's data
        port into this node's spool and serve it from there."""
        with self._lock:
            owner = self.ring.owner(context)
            peer = self.table.get(owner) if owner else None
        if (
            peer is None
            or peer.node_id == self.node_id
            or not peer.alive
            or not peer.data_port
        ):
            return None
        with self._spool_lock:
            if self._spool is None:
                self._spool = tempfile.mkdtemp(
                    prefix=f"simfs-spool-{self.node_id}-"
                )
            dest = os.path.join(self._spool, context, filename)
            if os.path.isfile(dest):
                return dest
            os.makedirs(os.path.dirname(dest), exist_ok=True)
            try:
                with DataClient(peer.host, peer.data_port,
                                timeout=self.rpc_timeout) as client:
                    client.fetch(context, filename, dest)
            except SimFSError:
                return None
            return dest

    def _drop_hook(self, client_id: str) -> None:
        """DVServer hook: a connection died.  For a peer link, disconnect
        every client it proxied; for a regular client, finalize its
        forwarded attachments at their owners."""
        if client_id.startswith("node:"):
            orphans = [
                p for p in list(self._proxies.values())
                if p.peer_client_id == client_id
            ]
            for proxy in orphans:
                self._proxies.pop(proxy.client_id, None)
                if self.engine is not None:
                    self.engine.finalize_client(proxy.client_id)
                    continue
                for context in list(proxy.contexts):
                    try:
                        self.server.coordinator.client_disconnect(
                            proxy.client_id, context, time.time()
                        )
                    except SimFSError:
                        pass
            return
        if self.engine is not None:
            # Pool-side attachments (owned contexts) are invisible to the
            # node server's own disconnect cleanup — finalize them in the
            # executors too.
            self.engine.finalize_client(client_id)
        with self._lock:
            for key in [k for k in self._pending if k[0] == client_id]:
                del self._pending[key]
            forwarded = self._ingress_ctx.pop(client_id, {})
        for context in forwarded:
            try:
                self._forward_for(
                    client_id, {"op": "finalize", "context": context}
                )
            except Exception:
                pass
