"""Cluster-aware DVLib connection: one hop to the owner, steady state.

A :class:`ClusterConnection` looks like any other
:class:`~repro.client.dvlib.DVConnection`, but under the hood it keeps
one :class:`~repro.client.dvlib.TcpConnection` per cluster node and
routes every op straight to the context's owner — the gateway forwarding
path stays available for clients that do not (or cannot) know the ring,
while cluster-aware clients skip the extra hop entirely.

The ring is learned from the ``hello`` reply of the first node reached
(every :class:`~repro.cluster.node.ClusterNode` appends its membership
view to hello replies) and rebuilt locally with the same
:class:`~repro.cluster.ring.HashRing` parameters, so client and daemons
agree on ownership without a directory service.  When an owner dies
mid-session the next op raises :class:`DVConnectionLost` internally, the
connection refreshes the ring from any surviving node, and retries
against the new owner until ``failover_timeout`` runs out — sessions
survive node failures without reconnecting by hand.
"""

from __future__ import annotations

import threading
import time

from repro.client.dvlib import DVConnection, FileInfo, TcpConnection
from repro.cluster.link import DialBackoff
from repro.cluster.ring import HashRing
from repro.core.errors import (
    ConnectionLostError,
    DETAIL_ALREADY_ATTACHED,
    DETAIL_ALREADY_CONNECTED,
    DVConnectionLost,
    InvalidArgumentError,
)
from repro.dv.protocol import CODEC_BINARY

__all__ = ["ClusterConnection"]


class ClusterConnection(DVConnection):
    """DVLib over a DV cluster: per-owner connections plus ring refresh."""

    def __init__(
        self,
        seeds: list[tuple[str, int]],
        storage_dirs: dict[str, str] | None = None,
        restart_dirs: dict[str, str] | None = None,
        client_id: str | None = None,
        codec: str = CODEC_BINARY,
        connect_timeout: float = 10.0,
        failover_timeout: float = 10.0,
    ) -> None:
        if not seeds:
            raise InvalidArgumentError("ClusterConnection needs >= 1 seed address")
        super().__init__(client_id)
        self._seeds = [(str(host), int(port)) for host, port in seeds]
        self._storage_dirs = dict(storage_dirs or {})
        self._restart_dirs = dict(restart_dirs or {})
        self._codec = codec
        self._connect_timeout = connect_timeout
        self._failover_timeout = failover_timeout
        self._conns: dict[str, TcpConnection] = {}
        self._addrs: dict[str, tuple[str, int]] = {}
        self._ring = HashRing()
        self._closed = False
        # Serializes connection-table and ring mutation: user ops and the
        # wait watchdog both end up in _conn_for_addr/_refresh_ring.
        self._lock = threading.RLock()
        # context -> the per-node connection we attached through; after a
        # failover the owner changes and the session must re-attach there.
        self._attached: dict[str, TcpConnection] = {}
        # (context, file) -> owner we are blocked on (no ready yet).  The
        # watchdog replays these when the owner dies — a blocked waiter
        # issues no ops of its own, so op-triggered failover can't save it.
        self._waits: dict[tuple[str, str], str] = {}
        # Spaces out failover retries per context / replay attempts per
        # owner: a dead endpoint must not be hammered at a fixed cadence.
        self._retry_backoff = DialBackoff(base=0.1, cap=2.0)
        self.ready_table.add_watcher(self._on_ready)
        self._refresh_ring()
        self._watchdog = threading.Thread(
            target=self._watch_waits,
            name=f"cluster-conn-watch-{self.client_id}", daemon=True,
        )
        self._watchdog.start()

    # ------------------------------------------------------------------ #
    # Ring discovery
    # ------------------------------------------------------------------ #
    def _on_ready(self, context: str, filename: str, ok: bool) -> None:
        self._waits.pop((context, filename), None)

    def _watch_waits(self) -> None:
        """Replay blocked opens whose owner died: the owner's ready will
        never come, and the blocked client issues no op that would
        trigger the normal failover path."""
        while not self._closed:
            time.sleep(0.1)
            if not self._waits or self._closed:
                continue
            for (context, filename), owner in list(self._waits.items()):
                conn = self._conns.get(owner)
                if conn is not None and not conn.is_lost:
                    self._retry_backoff.succeeded(f"wait:{owner}")
                    continue  # owner healthy: its ready is still coming
                # A dead owner is probed on the capped-jitter backoff
                # schedule, not once per poll tick.
                if not self._retry_backoff.ready(f"wait:{owner}"):
                    continue
                try:
                    info = self._routed(
                        context, lambda c: c.open(context, filename)
                    )
                except (ConnectionLostError, InvalidArgumentError, OSError):
                    self._retry_backoff.failed(f"wait:{owner}")
                    continue  # retried once the backoff window passes
                self._retry_backoff.succeeded(f"wait:{owner}")
                if info.available:
                    # Landed on the shared PFS meanwhile (or the new
                    # owner sees it): resolve the blocked wait.
                    self.ready_table.record(context, filename, True)
                else:
                    new_owner = self._ring.owner(context)
                    if new_owner:
                        self._waits[(context, filename)] = new_owner

    def _refresh_ring(self) -> None:
        """Learn the membership from any reachable node (live connections
        first, configured seeds as fallback)."""
        last_error: Exception | None = None
        candidates: list[tuple[str, int]] = list(self._addrs.values())
        candidates += [a for a in self._seeds if a not in candidates]
        for host, port in candidates:
            try:
                conn = self._conn_for_addr(host, port)
                # The hello reply seeded ``server_info``, but a refresh
                # must see the *current* membership: ask the live op.
                info = conn.call({"op": "cluster"}).get("cluster")
            except (ConnectionLostError, OSError) as exc:
                last_error = exc
                continue
            except InvalidArgumentError as exc:
                # Our previous connection to this node is still being
                # torn down ("client_id already connected"): try the
                # next candidate, a later refresh will reach this one.
                if DETAIL_ALREADY_CONNECTED not in str(exc):
                    raise
                last_error = exc
                continue
            if isinstance(info, dict):
                self._apply_view(info)
                return
        raise DVConnectionLost(
            f"no cluster node reachable via {self._seeds!r}"
        ) from last_error

    def _apply_view(self, info: dict) -> None:
        vnodes = int(info.get("vnodes", self._ring.vnodes))
        ring = HashRing(vnodes)
        addrs: dict[str, tuple[str, int]] = {}
        for node in info.get("nodes", ()):
            if not node.get("alive", True):
                continue
            node_id = node.get("id")
            if isinstance(node_id, str):
                ring.add_node(node_id)
                addrs[node_id] = (str(node.get("host")), int(node.get("port")))
        # Migration placement pins ride along with the membership view so
        # the client routes straight to a migrated context's new owner.
        for name, target in (info.get("pins") or {}).items():
            if isinstance(target, str) and target in ring:
                ring.pin(str(name), target)
        if len(ring):
            with self._lock:
                self._ring = ring
                self._addrs = addrs

    def _conn_for_addr(self, host: str, port: int) -> TcpConnection:
        with self._lock:
            for conn in self._conns.values():
                if conn.address == (host, port) and not conn.is_lost:
                    return conn
            probe = TcpConnection(
                host, port, self._storage_dirs, self._restart_dirs,
                client_id=self.client_id, connect_timeout=self._connect_timeout,
                codec=self._codec,
            )
            self._adopt(probe)
            return probe

    def _adopt(self, conn: TcpConnection) -> None:
        """Funnel a per-node connection's notifications into the shared
        ready table and index it by the node id it reported."""
        conn.ready_table.add_watcher(self.ready_table.record)
        info = conn.server_info.get("cluster")
        node_id = info.get("self") if isinstance(info, dict) else None
        key = node_id if isinstance(node_id, str) else f"{conn.address}"
        old = self._conns.get(key)
        if old is not None and old is not conn:
            old.close()
        self._conns[key] = conn

    def _conn_for_context(self, context: str) -> TcpConnection:
        """A live connection serving ``context``: the ring owner when
        reachable, else the next nodes in the context's preference list.
        Under replication the first successor is the promoted owner; in
        any case a non-owner gateway-forwards, so falling down the chain
        is always correct — just possibly one hop slower."""
        chain = (
            self._ring.successors(context, len(self._ring))
            if len(self._ring) else []
        )
        if not chain:
            raise DVConnectionLost("cluster ring is empty")
        last_error: Exception | None = None
        for node_id in chain:
            conn = self._conns.get(node_id)
            if conn is not None and not conn.is_lost:
                return conn
            addr = self._addrs.get(node_id)
            if addr is None:
                continue
            try:
                return self._conn_for_addr(*addr)
            except (ConnectionLostError, OSError) as exc:
                last_error = exc
        raise DVConnectionLost(
            f"no live node in the preference list of context {context!r}"
        ) from last_error

    def _ensure_attached(self, context: str, conn: TcpConnection) -> None:
        """Attached sessions follow the context: when the owner we
        attached through is gone, re-register with the current owner."""
        if self._attached.get(context) is conn:
            return
        try:
            conn.attach(context)
        except InvalidArgumentError as exc:
            if DETAIL_ALREADY_ATTACHED not in str(exc):
                raise
        self._attached[context] = conn

    def _routed(self, context: str, op):
        """Run ``op`` against the context owner, failing over (refresh
        ring, re-attach, retry new owner) while the timeout budget lasts."""
        if self._closed:
            raise DVConnectionLost("connection is closed")
        deadline = time.monotonic() + self._failover_timeout
        while True:
            try:
                conn = self._conn_for_context(context)
                if context in self._attached:
                    self._ensure_attached(context, conn)
                result = op(conn)
                self._retry_backoff.succeeded(f"route:{context}")
                return result
            except (ConnectionLostError, OSError) as exc:
                if time.monotonic() >= deadline:
                    raise DVConnectionLost(
                        f"no live owner for context {context!r}: {exc}"
                    ) from exc
            except InvalidArgumentError as exc:
                # Retryable only while the daemon finishes releasing our
                # previous connection's client_id.
                if (
                    DETAIL_ALREADY_CONNECTED not in str(exc)
                    or time.monotonic() >= deadline
                ):
                    raise
            # Capped-jitter backoff instead of a fixed cadence: repeated
            # failures against the same dead owner space themselves out
            # (never past the remaining failover budget).
            delay = self._retry_backoff.failed(f"route:{context}")
            time.sleep(max(0.0, min(delay, deadline - time.monotonic())))
            try:
                self._refresh_ring()
            except DVConnectionLost:
                pass  # keep retrying until the deadline

    # ------------------------------------------------------------------ #
    # DVConnection interface
    # ------------------------------------------------------------------ #
    def attach(self, context: str) -> None:
        def do_attach(conn: TcpConnection) -> None:
            if self._attached.get(context) is not conn:
                conn.attach(context)
                self._attached[context] = conn

        self._routed(context, do_attach)

    def finalize(self, context: str) -> None:
        self._routed(context, lambda conn: conn.finalize(context))
        self._attached.pop(context, None)

    def close(self) -> None:
        self._closed = True
        for conn in self._conns.values():
            try:
                conn.close()
            except (ConnectionLostError, OSError):
                pass
        self._conns.clear()

    def open(self, context: str, filename: str) -> FileInfo:
        info = self._routed(context, lambda conn: conn.open(context, filename))
        if not info.available:
            owner = self._ring.owner(context)
            if owner:
                self._waits[(context, filename)] = owner
        return info

    def acquire(self, context: str, filenames: list[str]) -> list[FileInfo]:
        infos = self._routed(
            context, lambda conn: conn.acquire(context, filenames)
        )
        owner = self._ring.owner(context)
        if owner:
            for info in infos:
                if not info.available:
                    self._waits[(context, info.filename)] = owner
        return infos

    def release(self, context: str, filename: str) -> None:
        self._routed(context, lambda conn: conn.release(context, filename))
        self._waits.pop((context, filename), None)
        self.ready_table.forget(context, filename)

    def notify_write_close(self, context: str, filename: str) -> None:
        self._routed(
            context, lambda conn: conn.notify_write_close(context, filename)
        )

    def bitrep(self, context: str, filename: str, path: str | None = None) -> bool:
        return self._routed(
            context, lambda conn: conn.bitrep(context, filename, path)
        )

    def batch(self, ops: list[dict]) -> list[dict]:
        """Pipelined sub-ops.  All sub-ops must name contexts owned by
        one node (the normal case: a per-context release window) — the
        batch travels to the owner of the first sub-op's context."""
        contexts = {
            sub.get("context") for sub in ops if isinstance(sub, dict)
        } - {None}
        if not contexts:
            raise InvalidArgumentError("cluster batch needs context-bearing ops")
        owners = {self._ring.owner(ctx) for ctx in contexts}
        if len(owners) > 1:
            raise InvalidArgumentError(
                "cluster batch cannot span owners "
                f"({sorted(contexts)} map to {sorted(owners)})"
            )
        context = next(iter(contexts))
        return self._routed(context, lambda conn: conn.batch(ops))

    def stats(self) -> dict:
        for conn in self._conns.values():
            if not conn.is_lost:
                return conn.stats()
        self._refresh_ring()
        for conn in self._conns.values():
            if not conn.is_lost:
                return conn.stats()
        raise DVConnectionLost("no cluster node reachable for stats")

    def cluster_status(self) -> dict:
        """Ring/membership view plus cluster metrics of a live node."""
        return self._any_node_call({"op": "cluster"})

    def ha_status(self) -> dict:
        """Replication view (factor, per-context replica sets, lag, last
        promotion) plus ``repl.*`` metrics of a live node."""
        return self._any_node_call({"op": "ha"})

    def _any_node_call(self, message: dict) -> dict:
        for conn in list(self._conns.values()):
            if not conn.is_lost:
                return conn.call(dict(message))
        self._refresh_ring()
        for conn in list(self._conns.values()):
            if not conn.is_lost:
                return conn.call(dict(message))
        raise DVConnectionLost("no cluster node reachable")

    def storage_path(self, context: str, filename: str) -> str:
        import os

        return os.path.join(self._storage_dirs[context], filename)

    def restart_dir(self, context: str) -> str:
        return self._restart_dirs[context]
