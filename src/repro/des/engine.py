"""Deterministic discrete-event engine.

A minimal priority-queue scheduler: events fire in (time, sequence) order,
so runs are exactly reproducible.  The DES hosts the *same* coordinator,
cache, and prefetch-agent code as the real DV daemon; only the executor and
the clock differ (DESIGN.md Sec. 6), which is what lets a 600-second
restart latency cost microseconds of wall time in the Figs. 16-19
experiments.

Cancelled events stay in the heap as *tombstones* (removing an arbitrary
heap entry is O(n)); they are skipped when popped.  Prefetch-heavy virtual
experiments cancel a lot — every kill of a speculative re-simulation
tombstones its production events — so the engine compacts the heap
whenever tombstones outnumber live events, keeping long runs from
accumulating dead entries (and ``pending`` is O(1) bookkeeping, not a
scan).
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.core.errors import InvalidArgumentError

__all__ = ["EventHandle", "DESEngine"]

#: Below this queue size compaction is pointless churn.
_COMPACT_MIN_QUEUE = 64


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    #: Left the queue already (fired, skipped, or compacted away) — a
    #: late ``cancel()`` on such an event must not touch the tombstone
    #: accounting.
    departed: bool = field(default=False, compare=False)


@dataclass
class EventHandle:
    """Cancellable reference to a scheduled event."""

    _event: _Event
    _engine: "DESEngine | None" = None

    def cancel(self) -> None:
        if self._event.cancelled:
            return
        self._event.cancelled = True
        if self._engine is not None and not self._event.departed:
            self._engine._note_cancelled()

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time(self) -> float:
        return self._event.time


class DESEngine:
    """Event queue with a virtual clock (implements the ``Clock`` protocol)."""

    def __init__(self) -> None:
        self._queue: list[_Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._tombstones = 0  # cancelled events still sitting in the heap
        self.events_processed = 0
        self.compactions = 0

    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise InvalidArgumentError(f"delay must be >= 0, got {delay}")
        event = _Event(self._now + delay, next(self._seq), callback)
        heapq.heappush(self._queue, event)
        return EventHandle(event, self)

    def schedule_at(self, when: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute virtual time ``when``."""
        if when < self._now:
            raise InvalidArgumentError(
                f"cannot schedule in the past ({when} < {self._now})"
            )
        event = _Event(when, next(self._seq), callback)
        heapq.heappush(self._queue, event)
        return EventHandle(event, self)

    def step(self) -> bool:
        """Fire the next event; returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            event.departed = True
            if event.cancelled:
                self._tombstones -= 1
                continue
            self._now = event.time
            self.events_processed += 1
            event.callback()
            return True
        return False

    def run(self, until: float | None = None, max_events: int = 10_000_000) -> float:
        """Run until the queue drains (or ``until``/``max_events`` hits);
        returns the final virtual time."""
        fired = 0
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                head.departed = True
                self._tombstones -= 1
                continue
            if until is not None and head.time > until:
                self._now = until
                break
            if fired >= max_events:
                raise RuntimeError(
                    f"DES exceeded {max_events} events; runaway simulation?"
                )
            self.step()
            fired += 1
        return self._now

    @property
    def pending(self) -> int:
        """Events still queued, excluding cancelled tombstones."""
        return len(self._queue) - self._tombstones

    # ------------------------------------------------------------------ #
    def _note_cancelled(self) -> None:
        """An in-queue event was cancelled; compact when dead weight wins."""
        self._tombstones += 1
        if (
            len(self._queue) >= _COMPACT_MIN_QUEUE
            and self._tombstones * 2 > len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without tombstones (O(live) instead of the
        O(total log total) the dead entries would cost over time)."""
        for event in self._queue:
            if event.cancelled:
                event.departed = True
        self._queue = [e for e in self._queue if not e.cancelled]
        heapq.heapify(self._queue)
        self._tombstones = 0
        self.compactions += 1
