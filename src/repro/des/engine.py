"""Deterministic discrete-event engine.

A minimal priority-queue scheduler: events fire in (time, sequence) order,
so runs are exactly reproducible.  The DES hosts the *same* coordinator,
cache, and prefetch-agent code as the real DV daemon; only the executor and
the clock differ (DESIGN.md Sec. 6), which is what lets a 600-second
restart latency cost microseconds of wall time in the Figs. 16-19
experiments.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.core.errors import InvalidArgumentError

__all__ = ["EventHandle", "DESEngine"]


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


@dataclass
class EventHandle:
    """Cancellable reference to a scheduled event."""

    _event: _Event

    def cancel(self) -> None:
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time(self) -> float:
        return self._event.time


class DESEngine:
    """Event queue with a virtual clock (implements the ``Clock`` protocol)."""

    def __init__(self) -> None:
        self._queue: list[_Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self.events_processed = 0

    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise InvalidArgumentError(f"delay must be >= 0, got {delay}")
        event = _Event(self._now + delay, next(self._seq), callback)
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def schedule_at(self, when: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute virtual time ``when``."""
        if when < self._now:
            raise InvalidArgumentError(
                f"cannot schedule in the past ({when} < {self._now})"
            )
        event = _Event(when, next(self._seq), callback)
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def step(self) -> bool:
        """Fire the next event; returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self.events_processed += 1
            event.callback()
            return True
        return False

    def run(self, until: float | None = None, max_events: int = 10_000_000) -> float:
        """Run until the queue drains (or ``until``/``max_events`` hits);
        returns the final virtual time."""
        fired = 0
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and head.time > until:
                self._now = until
                break
            if fired >= max_events:
                raise RuntimeError(
                    f"DES exceeded {max_events} events; runaway simulation?"
                )
            self.step()
            fired += 1
        return self._now

    @property
    def pending(self) -> int:
        """Events still queued (including cancelled tombstones)."""
        return sum(1 for e in self._queue if not e.cancelled)
