"""Virtual-time experiment runners for the paper's Sec. VI figures.

* :func:`scaling_experiment` — Figs. 16/18: analysis completion time as a
  function of ``smax`` (the cap on concurrent re-simulations), for forward
  and backward trajectories, against the full-forward-re-simulation
  reference ``T_single``.
* :func:`latency_experiment` — Figs. 17/19: analysis completion time under
  swept restart latencies ``αsim`` and analysis lengths ``m``, with the
  analytic ``T_pre``/``T_single``/``T_lower`` overlays of Sec. IV-C.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.context import ContextConfig, SimulationContext
from repro.core.errors import InvalidArgumentError
from repro.core.perfmodel import PerformanceModel
from repro.des.components import VirtualSimFS
from repro.prefetch import planner
from repro.simulators import SyntheticDriver

__all__ = ["ScalingPoint", "LatencyPoint", "scaling_experiment", "latency_experiment"]


@dataclass(frozen=True)
class ScalingPoint:
    """One bar of a strong-scaling figure (16/18)."""

    smax: int
    direction: str
    running_time: float
    full_forward_time: float
    misses: int
    restarts: int

    @property
    def speedup(self) -> float:
        """Scaling factor w.r.t. the full forward re-simulation."""
        return self.full_forward_time / self.running_time


@dataclass(frozen=True)
class LatencyPoint:
    """One point of a prefetching-under-latency figure (17/19)."""

    alpha_sim: float
    m: int
    running_time: float
    t_single: float
    t_lower: float
    t_pre: float


def _make_context(
    config: ContextConfig, perf: PerformanceModel, alpha_override: float | None = None
) -> SimulationContext:
    if alpha_override is not None:
        from dataclasses import replace

        perf = replace(perf, alpha_sim=alpha_override)
    driver = SyntheticDriver(config.geometry, prefix=config.name, cells=4)
    return SimulationContext(config=config, driver=driver, perf=perf)


def _run_analysis(
    context: SimulationContext,
    keys: list[int],
    tau_cli: float,
) -> tuple[float, int, int]:
    """Run one analysis to completion; returns (time, misses, restarts)."""
    simfs = VirtualSimFS()
    simfs.add_context(context)
    analysis = simfs.add_analysis(context, keys, tau_cli)
    simfs.run()
    if not analysis.done:
        raise RuntimeError(
            "analysis did not finish: DES queue drained with "
            f"{analysis._idx}/{len(keys)} accesses served"
        )
    return (
        analysis.running_time,
        analysis.miss_count,
        simfs.coordinator.total_restarts,
    )


def scaling_experiment(
    config: ContextConfig,
    perf: PerformanceModel,
    m: int,
    smax_values: tuple[int, ...] = (2, 4, 8, 16),
    tau_cli: float = 0.1,
    directions: tuple[str, ...] = ("forward", "backward"),
    start_key: int = 1,
) -> list[ScalingPoint]:
    """Figs. 16/18: completion time vs. ``smax``, forward and backward.

    The analysis accesses ``m`` output steps starting at ``start_key``
    (ascending or descending over the same set), with an empty cache —
    every interval must be re-simulated.
    """
    if m < 1:
        raise InvalidArgumentError(f"m must be >= 1, got {m}")
    t_single = planner.single_simulation_time(perf.alpha_sim, perf.tau_sim, m)
    points = []
    for smax in smax_values:
        for direction in directions:
            if direction == "forward":
                keys = list(range(start_key, start_key + m))
            elif direction == "backward":
                keys = list(range(start_key + m - 1, start_key - 1, -1))
            else:
                raise InvalidArgumentError(f"unknown direction {direction!r}")
            context = _make_context(config.with_overrides(smax=smax), perf)
            time, misses, restarts = _run_analysis(context, keys, tau_cli)
            points.append(
                ScalingPoint(
                    smax=smax,
                    direction=direction,
                    running_time=time,
                    full_forward_time=t_single,
                    misses=misses,
                    restarts=restarts,
                )
            )
    return points


def latency_experiment(
    config: ContextConfig,
    perf: PerformanceModel,
    alpha_values: tuple[float, ...],
    m_values: tuple[int, ...],
    smax: int = 8,
    tau_cli: float = 0.1,
    start_key: int = 1,
) -> list[LatencyPoint]:
    """Figs. 17/19: forward analysis time under swept restart latencies.

    Uses the synthetic simulator exactly as the paper does ("we use a
    synthetic simulator that can be configured to produce output steps at a
    given rate and after a given restart latency"), keeping the production
    rate of the calibrated context.
    """
    geo = config.geometry
    points = []
    for m in m_values:
        for alpha in alpha_values:
            context = _make_context(
                config.with_overrides(smax=smax), perf, alpha_override=alpha
            )
            keys = list(range(start_key, start_key + m))
            time, _misses, _restarts = _run_analysis(context, keys, tau_cli)
            n = planner.forward_resim_length(
                alpha, perf.tau_sim, tau_cli, 1, geo
            )
            points.append(
                LatencyPoint(
                    alpha_sim=alpha,
                    m=m,
                    running_time=time,
                    t_single=planner.single_simulation_time(
                        alpha, perf.tau_sim, m
                    ),
                    t_lower=planner.lower_bound_time(
                        alpha, perf.tau_sim, m, smax
                    ),
                    t_pre=planner.forward_warmup_time(
                        alpha, perf.tau_sim, n, geo
                    ),
                )
            )
    return points
