"""Virtual-time SimFS: the DV coordinator wired to the DES engine.

:class:`DESExecutor` interprets a launched re-simulation as a stream of
production events — the first output after ``αsim(p) + τsim(p)`` virtual
seconds, then one every ``τsim(p)`` — optionally adding stochastic batch
queueing delay (Sec. IV-C1c).  :class:`VirtualAnalysis` models an analysis
process with inter-access time ``τcli``: it opens files through the very
same ``DVCoordinator.handle_open`` the TCP daemon uses, blocks on misses
until the notification arrives, and records its completion time.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.core.context import SimulationContext
from repro.core.errors import InvalidArgumentError
from repro.des.engine import DESEngine, EventHandle
from repro.dv.coordinator import DVCoordinator, Notification, RunningSim
from repro.metrics import MetricsRegistry

__all__ = ["DESExecutor", "VirtualAnalysis", "VirtualSimFS"]


class DESExecutor:
    """`SimulationExecutor` producing output files on the virtual clock."""

    def __init__(
        self,
        engine: DESEngine,
        queue_delay: Callable[[], float] | None = None,
    ) -> None:
        self.engine = engine
        self.coordinator: DVCoordinator | None = None
        self._contexts: dict[str, SimulationContext] = {}
        self._events: dict[int, list[EventHandle]] = {}
        #: extra restart latency per job (models batch queueing time)
        self._queue_delay = queue_delay or (lambda: 0.0)

    def bind(self, coordinator: DVCoordinator) -> None:
        self.coordinator = coordinator

    def register_context(self, context: SimulationContext) -> None:
        self._contexts[context.name] = context

    # -- SimulationExecutor ------------------------------------------------#
    def launch(self, context: SimulationContext, sim: RunningSim) -> None:
        assert self.coordinator is not None, "executor not bound"
        perf = context.perf
        tau = perf.tau(sim.parallelism_level)
        alpha = perf.alpha(sim.parallelism_level) + max(0.0, self._queue_delay())
        handles = []
        for position, key in enumerate(sim.planned_keys, start=1):
            filename = context.filename_of(key)
            handles.append(
                self.engine.schedule(
                    alpha + position * tau,
                    self._make_production(context.name, sim.sim_id, filename),
                )
            )
        # Completion is signalled unconditionally after the last production
        # (real mode does the same when driver.execute returns).  Relying
        # on per-key attribution alone deadlocks when overlapping sims
        # produce each other's planned keys: nobody reaches `done`, the
        # smax slots never free, and queued jobs starve.
        done_at = alpha + len(sim.planned_keys) * tau
        handles.append(
            self.engine.schedule(
                done_at,
                lambda: self.coordinator.sim_completed(
                    context.name, sim.sim_id, self.engine.now()
                ),
            )
        )
        self._events[sim.sim_id] = handles

    def kill(self, sim_id: int) -> None:
        for handle in self._events.pop(sim_id, []):
            handle.cancel()

    # ----------------------------------------------------------------------#
    def _make_production(self, context_name: str, sim_id: int, filename: str):
        def produce() -> None:
            assert self.coordinator is not None
            self.coordinator.sim_file_closed(
                context_name, filename, self.engine.now()
            )

        return produce


class VirtualAnalysis:
    """An analysis process in virtual time.

    Accesses ``keys`` in order with inter-access processing time ``tau_cli``:
    each access opens the file through the coordinator; a miss blocks until
    the DV's ready notification.  The previously processed file is released
    when the next access is issued (the analysis holds one file at a time,
    like the paper's sequential mean/variance analysis).
    """

    def __init__(
        self,
        engine: DESEngine,
        coordinator: DVCoordinator,
        context: SimulationContext,
        client_id: str,
        keys: Sequence[int],
        tau_cli: float,
    ) -> None:
        if tau_cli <= 0:
            raise InvalidArgumentError(f"tau_cli must be > 0, got {tau_cli}")
        if not keys:
            raise InvalidArgumentError("analysis needs at least one access")
        self.engine = engine
        self.coordinator = coordinator
        self.context = context
        self.client_id = client_id
        self.keys = list(keys)
        self.tau_cli = tau_cli
        self._idx = 0
        self._waiting_for: str | None = None
        self._held: str | None = None
        self.start_time: float | None = None
        self.finish_time: float | None = None
        self.miss_count = 0
        self.hit_count = 0
        self.wait_time = 0.0
        self._wait_started = 0.0

    @property
    def done(self) -> bool:
        return self.finish_time is not None

    @property
    def running_time(self) -> float:
        if self.start_time is None or self.finish_time is None:
            raise InvalidArgumentError("analysis has not completed")
        return self.finish_time - self.start_time

    # ----------------------------------------------------------------------#
    def start(self, at: float = 0.0) -> None:
        self.coordinator.client_connect(self.client_id, self.context.name)
        self.engine.schedule_at(at, self._issue_access)

    def on_notification(self, notification: Notification) -> None:
        """Wired by :class:`VirtualSimFS`: the DV says a file is ready."""
        if notification.filename != self._waiting_for:
            return
        self._waiting_for = None
        self.wait_time += self.engine.now() - self._wait_started
        if not notification.ok:
            raise RuntimeError(
                f"re-simulation failed for {notification.filename}"
            )
        self._file_served(notification.filename)

    # ----------------------------------------------------------------------#
    def _issue_access(self) -> None:
        if self.start_time is None:
            self.start_time = self.engine.now()
        if self._held is not None:
            self.coordinator.handle_release(
                self.client_id, self.context.name, self._held, self.engine.now()
            )
            self._held = None
        if self._idx >= len(self.keys):
            self.finish_time = self.engine.now()
            self.coordinator.client_disconnect(
                self.client_id, self.context.name, self.engine.now()
            )
            return
        key = self.keys[self._idx]
        filename = self.context.filename_of(key)
        result = self.coordinator.handle_open(
            self.client_id, self.context.name, filename, self.engine.now()
        )
        if result.available:
            self.hit_count += 1
            self._file_served(filename)
        else:
            self.miss_count += 1
            self._waiting_for = filename
            self._wait_started = self.engine.now()

    def _file_served(self, filename: str) -> None:
        """File on disk: process it for ``tau_cli``, then move on."""
        self._held = filename
        self._idx += 1
        self.engine.schedule(self.tau_cli, self._issue_access)


@dataclass
class VirtualSimFS:
    """Bundle of engine + coordinator + executor with analysis routing."""

    engine: DESEngine = field(default_factory=DESEngine)
    queue_delay: Callable[[], float] | None = None

    def __post_init__(self) -> None:
        self.executor = DESExecutor(self.engine, self.queue_delay)
        self.metrics = MetricsRegistry()
        self.coordinator = DVCoordinator(
            self.executor, notify=self._route, metrics=self.metrics
        )
        self.executor.bind(self.coordinator)
        self._analyses: dict[str, VirtualAnalysis] = {}

    def add_context(self, context: SimulationContext) -> None:
        self.coordinator.register_context(context)
        self.executor.register_context(context)

    def add_analysis(
        self,
        context: SimulationContext,
        keys: Sequence[int],
        tau_cli: float,
        client_id: str | None = None,
        start_at: float = 0.0,
    ) -> VirtualAnalysis:
        client_id = client_id or f"analysis-{len(self._analyses) + 1}"
        analysis = VirtualAnalysis(
            self.engine, self.coordinator, context, client_id, keys, tau_cli
        )
        self._analyses[client_id] = analysis
        analysis.start(start_at)
        return analysis

    def run(self, until: float | None = None) -> float:
        return self.engine.run(until=until)

    def stats(self) -> dict:
        """The same metrics-plane snapshot the TCP daemon serves over the
        ``stats`` op — one logic, two deployments includes observability."""
        return self.coordinator.stats_snapshot()

    def _route(self, notification: Notification) -> None:
        analysis = self._analyses.get(notification.client_id)
        if analysis is not None:
            analysis.on_notification(notification)
