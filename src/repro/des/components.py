"""Virtual-time SimFS: the DV coordinator wired to the DES engine.

:class:`DESExecutor` interprets a launched re-simulation as a stream of
production events — the first output after ``αsim(p) + τsim(p)`` virtual
seconds, then one every ``τsim(p)`` — optionally adding stochastic batch
queueing delay (Sec. IV-C1c).  :class:`VirtualAnalysis` models an analysis
process with inter-access time ``τcli``: it opens files through the very
same ``DVCoordinator.handle_open`` the TCP daemon uses, blocks on misses
until the notification arrives, and records its completion time.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import itertools

from repro.cluster.autoscaler import (
    AutoscalerPolicy,
    Migrate,
    NodeLoad,
    ScaleDown,
    ScaleUp,
)
from repro.cluster.membership import PeerTable
from repro.cluster.ring import HashRing
from repro.core.context import SimulationContext
from repro.core.errors import ContextError, InvalidArgumentError
from repro.data.scheduler import PRIO_BULK, PRIO_CONTROL, max_min_rates
from repro.des.engine import DESEngine, EventHandle
from repro.dv.coordinator import DVCoordinator, Notification, RunningSim
from repro.metrics import MetricsRegistry
from repro.obs import SpanRecorder

__all__ = [
    "DESExecutor",
    "VirtualAnalysis",
    "VirtualSimFS",
    "VirtualClusterNode",
    "VirtualCluster",
    "VirtualAutoscaler",
    "VirtualTransfer",
    "VirtualDataPlane",
]


class DESExecutor:
    """`SimulationExecutor` producing output files on the virtual clock."""

    def __init__(
        self,
        engine: DESEngine,
        queue_delay: Callable[[], float] | None = None,
    ) -> None:
        self.engine = engine
        self.coordinator: DVCoordinator | None = None
        self._contexts: dict[str, SimulationContext] = {}
        self._events: dict[int, list[EventHandle]] = {}
        #: per-sim production schedule in absolute virtual time, kept so
        #: a migration can re-home the remaining work (see ``handoff``)
        self._plans: dict[int, dict] = {}
        #: extra restart latency per job (models batch queueing time)
        self._queue_delay = queue_delay or (lambda: 0.0)

    def bind(self, coordinator: DVCoordinator) -> None:
        self.coordinator = coordinator

    def register_context(self, context: SimulationContext) -> None:
        self._contexts[context.name] = context

    # -- SimulationExecutor ------------------------------------------------#
    def launch(self, context: SimulationContext, sim: RunningSim) -> None:
        assert self.coordinator is not None, "executor not bound"
        perf = context.perf
        tau = perf.tau(sim.parallelism_level)
        alpha = perf.alpha(sim.parallelism_level) + max(0.0, self._queue_delay())
        handles = []
        for position, key in enumerate(sim.planned_keys, start=1):
            filename = context.filename_of(key)
            handles.append(
                self.engine.schedule(
                    alpha + position * tau,
                    self._make_production(context.name, sim.sim_id, filename),
                )
            )
        # Completion is signalled unconditionally after the last production
        # (real mode does the same when driver.execute returns).  Relying
        # on per-key attribution alone deadlocks when overlapping sims
        # produce each other's planned keys: nobody reaches `done`, the
        # smax slots never free, and queued jobs starve.
        done_at = alpha + len(sim.planned_keys) * tau
        handles.append(
            self.engine.schedule(
                done_at,
                lambda: self.coordinator.sim_completed(
                    context.name, sim.sim_id, self.engine.now()
                ),
            )
        )
        self._events[sim.sim_id] = handles
        now = self.engine.now()
        self._plans[sim.sim_id] = {
            "context": context.name,
            "productions": [
                (now + alpha + position * tau, context.filename_of(key))
                for position, key in enumerate(sim.planned_keys, start=1)
            ],
            "done_at": now + done_at,
        }

    def kill(self, sim_id: int) -> None:
        for handle in self._events.pop(sim_id, []):
            handle.cancel()
        self._plans.pop(sim_id, None)

    def handoff(self, sim_id: int, new_sim_id: int,
                dest: "DESExecutor") -> None:
        """Re-home a running sim onto ``dest`` (a migration destination's
        executor) under a fresh id: the remaining productions keep their
        absolute completion times — the simulation *resumes*, it does not
        restart."""
        for handle in self._events.pop(sim_id, []):
            handle.cancel()
        plan = self._plans.pop(sim_id, None)
        if plan is None:
            return
        now = self.engine.now()
        remaining = [(at, fn) for at, fn in plan["productions"] if at >= now]
        handles = [
            dest.engine.schedule(
                at - now,
                dest._make_production(plan["context"], new_sim_id, filename),
            )
            for at, filename in remaining
        ]
        handles.append(dest.engine.schedule(
            max(plan["done_at"] - now, 0.0),
            lambda: dest.coordinator.sim_completed(
                plan["context"], new_sim_id, dest.engine.now()
            ),
        ))
        dest._events[new_sim_id] = handles
        dest._plans[new_sim_id] = {
            "context": plan["context"],
            "productions": remaining,
            "done_at": plan["done_at"],
        }

    # ----------------------------------------------------------------------#
    def _make_production(self, context_name: str, sim_id: int, filename: str):
        def produce() -> None:
            assert self.coordinator is not None
            self.coordinator.sim_file_closed(
                context_name, filename, self.engine.now()
            )

        return produce


class VirtualAnalysis:
    """An analysis process in virtual time.

    Accesses ``keys`` in order with inter-access processing time ``tau_cli``:
    each access opens the file through the coordinator; a miss blocks until
    the DV's ready notification.  The previously processed file is released
    when the next access is issued (the analysis holds one file at a time,
    like the paper's sequential mean/variance analysis).
    """

    def __init__(
        self,
        engine: DESEngine,
        coordinator: DVCoordinator,
        context: SimulationContext,
        client_id: str,
        keys: Sequence[int],
        tau_cli: float,
    ) -> None:
        if tau_cli <= 0:
            raise InvalidArgumentError(f"tau_cli must be > 0, got {tau_cli}")
        if not keys:
            raise InvalidArgumentError("analysis needs at least one access")
        self.engine = engine
        self.coordinator = coordinator
        self.context = context
        self.client_id = client_id
        self.keys = list(keys)
        self.tau_cli = tau_cli
        self._idx = 0
        self._waiting_for: str | None = None
        self._held: str | None = None
        self.start_time: float | None = None
        self.finish_time: float | None = None
        self.miss_count = 0
        self.hit_count = 0
        self.wait_time = 0.0
        self._wait_started = 0.0
        #: per-access open latency (0.0 for hits, the blocked time for
        #: misses) — the series SLO checks take percentiles over
        self.open_latencies: list[float] = []

    @property
    def done(self) -> bool:
        return self.finish_time is not None

    @property
    def running_time(self) -> float:
        if self.start_time is None or self.finish_time is None:
            raise InvalidArgumentError("analysis has not completed")
        return self.finish_time - self.start_time

    # ----------------------------------------------------------------------#
    def start(self, at: float = 0.0) -> None:
        self.coordinator.client_connect(self.client_id, self.context.name)
        self.engine.schedule_at(at, self._issue_access)

    def on_notification(self, notification: Notification) -> None:
        """Wired by :class:`VirtualSimFS`: the DV says a file is ready."""
        if notification.filename != self._waiting_for:
            return
        self._waiting_for = None
        waited = self.engine.now() - self._wait_started
        self.wait_time += waited
        self.open_latencies.append(waited)
        if not notification.ok:
            raise RuntimeError(
                f"re-simulation failed for {notification.filename}"
            )
        self._file_served(notification.filename)

    # ----------------------------------------------------------------------#
    def _issue_access(self) -> None:
        if self.start_time is None:
            self.start_time = self.engine.now()
        if self._held is not None:
            self.coordinator.handle_release(
                self.client_id, self.context.name, self._held, self.engine.now()
            )
            self._held = None
        if self._idx >= len(self.keys):
            self.finish_time = self.engine.now()
            self.coordinator.client_disconnect(
                self.client_id, self.context.name, self.engine.now()
            )
            return
        key = self.keys[self._idx]
        filename = self.context.filename_of(key)
        result = self.coordinator.handle_open(
            self.client_id, self.context.name, filename, self.engine.now()
        )
        if result.available:
            self.hit_count += 1
            self.open_latencies.append(0.0)
            self._file_served(filename)
        else:
            self.miss_count += 1
            self._waiting_for = filename
            self._wait_started = self.engine.now()

    def _file_served(self, filename: str) -> None:
        """File on disk: process it for ``tau_cli``, then move on."""
        self._held = filename
        self._idx += 1
        self.engine.schedule(self.tau_cli, self._issue_access)


@dataclass
class VirtualSimFS:
    """Bundle of engine + coordinator + executor with analysis routing."""

    engine: DESEngine = field(default_factory=DESEngine)
    queue_delay: Callable[[], float] | None = None

    def __post_init__(self) -> None:
        self.executor = DESExecutor(self.engine, self.queue_delay)
        self.metrics = MetricsRegistry()
        self.coordinator = DVCoordinator(
            self.executor, notify=self._route, metrics=self.metrics
        )
        self.executor.bind(self.coordinator)
        self._analyses: dict[str, VirtualAnalysis] = {}

    def add_context(self, context: SimulationContext) -> None:
        self.coordinator.register_context(context)
        self.executor.register_context(context)

    def add_analysis(
        self,
        context: SimulationContext,
        keys: Sequence[int],
        tau_cli: float,
        client_id: str | None = None,
        start_at: float = 0.0,
    ) -> VirtualAnalysis:
        client_id = client_id or f"analysis-{len(self._analyses) + 1}"
        analysis = VirtualAnalysis(
            self.engine, self.coordinator, context, client_id, keys, tau_cli
        )
        self._analyses[client_id] = analysis
        analysis.start(start_at)
        return analysis

    def run(self, until: float | None = None) -> float:
        return self.engine.run(until=until)

    def stats(self) -> dict:
        """The same metrics-plane snapshot the TCP daemon serves over the
        ``stats`` op — one logic, two deployments includes observability."""
        return self.coordinator.stats_snapshot()

    def _route(self, notification: Notification) -> None:
        analysis = self._analyses.get(notification.client_id)
        if analysis is not None:
            analysis.on_notification(notification)


# --------------------------------------------------------------------- #
# Virtual cluster: the cluster tier on the virtual clock
# --------------------------------------------------------------------- #
class VirtualClusterNode:
    """One virtual DV daemon: its own coordinator + executor on the
    shared engine, plus an aliveness flag the failure schedule flips."""

    def __init__(
        self,
        node_id: str,
        engine: DESEngine,
        notify: Callable[[Notification], None],
        queue_delay: Callable[[], float] | None = None,
    ) -> None:
        self.node_id = node_id
        self.alive = True
        self.executor = DESExecutor(engine, queue_delay)
        self.metrics = MetricsRegistry()
        self.coordinator = DVCoordinator(
            self.executor, notify=notify, metrics=self.metrics
        )
        self.executor.bind(self.coordinator)
        # Same span structure as the live daemon, stamped in virtual time.
        # Always-sampled, no tail threshold: the DES is for asserting
        # critical-path composition, not for bounding overhead.
        self.obs = SpanRecorder(
            node=node_id,
            head_rate=1.0,
            slow_threshold=float("inf"),
            clock=engine.now,
        )


class _ClusterRouter:
    """The coordinator-shaped object a :class:`VirtualAnalysis` drives
    when it runs against a :class:`VirtualCluster`: every call is routed
    to the context's *current* owner, so analyses transparently follow
    failovers.  Forwarded calls (ingress != owner) are counted — the
    cluster's ``fwd_ratio`` statistic."""

    def __init__(self, cluster: "VirtualCluster", ingress: str | None) -> None:
        self._cluster = cluster
        self._ingress = ingress

    def _coordinator(self, context_name: str) -> DVCoordinator:
        cluster = self._cluster
        owner = cluster.ring.owner(context_name)
        if owner is None:
            raise ContextError("virtual cluster has no live nodes")
        if self._ingress is not None and self._ingress != owner:
            cluster.forwarded_ops += 1
        cluster.total_ops += 1
        return cluster.nodes[owner].coordinator

    def client_connect(self, client_id: str, context_name: str) -> None:
        self._coordinator(context_name).client_connect(client_id, context_name)
        self._cluster._attachments.setdefault(client_id, set()).add(context_name)

    def client_disconnect(
        self, client_id: str, context_name: str, now: float
    ) -> None:
        self._coordinator(context_name).client_disconnect(
            client_id, context_name, now
        )
        self._cluster._attachments.get(client_id, set()).discard(context_name)

    def handle_open(self, client_id: str, context_name: str, filename: str, now: float):
        cluster = self._cluster
        result = self._coordinator(context_name).handle_open(
            client_id, context_name, filename, now
        )
        # The virtual mirror of the daemon's dispatch span: every open
        # starts a sampled trace on the owning node; a miss's blocked
        # window becomes a ``sim.wait`` span when the notification fires.
        owner = cluster.ring.owner(context_name)
        node = cluster.nodes[owner]
        tc = node.obs.start_trace(sampled=True)
        cluster.last_trace_id = f"{tc.trace_id:016x}"
        node.obs.record(
            "op.open", tc, now, cluster.engine.now(),
            context=context_name, file=filename, available=result.available,
        )
        if not result.available:
            # Remember when the wait began: at failure time this decides
            # whether the waiter had already reached a replica (older
            # than repl_lag -> hot replay) or was still in flight.
            key = (client_id, context_name, filename)
            self._cluster._wait_started_at[key] = now
            self._cluster._wait_tc[key] = tc
        return result

    def handle_release(
        self, client_id: str, context_name: str, filename: str, now: float
    ) -> None:
        self._coordinator(context_name).handle_release(
            client_id, context_name, filename, now
        )


class VirtualCluster:
    """The DV cluster tier in virtual time (Sec. IV methodology applied
    to the cluster design): the *same* :class:`~repro.cluster.ring.HashRing`
    and :class:`~repro.cluster.membership.PeerTable` logic the TCP
    :class:`~repro.cluster.node.ClusterNode` runs, driven by the DES
    engine — so node-count sweeps, failure schedules and skewed context
    popularity can be explored without standing up daemons.

    Modeling choices (kept deliberately explicit):

    * Each node is a :class:`VirtualClusterNode` with its own coordinator;
      contexts are registered on their ring owner.
    * An analysis enters through an ``ingress`` node; when the ingress is
      not the owner, every access pays ``2 * hop_latency`` extra client
      time (the gateway round trip), folded into its ``tau_cli``.
    * A scheduled failure kills the node's running simulations, drops its
      shard state (the node-local cache is lost), and re-registers its
      contexts on the ring's new owners immediately; the **waiter replay**
      — re-issuing the opens that were blocked on the dead node — happens
      ``detect_delay`` later, modeling failure-detection time.  Blocked
      analyses therefore resume after detection instead of hanging,
      exactly the live tier's failover contract.
    * With ``replication_factor > 1`` the HA tier is mirrored: each
      context's owner streams state to its ring successors.  A waiter
      blocked for at least ``repl_lag`` virtual seconds has reached the
      replica when the owner dies, so the first live successor promotes
      and replays it after only ``promote_delay`` (the hot path — no
      client retry).  Younger waiters were still in flight and fall back
      to the cold ``detect_delay`` replay; they are counted as
      ``lost_waiters``.  After any membership change, under-replicated
      contexts heal back to full factor sequentially at ``heal_rate``
      contexts per virtual second (the healing bandwidth) — a second
      failure that lands before healing completes finds no synced
      replica and degrades to the cold path, exactly the live tier's
      double-failure behavior.
    """

    def __init__(
        self,
        node_ids: Sequence[str] = ("n1", "n2", "n3"),
        engine: DESEngine | None = None,
        vnodes: int = 32,
        hop_latency: float = 0.0,
        detect_delay: float = 1.0,
        queue_delay: Callable[[], float] | None = None,
        replication_factor: int = 1,
        repl_lag: float = 0.05,
        promote_delay: float = 0.1,
        heal_rate: float = 10.0,
    ) -> None:
        if not node_ids:
            raise InvalidArgumentError("virtual cluster needs >= 1 node")
        if replication_factor < 1:
            raise InvalidArgumentError(
                f"replication_factor must be >= 1, got {replication_factor}"
            )
        if heal_rate <= 0:
            raise InvalidArgumentError(
                f"heal_rate must be > 0, got {heal_rate}"
            )
        self.engine = engine or DESEngine()
        self.hop_latency = hop_latency
        self.detect_delay = detect_delay
        self.replication_factor = replication_factor
        self.repl_lag = repl_lag
        self.promote_delay = promote_delay
        self.heal_rate = heal_rate
        self.ring = HashRing(vnodes)
        # The DES drives the same PeerTable liveness logic as the TCP
        # node; its self-id is a synthetic observer (a PeerTable refuses
        # death verdicts about itself, and every *real* node here must be
        # killable — including the first).
        self.table = PeerTable("__des-observer__", "virtual", 0)
        self.nodes: dict[str, VirtualClusterNode] = {}
        for node_id in node_ids:
            self.nodes[node_id] = VirtualClusterNode(
                node_id, self.engine, self._route, queue_delay
            )
            self.ring.add_node(node_id)
            self.table.upsert(node_id, "virtual", 0)
        self._specs: dict[str, SimulationContext] = {}
        self._located: dict[str, str] = {}  # context -> hosting node
        self._analyses: dict[str, VirtualAnalysis] = {}
        self._attachments: dict[str, set[str]] = {}
        self.forwarded_ops = 0
        self.total_ops = 0
        self.failovers = 0
        self.replayed_waits = 0
        #: per-context count of replicas currently in sync with the owner
        self._replicas_ok: dict[str, int] = {}
        #: (client, context, filename) -> virtual time the wait started
        self._wait_started_at: dict[tuple[str, str, str], float] = {}
        #: (client, context, filename) -> trace context of the blocked
        #: open, resolved into a ``sim.wait`` span when it unblocks
        self._wait_tc: dict[tuple[str, str, str], object] = {}
        #: trace id of the most recent traced open / migration — the DES
        #: scenario's handle into :meth:`trace`
        self.last_trace_id: str | None = None
        self.promotions = 0
        self.hot_restored_waiters = 0
        self.lost_waiters = 0
        self.healed = 0
        self._queue_delay = queue_delay
        self.migrations = 0
        self.migrated_waiters = 0
        self.resumed_sims = 0
        self.joined = 0
        self.drained = 0

    # ------------------------------------------------------------------ #
    def _target_replicas(self) -> int:
        return min(self.replication_factor - 1, max(0, len(self.ring) - 1))

    def add_context(self, context: SimulationContext) -> None:
        owner = self.ring.owner(context.name)
        self._specs[context.name] = context
        self._register_on(context.name, owner)
        # Contexts start fully replicated (anti-entropy converged long
        # before the scenario's first failure).
        self._replicas_ok[context.name] = self._target_replicas()

    def _register_on(self, context_name: str, node_id: str) -> None:
        node = self.nodes[node_id]
        node.coordinator.register_context(self._specs[context_name])
        node.executor.register_context(self._specs[context_name])
        self._located[context_name] = node_id

    def owner_of(self, context_name: str) -> str | None:
        return self.ring.owner(context_name)

    def add_analysis(
        self,
        context: SimulationContext,
        keys: Sequence[int],
        tau_cli: float,
        ingress: str | None = None,
        client_id: str | None = None,
        start_at: float = 0.0,
    ) -> VirtualAnalysis:
        """Start an analysis entering the cluster at ``ingress`` (owner
        by default — the cluster-aware client's one-hop steady state)."""
        client_id = client_id or f"analysis-{len(self._analyses) + 1}"
        owner = self.ring.owner(context.name)
        forwarded = ingress is not None and ingress != owner
        effective_tau = tau_cli + (2 * self.hop_latency if forwarded else 0.0)
        router = _ClusterRouter(self, ingress)
        analysis = VirtualAnalysis(
            self.engine, router, context, client_id, keys, effective_tau
        )
        self._analyses[client_id] = analysis
        analysis.start(start_at)
        return analysis

    # ------------------------------------------------------------------ #
    # Failure schedule
    # ------------------------------------------------------------------ #
    def schedule_failure(self, node_id: str, at: float) -> None:
        """Kill ``node_id`` at virtual time ``at``."""
        self.engine.schedule_at(at, lambda: self._fail_node(node_id))

    def _fail_node(self, node_id: str) -> None:
        node = self.nodes.get(node_id)
        if node is None or not node.alive:
            return
        if len(self.ring) <= 1:
            raise InvalidArgumentError(
                "cannot fail the last live node of the virtual cluster"
            )
        if not self.table.link_failed(node_id):
            return  # already dead by the table's rules
        node.alive = False
        # Preference chains as they stood while the node was alive: who
        # replicated to whom is decided by the pre-failure ring.
        chains = {}
        if self.replication_factor > 1:
            chains = {
                name: self.ring.successors(name, self.replication_factor)
                for name in self._specs
            }
        # Ring membership follows table liveness, exactly like the TCP
        # node's _sync_ring.
        for member in self.ring.nodes():
            if member not in self.table.alive_ids():
                self.ring.remove_node(member)
        self.failovers += 1
        # A dead replica desyncs every context that streamed to it.
        for name, chain in chains.items():
            if node_id in chain[1:]:
                self._replicas_ok[name] = max(
                    0, self._replicas_ok.get(name, 0) - 1
                )
        moved = [
            name for name, where in self._located.items() if where == node_id
        ]
        now = self.engine.now()
        hot: list[tuple[str, str, str]] = []
        cold: list[tuple[str, str, str]] = []
        for name in moved:
            shard = node.coordinator.shard(name)
            with shard.lock:
                captured = [
                    (client_id, name, shard.context.filename_of(key))
                    for key, waiting in shard.waiters.items()
                    for client_id in waiting
                ]
                shard.waiters.clear()
            node.coordinator.unregister_context(name)
            if self._replicas_ok.get(name, 0) > 0:
                # Hot failover: the first live successor already holds the
                # replicated waiter table — except entries younger than
                # the replication lag, which never reached it.
                self.promotions += 1
                self._replicas_ok[name] -= 1
                for entry in captured:
                    started = self._wait_started_at.get(entry, now)
                    if now - started >= self.repl_lag:
                        hot.append(entry)
                    else:
                        cold.append(entry)
            else:
                cold.extend(captured)
            new_owner = self.ring.owner(name)
            self._register_on(name, new_owner)
            # Re-register surviving attachments with the new owner.
            for client_id, contexts in self._attachments.items():
                if name in contexts:
                    self.nodes[new_owner].coordinator.client_connect(
                        client_id, name
                    )
        # Replicated waiters replay from the promoted successor as soon
        # as it fences the epoch; everything else waits for detection.
        self.hot_restored_waiters += len(hot)
        self.lost_waiters += len(cold)
        if hot:
            self.engine.schedule(
                self.promote_delay, lambda: self._replay(hot)
            )
        if cold:
            self.engine.schedule(
                self.detect_delay, lambda: self._replay(cold)
            )
        # Background healing: every under-replicated context re-syncs to
        # full factor, one context per 1/heal_rate virtual seconds after
        # the survivors detect the death.
        if self.replication_factor > 1:
            under = sorted(
                name for name in self._specs
                if self._replicas_ok.get(name, 0) < self._target_replicas()
            )
            for position, name in enumerate(under):
                self.engine.schedule(
                    self.detect_delay + (position + 1) / self.heal_rate,
                    self._make_heal(name),
                )

    def _make_heal(self, context_name: str):
        def heal() -> None:
            target = self._target_replicas()
            if self._replicas_ok.get(context_name, 0) < target:
                self._replicas_ok[context_name] = target
                self.healed += 1

        return heal

    def _replay(self, stranded: list[tuple[str, str, str]]) -> None:
        now = self.engine.now()
        for client_id, context_name, filename in stranded:
            owner = self.ring.owner(context_name)
            if owner is None:
                continue
            self.replayed_waits += 1
            result = self.nodes[owner].coordinator.handle_open(
                client_id, context_name, filename, now
            )
            if result.available:
                # The new owner already has it: resolve the wait directly.
                self._route(
                    Notification(client_id, context_name, filename, ok=True)
                )

    # ------------------------------------------------------------------ #
    # Elasticity: live migration, node join/drain, load sampling — the
    # DES mirror of the migrate protocol and the autoscaler's actuators
    # ------------------------------------------------------------------ #
    def migrate_context(
        self, context_name: str, dest: str, freeze: float = 0.0
    ) -> int:
        """Move a context to ``dest`` the way the live protocol does:
        capture the waiter table, pin the placement on the ring, restore
        the cache metadata on the destination and replay the captured
        waiters there ``freeze`` virtual seconds later (the cutover
        freeze + redirect window).  Hot by construction — no waiter is
        lost, matching the live tier's zero-lost-replies contract.
        Returns the number of waiters moved."""
        if context_name not in self._specs:
            raise InvalidArgumentError(f"unknown context {context_name!r}")
        node = self.nodes.get(dest)
        if node is None or not node.alive:
            raise InvalidArgumentError(f"destination {dest!r} is not alive")
        src = self._located[context_name]
        if src == dest:
            return 0
        source = self.nodes[src]
        context = self._specs[context_name]
        shard = source.coordinator.shard(context_name)
        with shard.lock:
            captured = [
                (client_id, context_name, context.filename_of(key))
                for key, waiting in shard.waiters.items()
                for client_id in waiting
            ]
            shard.waiters.clear()
            resident = sorted(shard.area.keys())
            # In-flight re-simulations migrate too (the live protocol's
            # sims markers): pull them out before unregister kills them.
            moving_sims = [s for s in shard.sims.values() if not s.done]
            shard.sims.clear()
            shard.in_flight.clear()
        source.coordinator.unregister_context(context_name)
        self.ring.pin(context_name, dest)
        self._register_on(context_name, dest)
        # Storage manifest handoff: the destination's cache starts warm
        # with everything the source held (live: PFS scan + data-plane
        # pull), so migrated clients keep their hits.
        dest_shard = node.coordinator.shard(context_name)
        with dest_shard.lock:
            for key in resident:
                if key not in dest_shard.area:
                    dest_shard.area.insert(
                        key, cost=float(context.geometry.miss_cost(key))
                    )
        for client_id, contexts in self._attachments.items():
            if context_name in contexts:
                node.coordinator.client_connect(client_id, context_name)
        # Resume the moved sims on the destination executor: productions
        # keep their absolute times, re-keyed under the destination's id
        # space (per-coordinator counters would otherwise collide).
        for sim in moving_sims:
            with dest_shard.lock:
                new_id = next(dest_shard._sim_ids)
                source.executor.handoff(sim.sim_id, new_id, node.executor)
                sim.sim_id = new_id
                dest_shard.sims[new_id] = sim
                for key in sim.planned_keys:
                    if key not in dest_shard.area:
                        dest_shard.in_flight.setdefault(key, new_id)
            self.resumed_sims += 1
        self.migrations += 1
        self.migrated_waiters += len(captured)
        # The live protocol's trace, in virtual time: the freeze span
        # covers exactly the frozen window [now, now + freeze] (waiters
        # replay at its end), and the cutover lands in the journal.
        now = self.engine.now()
        tc = source.obs.start_trace(sampled=True)
        self.last_trace_id = f"{tc.trace_id:016x}"
        source.obs.record(
            "migrate.freeze", tc, now, now + freeze,
            context=context_name, dest=dest,
        )
        source.obs.journal(
            "migrate.cutover", context=context_name, dest=dest,
            freeze_seconds=freeze, moved_waiters=len(captured),
            trace_id=self.last_trace_id,
        )
        if captured:
            self.engine.schedule(freeze, lambda: self._replay(captured))
        return len(captured)

    def join_node(self, node_id: str) -> None:
        """Add a fresh node (scale-up).  Every located context is pinned
        in place first, so joining moves *nothing* implicitly — the ring
        would otherwise cold-reassign hash ranges, losing shard state the
        DES (like the live tier) only moves through migration.  The
        autoscaler then sheds load onto the new node deliberately."""
        if node_id in self.nodes and self.nodes[node_id].alive:
            raise InvalidArgumentError(f"node {node_id!r} already present")
        pins = self.ring.pins()
        for name, where in self._located.items():
            if pins.get(name) != where:
                self.ring.pin(name, where)
        self.nodes[node_id] = VirtualClusterNode(
            node_id, self.engine, self._route, self._queue_delay
        )
        self.ring.add_node(node_id)
        self.table.upsert(node_id, "virtual", 0)
        self.joined += 1

    def drain_node(self, node_id: str, freeze: float = 0.0) -> None:
        """Gracefully decommission a node (scale-down): migrate every
        context it hosts to the least-loaded survivor, then leave the
        ring.  No failover counters move — nothing was lost."""
        node = self.nodes.get(node_id)
        if node is None or not node.alive:
            raise InvalidArgumentError(f"node {node_id!r} is not alive")
        survivors = [
            other for other, n in self.nodes.items()
            if n.alive and other != node_id
        ]
        if not survivors:
            raise InvalidArgumentError(
                "cannot drain the last live node of the virtual cluster"
            )
        hosted = sorted(
            name for name, where in self._located.items() if where == node_id
        )
        for name in hosted:
            placed = {
                other: sum(
                    1 for where in self._located.values() if where == other
                )
                for other in survivors
            }
            dest = min(survivors, key=lambda other: (placed[other], other))
            self.migrate_context(name, dest, freeze=freeze)
        node.alive = False
        self.table.link_failed(node_id)
        self.ring.remove_node(node_id)
        self.drained += 1

    def node_loads(self) -> list[NodeLoad]:
        """Per-node load samples in :class:`AutoscalerPolicy`'s shape —
        the DES equivalent of each live node's ``load`` op."""
        loads = []
        for node_id in sorted(self.nodes):
            node = self.nodes[node_id]
            if not node.alive:
                continue
            contexts: dict[str, float] = {}
            for name, where in self._located.items():
                if where != node_id:
                    continue
                shard = node.coordinator.shard(name)
                with shard.lock:
                    contexts[name] = float(
                        sum(len(w) for w in shard.waiters.values())
                        + len(shard.sims)
                        + len(shard.pending_jobs)
                    )
            loads.append(NodeLoad(node_id, contexts))
        return loads

    # ------------------------------------------------------------------ #
    def run(self, until: float | None = None) -> float:
        return self.engine.run(until=until)

    @property
    def fwd_ratio(self) -> float:
        """Fraction of client ops that crossed a gateway hop."""
        return self.forwarded_ops / self.total_ops if self.total_ops else 0.0

    def stats(self) -> dict:
        """Cluster-level summary plus every node's metrics snapshot."""
        return {
            "nodes": {
                node_id: {
                    "alive": node.alive,
                    "contexts": sorted(
                        name for name, where in self._located.items()
                        if where == node_id
                    ),
                }
                for node_id, node in self.nodes.items()
            },
            "epoch": self.ring.epoch,
            "pins": dict(sorted(self.ring.pins().items())),
            "failovers": self.failovers,
            "replayed_waits": self.replayed_waits,
            "forwarded_ops": self.forwarded_ops,
            "total_ops": self.total_ops,
            "migrations": self.migrations,
            "migrated_waiters": self.migrated_waiters,
            "resumed_sims": self.resumed_sims,
            "joined": self.joined,
            "drained": self.drained,
            "replication": {
                "factor": self.replication_factor,
                "promotions": self.promotions,
                "hot_restored_waiters": self.hot_restored_waiters,
                "lost_waiters": self.lost_waiters,
                "healed": self.healed,
                "replicas_ok": dict(sorted(self._replicas_ok.items())),
            },
        }

    def trace(self, trace_id: str | int) -> list[dict]:
        """One trace's spans merged across every virtual node — the DES
        mirror of the cluster-wide ``trace`` op."""
        spans: list[dict] = []
        for node_id in sorted(self.nodes):
            spans.extend(self.nodes[node_id].obs.trace(trace_id))
        spans.sort(key=lambda s: (s["start"], s["end"]))
        return spans

    def journal_entries(self, kind: str | None = None) -> list[dict]:
        """Merged decision journal of every virtual node, by timestamp."""
        entries: list[dict] = []
        for node_id in sorted(self.nodes):
            entries.extend(self.nodes[node_id].obs.journal_entries(kind))
        entries.sort(key=lambda e: e.get("ts", 0.0))
        return entries

    def _route(self, notification: Notification) -> None:
        key = (
            notification.client_id, notification.context_name,
            notification.filename,
        )
        tc = self._wait_tc.pop(key, None)
        if tc is not None:
            started = self._wait_started_at.get(key, self.engine.now())
            owner = self.ring.owner(notification.context_name)
            if owner is not None:
                self.nodes[owner].obs.record(
                    "sim.wait", tc, started, self.engine.now(),
                    context=notification.context_name,
                    file=notification.filename,
                    client=notification.client_id,
                )
        analysis = self._analyses.get(notification.client_id)
        if analysis is not None:
            analysis.on_notification(notification)


class VirtualAutoscaler:
    """The autoscaler loop in virtual time: the *same*
    :class:`~repro.cluster.autoscaler.AutoscalerPolicy` the live nodes
    run, sampling :meth:`VirtualCluster.node_loads` every ``tick``
    virtual seconds and actuating through the cluster's elasticity
    methods.  Unlike a live node (which can only migrate and hint), the
    DES is omniscient and owns the hardware: ``ScaleUp`` joins fresh
    nodes and ``ScaleDown`` drains them, so scale scenarios (diurnal
    load, flash crowds, 1→8→2 sweeps) run end to end.

    Ticks are pre-scheduled up to ``until`` and stop there, keeping
    ``engine.run()`` termination deterministic (the
    :class:`VirtualDataPlane` self-stopping pattern, bounded instead of
    demand-driven because the sampler must observe idleness too).
    """

    def __init__(
        self,
        cluster: VirtualCluster,
        policy: AutoscalerPolicy,
        tick: float = 1.0,
        freeze: float = 0.05,
        max_nodes: int = 16,
    ) -> None:
        if tick <= 0:
            raise InvalidArgumentError(f"tick must be > 0, got {tick}")
        self.cluster = cluster
        self.policy = policy
        self.tick = tick
        self.freeze = freeze
        self.max_nodes = max_nodes
        self._next_id = itertools.count(1)
        self.started = False
        #: (virtual time, decision record) log for scenario assertions
        self.history: list[tuple[float, dict]] = []

    def start(self, until: float) -> None:
        """Schedule sampling ticks over ``(0, until]``."""
        if self.started:
            raise InvalidArgumentError("autoscaler already started")
        self.started = True
        ticks = int(until / self.tick)
        for position in range(1, ticks + 1):
            self.cluster.engine.schedule_at(position * self.tick, self._tick)

    def _tick(self) -> None:
        decisions = self.policy.decide(self.cluster.node_loads())
        now = self.cluster.engine.now()
        for decision in decisions:
            if isinstance(decision, Migrate):
                moved = self.cluster.migrate_context(
                    decision.context, decision.dest, freeze=self.freeze
                )
                self.history.append((now, {
                    "action": "migrate", "context": decision.context,
                    "src": decision.src, "dest": decision.dest,
                    "waiters": moved,
                }))
            elif isinstance(decision, ScaleUp):
                alive = sum(1 for n in self.cluster.nodes.values() if n.alive)
                for _ in range(decision.count):
                    if alive >= self.max_nodes:
                        break
                    node_id = f"scale-{next(self._next_id)}"
                    self.cluster.join_node(node_id)
                    alive += 1
                    self.history.append(
                        (now, {"action": "scale_up", "node": node_id})
                    )
            elif isinstance(decision, ScaleDown):
                node = self.cluster.nodes.get(decision.node_id)
                if node is not None and node.alive:
                    self.cluster.drain_node(
                        decision.node_id, freeze=self.freeze
                    )
                    self.history.append((now, {
                        "action": "scale_down", "node": decision.node_id,
                    }))


# --------------------------------------------------------------------- #
# Virtual data plane: the bulk transfer tier on the virtual clock
# --------------------------------------------------------------------- #
class VirtualTransfer:
    """One in-flight (or finished) transfer on the virtual data plane."""

    def __init__(
        self,
        transfer_id: int,
        path: tuple[str, ...],
        size: float,
        priority: int,
        started: float,
        on_complete: Callable[["VirtualTransfer"], None] | None,
    ) -> None:
        self.transfer_id = transfer_id
        self.path = path
        self.size = float(size)
        self.priority = priority
        self.remaining = float(size)
        self.started = started
        self.finished: float | None = None
        self.on_complete = on_complete

    @property
    def done(self) -> bool:
        return self.finished is not None

    @property
    def seconds(self) -> float:
        if self.finished is None:
            raise InvalidArgumentError("transfer has not completed")
        return self.finished - self.started

    @property
    def throughput(self) -> float:
        """Average bytes/s over the transfer's lifetime."""
        return self.size / max(1e-12, self.seconds)


class VirtualDataPlane:
    """The bulk data plane in virtual time — the DES mirror of
    :class:`repro.data.DataServer` + :class:`~repro.data.BandwidthScheduler`.

    Links are named capacity pipes (bytes/s); a transfer occupies a *path*
    of one or more links (multi-hop forwarding: an ingress proxying a
    fetch from the ring owner traverses ``owner->ingress`` then
    ``ingress->client``).  Bandwidth is re-shared every ``tick`` virtual
    seconds with the same progressive-filling
    :func:`~repro.data.scheduler.max_min_rates` the live scheduler's
    fairness analysis uses, and the control lane mirrors the live strict
    priority: control transfers are allocated first each tick, bulk
    shares whatever capacity remains on each link.

    Modeling choices (explicit, like :class:`VirtualCluster`):

    * Rates are piecewise-constant per tick; a transfer admitted mid-tick
      starts progressing at the next tick boundary, and completions land
      on tick boundaries — granularity is ``tick``, so scenario sweeps
      should size transfers in whole ticks of the expected rate.
    * The plane stops scheduling tick events as soon as no transfer is
      active, so ``engine.run()`` terminates with the rest of the DES.
    * Per-link byte counters feed :meth:`utilization`; capacity a
      finishing transfer strands inside its final tick is *not* counted
      as moved bytes (accounting is of payload, not reservations).
    """

    def __init__(self, engine: DESEngine, tick: float = 0.01) -> None:
        if tick <= 0:
            raise InvalidArgumentError(f"tick must be > 0, got {tick}")
        self.engine = engine
        self.tick = tick
        self._capacity: dict[str, float] = {}
        self._active: dict[int, VirtualTransfer] = {}
        self._ids = itertools.count(1)
        self._ticking = False
        self.completed: list[VirtualTransfer] = []
        self.link_bytes: dict[str, float] = {}
        #: virtual seconds each link spent with >= 1 transfer on it
        self.link_busy: dict[str, float] = {}

    # ------------------------------------------------------------------ #
    def add_link(self, name: str, capacity: float) -> None:
        """Declare a link with ``capacity`` bytes/s (must be > 0)."""
        if capacity <= 0:
            raise InvalidArgumentError(
                f"link capacity must be > 0, got {capacity}"
            )
        self._capacity[name] = float(capacity)
        self.link_bytes.setdefault(name, 0.0)
        self.link_busy.setdefault(name, 0.0)

    def links(self) -> dict[str, float]:
        return dict(self._capacity)

    def start_transfer(
        self,
        size: float,
        path: Sequence[str],
        priority: int = PRIO_BULK,
        on_complete: Callable[[VirtualTransfer], None] | None = None,
    ) -> VirtualTransfer:
        """Begin moving ``size`` bytes across the links of ``path``."""
        if size <= 0:
            raise InvalidArgumentError(f"transfer size must be > 0, got {size}")
        if not path:
            raise InvalidArgumentError("transfer path needs >= 1 link")
        for link in path:
            if link not in self._capacity:
                raise InvalidArgumentError(f"unknown link {link!r}")
        transfer = VirtualTransfer(
            next(self._ids), tuple(path), size, priority,
            self.engine.now(), on_complete,
        )
        self._active[transfer.transfer_id] = transfer
        if not self._ticking:
            self._ticking = True
            self.engine.schedule(self.tick, self._tick)
        return transfer

    def ping(
        self,
        path: Sequence[str],
        size: float = 1024.0,
        on_complete: Callable[[VirtualTransfer], None] | None = None,
    ) -> VirtualTransfer:
        """A control-lane message: tiny, strictly prioritised over bulk."""
        return self.start_transfer(
            size, path, priority=PRIO_CONTROL, on_complete=on_complete
        )

    # ------------------------------------------------------------------ #
    def current_rates(self) -> dict[int, float]:
        """Per-transfer rates for the coming tick: control first (full
        capacities), bulk max-min shares the residual."""
        control = {
            t.transfer_id: t.path for t in self._active.values()
            if t.priority == PRIO_CONTROL
        }
        bulk = {
            t.transfer_id: t.path for t in self._active.values()
            if t.priority != PRIO_CONTROL
        }
        rates = max_min_rates(self._capacity, control) if control else {}
        residual = dict(self._capacity)
        for transfer_id, rate in rates.items():
            for link in control[transfer_id]:
                residual[link] = max(0.0, residual[link] - rate)
        if bulk:
            rates.update(max_min_rates(residual, bulk))
        return rates

    def _tick(self) -> None:
        rates = self.current_rates()
        now = self.engine.now()
        busy: set[str] = set()
        finished: list[VirtualTransfer] = []
        for transfer in self._active.values():
            busy.update(transfer.path)
            moved = min(
                transfer.remaining,
                rates.get(transfer.transfer_id, 0.0) * self.tick,
            )
            transfer.remaining -= moved
            for link in transfer.path:
                self.link_bytes[link] += moved
            if transfer.remaining <= 1e-9:
                transfer.remaining = 0.0
                transfer.finished = now
                finished.append(transfer)
        for link in busy:
            self.link_busy[link] += self.tick
        for transfer in finished:
            del self._active[transfer.transfer_id]
            self.completed.append(transfer)
            if transfer.on_complete is not None:
                transfer.on_complete(transfer)
        if self._active:
            self.engine.schedule(self.tick, self._tick)
        else:
            self._ticking = False

    # ------------------------------------------------------------------ #
    def utilization(self, link: str, start: float, end: float) -> float:
        """Fraction of ``link``'s capacity used over ``[start, end]``."""
        if end <= start:
            raise InvalidArgumentError("utilization window must be positive")
        capacity = self._capacity.get(link)
        if not capacity:
            raise InvalidArgumentError(f"unknown link {link!r}")
        return self.link_bytes.get(link, 0.0) / (capacity * (end - start))

    def stats(self) -> dict:
        return {
            "links": {
                name: {
                    "capacity": capacity,
                    "bytes": self.link_bytes.get(name, 0.0),
                    "busy_seconds": self.link_busy.get(name, 0.0),
                }
                for name, capacity in sorted(self._capacity.items())
            },
            "active": len(self._active),
            "completed": len(self.completed),
        }
