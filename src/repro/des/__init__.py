"""Virtual-time mode: deterministic DES engine, the coordinator wired to
it, and the Sec. VI experiment runners (Figs. 16-19)."""

from repro.des.components import (
    DESExecutor,
    VirtualAnalysis,
    VirtualAutoscaler,
    VirtualCluster,
    VirtualClusterNode,
    VirtualDataPlane,
    VirtualSimFS,
    VirtualTransfer,
)
from repro.des.engine import DESEngine, EventHandle
from repro.des.experiment import (
    LatencyPoint,
    ScalingPoint,
    latency_experiment,
    scaling_experiment,
)

__all__ = [
    "DESEngine",
    "DESExecutor",
    "EventHandle",
    "LatencyPoint",
    "ScalingPoint",
    "VirtualAnalysis",
    "VirtualAutoscaler",
    "VirtualCluster",
    "VirtualClusterNode",
    "VirtualDataPlane",
    "VirtualSimFS",
    "VirtualTransfer",
    "latency_experiment",
    "scaling_experiment",
]
