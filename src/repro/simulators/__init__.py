"""Simulator substrates: driver interface, deterministic run loop, and the
three concrete simulators (synthetic, COSMO-like, FLASH-like)."""

from repro.simulators.base import ForwardSimulator, run_simulation
from repro.simulators.cosmo import (
    COSMO_EVAL_CONFIG,
    COSMO_EVAL_PERF,
    CosmoDriver,
    CosmoSimulator,
)
from repro.simulators.driver import (
    FilePatternNaming,
    SimulationDriver,
    SimulationJobSpec,
)
from repro.simulators.flash import (
    FLASH_EVAL_CONFIG,
    FLASH_EVAL_PERF,
    FlashDriver,
    FlashSimulator,
)
from repro.simulators.pipeline import ArchiveCopyDriver, PipelineDriver
from repro.simulators.synthetic import SyntheticDriver, SyntheticSimulator

__all__ = [
    "ArchiveCopyDriver",
    "COSMO_EVAL_CONFIG",
    "COSMO_EVAL_PERF",
    "CosmoDriver",
    "CosmoSimulator",
    "FLASH_EVAL_CONFIG",
    "FLASH_EVAL_PERF",
    "FilePatternNaming",
    "FlashDriver",
    "FlashSimulator",
    "ForwardSimulator",
    "PipelineDriver",
    "SimulationDriver",
    "SimulationJobSpec",
    "SyntheticDriver",
    "SyntheticSimulator",
    "run_simulation",
]
