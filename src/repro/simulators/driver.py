"""Simulation driver interface (paper Sec. III-B).

The original SimFS configures each simulator through a LUA *simulation
driver* providing (1) the file **naming convention** — a ``key`` function
mapping output file names to monotone integers — and (2) the **simulation
job** factory — given start/stop output-step keys and a parallelism level,
produce something the DV can execute, honouring simulator-specific resource
constraints (e.g. "square process counts only").

Here drivers are Python objects.  :class:`FilePatternNaming` implements the
common zero-padded numbering convention; :class:`SimulationJobSpec` is the
executable job description consumed by the launcher (real mode) or by the
DES (virtual-time mode).
"""

from __future__ import annotations

import abc
import re
from dataclasses import dataclass

from repro.core.errors import FileNotInContextError, InvalidArgumentError
from repro.util.checksums import file_checksum

__all__ = ["FilePatternNaming", "SimulationDriver", "SimulationJobSpec"]


@dataclass(frozen=True)
class SimulationJobSpec:
    """Everything the DV needs to start one (re-)simulation.

    ``start_restart``/``stop_restart`` delimit the job: it loads checkpoint
    ``r_start`` and runs forward to ``r_stop``, producing the output steps
    in the exclusive window ``(start*Δr, stop*Δr]``.
    """

    context_name: str
    start_restart: int
    stop_restart: int
    parallelism_level: int = 0
    write_restarts: bool = False

    def __post_init__(self) -> None:
        if self.start_restart < 0:
            raise InvalidArgumentError(
                f"start_restart must be >= 0, got {self.start_restart}"
            )
        if self.stop_restart <= self.start_restart:
            raise InvalidArgumentError(
                f"stop_restart ({self.stop_restart}) must be > "
                f"start_restart ({self.start_restart})"
            )

    @property
    def num_intervals(self) -> int:
        return self.stop_restart - self.start_restart


class FilePatternNaming:
    """Zero-padded numeric naming convention.

    Output steps are named ``{prefix}_out_{key:0{width}d}.sdf`` and restart
    steps ``{prefix}_restart_{index:0{width}d}.sdf``; zero padding makes the
    lexicographic order match the key order, as real simulators commonly do.
    """

    def __init__(self, prefix: str, width: int = 8) -> None:
        if not prefix or "/" in prefix:
            raise InvalidArgumentError(f"bad naming prefix {prefix!r}")
        if width < 1:
            raise InvalidArgumentError(f"width must be >= 1, got {width}")
        self.prefix = prefix
        self.width = width
        self._out_re = re.compile(
            rf"^{re.escape(prefix)}_out_(\d{{{width}}})\.sdf$"
        )
        self._restart_re = re.compile(
            rf"^{re.escape(prefix)}_restart_(\d{{{width}}})\.sdf$"
        )

    def filename(self, key: int) -> str:
        if key < 1:
            raise InvalidArgumentError(f"output key must be >= 1, got {key}")
        return f"{self.prefix}_out_{key:0{self.width}d}.sdf"

    def key(self, filename: str) -> int:
        match = self._out_re.match(filename)
        if match is None:
            raise FileNotInContextError(
                f"{filename!r} does not match the {self.prefix!r} output naming"
            )
        return int(match.group(1))

    def restart_filename(self, index: int) -> str:
        if index < 0:
            raise InvalidArgumentError(f"restart index must be >= 0, got {index}")
        return f"{self.prefix}_restart_{index:0{self.width}d}.sdf"

    def restart_index(self, filename: str) -> int:
        match = self._restart_re.match(filename)
        if match is None:
            raise FileNotInContextError(
                f"{filename!r} does not match the {self.prefix!r} restart naming"
            )
        return int(match.group(1))

    def is_output(self, filename: str) -> bool:
        return self._out_re.match(filename) is not None

    def is_restart(self, filename: str) -> bool:
        return self._restart_re.match(filename) is not None


class SimulationDriver(abc.ABC):
    """Simulator-specific functionality the DV depends on (Sec. III-B)."""

    def __init__(self, naming: FilePatternNaming, max_parallelism_level: int = 0) -> None:
        self.naming = naming
        if max_parallelism_level < 0:
            raise InvalidArgumentError(
                f"max_parallelism_level must be >= 0, got {max_parallelism_level}"
            )
        self.max_parallelism_level = max_parallelism_level

    # -- naming convention ---------------------------------------------- #
    def key(self, filename: str) -> int:
        """Monotone integer key of an output file name."""
        return self.naming.key(filename)

    def filename(self, key: int) -> str:
        return self.naming.filename(key)

    def restart_filename(self, index: int) -> str:
        return self.naming.restart_filename(index)

    # -- simulation job -------------------------------------------------- #
    def make_job(
        self,
        context_name: str,
        start_restart: int,
        stop_restart: int,
        parallelism_level: int = 0,
        write_restarts: bool = False,
    ) -> SimulationJobSpec:
        """Build a job spec, clamping the parallelism level to the driver's
        maximum (the driver, not the DV, owns resource constraints)."""
        level = max(0, min(parallelism_level, self.max_parallelism_level))
        return SimulationJobSpec(
            context_name=context_name,
            start_restart=start_restart,
            stop_restart=stop_restart,
            parallelism_level=level,
            write_restarts=write_restarts,
        )

    @abc.abstractmethod
    def execute(
        self,
        job: SimulationJobSpec,
        output_dir: str,
        restart_dir: str,
        on_output=None,
        stop=None,
    ) -> list[str]:
        """Run the job synchronously (real mode); returns produced output
        file names in production order.  The launcher wraps this in a
        worker thread or subprocess.  ``on_output(filename)`` fires after
        each output file is written; ``stop()`` is polled each timestep
        for cooperative cancellation."""

    # -- checksums (``SIMFS_Bitrep`` support) ---------------------------- #
    def checksum(self, path: str) -> str:
        """Checksum used for bit-reproducibility checks; whole-file SHA-256
        by default, overridable per simulator."""
        return file_checksum(path)
