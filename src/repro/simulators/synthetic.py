"""Synthetic simulator: configurable-rate deterministic data producer.

The paper's prefetching studies (Figs. 17, 19) use "a synthetic simulator
that can be configured to produce output steps at a given rate (1/τsim) and
after a given restart latency".  This is that simulator.  Its physics is a
trivial deterministic recurrence (cheap to run, still bitwise-restartable);
its *performance* — τsim and αsim — is carried by the associated
:class:`repro.core.perfmodel.PerformanceModel`, which the DES interprets in
virtual time and which the real-mode driver can optionally honour with real
sleeps for end-to-end demonstrations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import InvalidArgumentError
from repro.core.steps import StepGeometry
from repro.simulators.base import ForwardSimulator, run_simulation
from repro.simulators.driver import (
    FilePatternNaming,
    SimulationDriver,
    SimulationJobSpec,
)

__all__ = ["SyntheticSimulator", "SyntheticDriver"]


@dataclass
class _State:
    timestep: int
    field: np.ndarray


class SyntheticSimulator(ForwardSimulator):
    """Deterministic linear-congruential field evolution.

    Each timestep applies an integer LCG to a small lattice and derives a
    float field from it.  Integer state avoids any dependence on
    floating-point associativity: restartability is bitwise by
    construction.
    """

    name = "synthetic"

    _A = np.uint64(6364136223846793005)
    _C = np.uint64(1442695040888963407)

    def __init__(self, cells: int = 64, seed: int = 1) -> None:
        if cells < 1:
            raise InvalidArgumentError(f"cells must be >= 1, got {cells}")
        self.cells = cells
        self.seed = seed

    def initial_state(self) -> _State:
        lattice = (
            np.arange(self.cells, dtype=np.uint64) * np.uint64(2654435761)
            + np.uint64(self.seed)
        )
        return _State(timestep=0, field=lattice)

    def step(self, state: _State) -> _State:
        with np.errstate(over="ignore"):
            lattice = state.field * self._A + self._C
        return _State(timestep=state.timestep + 1, field=lattice)

    def output_variables(self, state: _State) -> dict[str, np.ndarray]:
        # Map the integer lattice to [0, 1) floats for analysis tools.
        as_float = (state.field >> np.uint64(11)).astype(np.float64) / float(1 << 53)
        return {"value": as_float}

    def state_to_restart(self, state: _State) -> dict[str, np.ndarray]:
        return {
            "lattice": state.field,
            "timestep": np.array([state.timestep], dtype=np.int64),
        }

    def restart_to_state(self, variables: dict[str, np.ndarray]) -> _State:
        return _State(
            timestep=int(variables["timestep"][0]),
            field=variables["lattice"].astype(np.uint64, copy=True),
        )


class SyntheticDriver(SimulationDriver):
    """Driver running the synthetic simulator in-process."""

    def __init__(
        self,
        geometry: StepGeometry,
        prefix: str = "synth",
        cells: int = 64,
        seed: int = 1,
        max_parallelism_level: int = 3,
    ) -> None:
        super().__init__(FilePatternNaming(prefix), max_parallelism_level)
        self.geometry = geometry
        self.simulator = SyntheticSimulator(cells=cells, seed=seed)

    def execute(
        self,
        job: SimulationJobSpec,
        output_dir: str,
        restart_dir: str,
        on_output=None,
        stop=None,
    ) -> list[str]:
        return run_simulation(
            self.simulator,
            self.geometry,
            job.start_restart,
            job.stop_restart,
            output_dir,
            restart_dir,
            output_name=self.naming.filename,
            restart_name=self.naming.restart_filename,
            write_restarts=job.write_restarts,
            on_output=on_output,
            stop=stop,
        )
