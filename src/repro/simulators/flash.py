"""FLASH-like toy hydrodynamics simulator: 1-D Sedov blast wave.

The paper virtualizes a FLASH Sedov simulation — the evolution of a blast
wave from an initial pressure perturbation in a homogeneous medium.  The
reproduction implements a 1-D compressible Euler solver (finite volume,
HLL approximate Riemann solver, fixed timestep for determinism) with the
Sedov initial condition: a thin central region of very high pressure.

Timing characteristics of the paper's FLASH context (τsim = 14 s,
αsim = 7 s, Δd = 1, Δr = 20, 0.005 s timesteps over 1 s of blast
evolution → 200 output steps) live in :data:`FLASH_EVAL_PERF` /
:data:`FLASH_EVAL_CONFIG` for the Figs. 18-19 experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.context import ContextConfig
from repro.core.errors import InvalidArgumentError
from repro.core.perfmodel import PerformanceModel
from repro.core.steps import StepGeometry
from repro.simulators.base import ForwardSimulator, run_simulation
from repro.simulators.driver import (
    FilePatternNaming,
    SimulationDriver,
    SimulationJobSpec,
)

__all__ = [
    "FlashSimulator",
    "FlashDriver",
    "FLASH_EVAL_PERF",
    "FLASH_EVAL_CONFIG",
]

#: Performance model measured in the paper's Sec. VI FLASH benchmark.
#: Like the COSMO context, FLASH runs at its optimal allocation (54 nodes
#: at 32^3 cells per block, one block per core), so only prefetch strategy
#: (2) — parallel re-simulations — applies.
FLASH_EVAL_PERF = PerformanceModel(
    tau_sim=14.0,
    alpha_sim=7.0,
    nodes_per_level=(54,),
)

#: The paper's FLASH evaluation context: Δd = 1 (output every timestep),
#: Δr = 20 (restart every 0.1 s of 0.005 s timesteps), 1 s simulated.
FLASH_EVAL_CONFIG = ContextConfig(
    name="flash",
    delta_d=1,
    delta_r=20,
    num_timesteps=600,
    smax=8,
)


@dataclass
class _State:
    timestep: int
    rho: np.ndarray   # density
    mom: np.ndarray   # momentum density
    ene: np.ndarray   # total energy density


class FlashSimulator(ForwardSimulator):
    """1-D Euler equations, HLL finite-volume scheme, outflow boundaries.

    The fixed timestep ``dt`` is chosen conservatively for the Sedov
    parameters; a state-dependent CFL timestep would make the number of
    steps data-dependent and complicate the Δd/Δr cadence, so FLASH's
    adaptive stepping is intentionally not modelled.
    """

    name = "flash"

    def __init__(
        self,
        cells: int = 256,
        gamma: float = 1.4,
        dt: float = 1e-4,
        blast_pressure: float = 100.0,
        ambient_pressure: float = 1e-2,
        blast_width: int = 4,
    ) -> None:
        if cells < 16:
            raise InvalidArgumentError(f"cells must be >= 16, got {cells}")
        if not 1.0 < gamma < 2.0:
            raise InvalidArgumentError(f"gamma must be in (1, 2), got {gamma}")
        # CFL guard: the fastest signal is bounded by twice the blast sound
        # speed; a fixed dt above that limit diverges.
        blast_sound = (gamma * blast_pressure) ** 0.5
        if dt * 2.0 * blast_sound * cells > 1.0:
            raise InvalidArgumentError(
                f"dt={dt} violates CFL for cells={cells}, "
                f"blast_pressure={blast_pressure} "
                f"(need dt <= {1.0 / (2.0 * blast_sound * cells):.2e})"
            )
        self.cells = cells
        self.gamma = gamma
        self.dt = dt
        self.dx = 1.0 / cells
        self.blast_pressure = blast_pressure
        self.ambient_pressure = ambient_pressure
        self.blast_width = blast_width

    # ------------------------------------------------------------------ #
    def initial_state(self) -> _State:
        rho = np.ones(self.cells)
        mom = np.zeros(self.cells)
        pressure = np.full(self.cells, self.ambient_pressure)
        center = self.cells // 2
        half = self.blast_width // 2
        pressure[center - half : center + half + max(1, self.blast_width % 2)] = (
            self.blast_pressure
        )
        ene = pressure / (self.gamma - 1.0)  # zero initial velocity
        return _State(timestep=0, rho=rho, mom=mom, ene=ene)

    def step(self, state: _State) -> _State:
        rho, mom, ene = state.rho, state.mom, state.ene
        flux_rho, flux_mom, flux_ene = self._hll_fluxes(rho, mom, ene)
        coeff = self.dt / self.dx
        new_rho = rho - coeff * (flux_rho[1:] - flux_rho[:-1])
        new_mom = mom - coeff * (flux_mom[1:] - flux_mom[:-1])
        new_ene = ene - coeff * (flux_ene[1:] - flux_ene[:-1])
        # Positivity floors guard against negative density/pressure noise.
        new_rho = np.maximum(new_rho, 1e-10)
        return _State(
            timestep=state.timestep + 1, rho=new_rho, mom=new_mom, ene=new_ene
        )

    def _primitives(
        self, rho: np.ndarray, mom: np.ndarray, ene: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        vel = mom / rho
        pressure = (self.gamma - 1.0) * (ene - 0.5 * rho * vel**2)
        pressure = np.maximum(pressure, 1e-12)
        return vel, pressure

    def _hll_fluxes(
        self, rho: np.ndarray, mom: np.ndarray, ene: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        # Outflow (zero-gradient) ghost cells on both ends.
        rho_g = np.concatenate(([rho[0]], rho, [rho[-1]]))
        mom_g = np.concatenate(([mom[0]], mom, [mom[-1]]))
        ene_g = np.concatenate(([ene[0]], ene, [ene[-1]]))
        vel, pressure = self._primitives(rho_g, mom_g, ene_g)
        sound = np.sqrt(self.gamma * pressure / rho_g)

        f_rho = mom_g
        f_mom = mom_g * vel + pressure
        f_ene = (ene_g + pressure) * vel

        # Interface left/right states (cells i and i+1 of the ghosted grid).
        sl = np.minimum(vel[:-1] - sound[:-1], vel[1:] - sound[1:])
        sr = np.maximum(vel[:-1] + sound[:-1], vel[1:] + sound[1:])

        def hll(f_l, f_r, u_l, u_r):
            flux = np.where(
                sl >= 0.0,
                f_l,
                np.where(
                    sr <= 0.0,
                    f_r,
                    (sr * f_l - sl * f_r + sl * sr * (u_r - u_l))
                    / np.maximum(sr - sl, 1e-12),
                ),
            )
            return flux

        return (
            hll(f_rho[:-1], f_rho[1:], rho_g[:-1], rho_g[1:]),
            hll(f_mom[:-1], f_mom[1:], mom_g[:-1], mom_g[1:]),
            hll(f_ene[:-1], f_ene[1:], ene_g[:-1], ene_g[1:]),
        )

    # ------------------------------------------------------------------ #
    def output_variables(self, state: _State) -> dict[str, np.ndarray]:
        vel, pressure = self._primitives(state.rho, state.mom, state.ene)
        return {
            "density": state.rho.astype(np.float32),
            "velocity": vel.astype(np.float32),
            "pressure": pressure.astype(np.float32),
        }

    def state_to_restart(self, state: _State) -> dict[str, np.ndarray]:
        return {
            "rho": state.rho,
            "mom": state.mom,
            "ene": state.ene,
            "timestep": np.array([state.timestep], dtype=np.int64),
        }

    def restart_to_state(self, variables: dict[str, np.ndarray]) -> _State:
        return _State(
            timestep=int(variables["timestep"][0]),
            rho=variables["rho"].astype(np.float64, copy=True),
            mom=variables["mom"].astype(np.float64, copy=True),
            ene=variables["ene"].astype(np.float64, copy=True),
        )


class FlashDriver(SimulationDriver):
    """Driver running the toy FLASH in-process."""

    def __init__(
        self,
        geometry: StepGeometry,
        prefix: str = "flash",
        max_parallelism_level: int = 3,
        **sim_kwargs,
    ) -> None:
        super().__init__(FilePatternNaming(prefix), max_parallelism_level)
        self.geometry = geometry
        self.simulator = FlashSimulator(**sim_kwargs)

    def execute(
        self,
        job: SimulationJobSpec,
        output_dir: str,
        restart_dir: str,
        on_output=None,
        stop=None,
    ) -> list[str]:
        return run_simulation(
            self.simulator,
            self.geometry,
            job.start_restart,
            job.stop_restart,
            output_dir,
            restart_dir,
            output_name=self.naming.filename,
            restart_name=self.naming.restart_filename,
            write_restarts=job.write_restarts,
            on_output=on_output,
            stop=stop,
        )
