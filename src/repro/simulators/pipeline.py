"""Virtualizing simulation pipelines (paper Sec. III-E).

Scientific simulations are often staged: boundary conditions are copied
from long-term storage to drive a coarse-grain simulation whose output
feeds a finer-grain one.  When every stage is virtualized, a miss cascades
*recursively*: if the fine-grain re-simulation needs coarse-grain input
that is itself missing, opening that input through SimFS triggers the
coarse-grain re-simulation first (Fig. 6).

Two drivers implement the pattern:

* :class:`PipelineDriver` wraps a stage's simulator driver and, before
  executing a job, acquires the upstream files the job depends on through
  a DVLib connection — blocking until the upstream context (re)produces
  them.
* :class:`ArchiveCopyDriver` is the first stage of Fig. 6: its "job" does
  not simulate anything, it copies the requested files from a long-term
  storage area into the context's storage area ("this job will not start a
  simulation but just issue the copy of the data from the long-term
  storage area").
"""

from __future__ import annotations

import os
import shutil
from collections.abc import Callable

from repro.core.errors import ContextError, RestartFailedError
from repro.core.steps import StepGeometry
from repro.simulators.driver import (
    FilePatternNaming,
    SimulationDriver,
    SimulationJobSpec,
)

__all__ = ["PipelineDriver", "ArchiveCopyDriver"]


class PipelineDriver(SimulationDriver):
    """A stage driver whose jobs depend on another virtualized context.

    Parameters
    ----------
    base:
        The stage's own simulator driver (runs the actual simulation).
    upstream_context:
        Name of the context producing this stage's input.
    inputs_for:
        ``(job) -> list[str]``: upstream output files the job needs — e.g.
        the coarse-grain steps spanning the fine-grain job's window.
    input_timeout:
        Upper bound on waiting for one upstream file (the upstream
        re-simulation may itself cascade further).
    """

    def __init__(
        self,
        base: SimulationDriver,
        upstream_context: str,
        inputs_for: Callable[[SimulationJobSpec], list[str]],
        input_timeout: float | None = 300.0,
    ) -> None:
        super().__init__(base.naming, base.max_parallelism_level)
        self.base = base
        self.upstream_context = upstream_context
        self.inputs_for = inputs_for
        self.input_timeout = input_timeout
        self._connection = None

    def bind_connection(self, connection) -> None:
        """Attach the DVLib connection used to reach the upstream context.

        The DV server itself acts as a client of the upstream stage here —
        the reproduction of Fig. 6's SimFS-inside-SimFS arrows.
        """
        self._connection = connection

    def execute(
        self,
        job: SimulationJobSpec,
        output_dir: str,
        restart_dir: str,
        on_output=None,
        stop=None,
    ) -> list[str]:
        if self._connection is None:
            raise ContextError(
                f"pipeline stage for {self.upstream_context!r} has no "
                "connection; call bind_connection() first"
            )
        needed = self.inputs_for(job)
        for filename in needed:
            if stop is not None and stop():
                return []
            # Blocks until the upstream file is on disk, triggering the
            # upstream re-simulation on a miss (the Sec. III-E cascade).
            self._connection.wait_ready(
                self.upstream_context, filename, timeout=self.input_timeout
            )
        produced = self.base.execute(
            job, output_dir, restart_dir, on_output=on_output, stop=stop
        )
        for filename in needed:
            self._connection.release(self.upstream_context, filename)
        return produced


class ArchiveCopyDriver(SimulationDriver):
    """First pipeline stage: "re-simulation" = copy from long-term storage.

    The archive directory holds the stage's full output (e.g. on tape or a
    cold object store); a job copies the requested window's files into the
    context storage area at archive speed instead of re-computing them.
    """

    def __init__(
        self,
        geometry: StepGeometry,
        archive_dir: str,
        prefix: str = "archive",
    ) -> None:
        super().__init__(FilePatternNaming(prefix), max_parallelism_level=0)
        self.geometry = geometry
        self.archive_dir = archive_dir

    def execute(
        self,
        job: SimulationJobSpec,
        output_dir: str,
        restart_dir: str,
        on_output=None,
        stop=None,
    ) -> list[str]:
        produced = []
        for key in self.geometry.outputs_between_restarts(
            job.start_restart, job.stop_restart
        ):
            if stop is not None and stop():
                break
            filename = self.naming.filename(key)
            source = os.path.join(self.archive_dir, filename)
            if not os.path.exists(source):
                raise RestartFailedError(
                    f"archive copy failed: {source} does not exist"
                )
            shutil.copyfile(source, os.path.join(output_dir, filename))
            produced.append(filename)
            if on_output is not None:
                on_output(filename)
        return produced
