"""Forward-in-time simulator protocol and the generic run loop.

Every concrete simulator (COSMO-like stencil, FLASH-like Sedov solver,
synthetic) implements :class:`ForwardSimulator`; :func:`run_simulation`
drives it between two restart steps, writing output and restart files
through the hookable ``simio`` API so DVLib virtualizes the paths exactly
as it does for the original codes.

Determinism contract: ``step`` must be a pure function of the state, and
``restart_to_state(state_to_restart(s))`` must reproduce ``s`` bitwise —
that is what makes re-simulated files bitwise-identical to the originals
(paper Sec. I).
"""

from __future__ import annotations

import abc
import os
from typing import Any

import numpy as np

from repro.core.errors import InvalidArgumentError
from repro.core.steps import StepGeometry
from repro.simio import read_file, sio_create

__all__ = ["ForwardSimulator", "run_simulation"]


class ForwardSimulator(abc.ABC):
    """A deterministic forward-in-time simulation kernel."""

    #: short identifier used in file attrs
    name: str = "simulator"

    @abc.abstractmethod
    def initial_state(self) -> Any:
        """State at timestep 0 (the initial conditions)."""

    @abc.abstractmethod
    def step(self, state: Any) -> Any:
        """Advance one timestep; must be deterministic."""

    @abc.abstractmethod
    def output_variables(self, state: Any) -> dict[str, np.ndarray]:
        """Arrays written into an output step file."""

    @abc.abstractmethod
    def state_to_restart(self, state: Any) -> dict[str, np.ndarray]:
        """Full-precision arrays capturing the entire state."""

    @abc.abstractmethod
    def restart_to_state(self, variables: dict[str, np.ndarray]) -> Any:
        """Inverse of :meth:`state_to_restart` (bitwise)."""


def run_simulation(
    simulator: ForwardSimulator,
    geometry: StepGeometry,
    start_restart: int,
    stop_restart: int,
    output_dir: str,
    restart_dir: str,
    output_name: Any,
    restart_name: Any,
    write_restarts: bool = False,
    on_output: Any = None,
    stop: Any = None,
) -> list[str]:
    """Run ``simulator`` from restart ``r_start`` to ``r_stop``.

    Produces the output steps in the exclusive window
    ``(start*Δr, stop*Δr]``, clamped to the simulation end.  Output files go
    through :func:`repro.simio.sio_create`, so installed DVLib hooks see
    every create/close (that is how the DV learns files are ready, Fig. 4).

    Parameters
    ----------
    output_name / restart_name:
        Callables mapping an output key / restart index to a file name.
    write_restarts:
        True for the initial simulation (which must persist checkpoints);
        re-simulations leave existing restart files untouched.
    on_output:
        Optional ``(filename) -> None`` callback fired after each output
        file is closed — the in-process launcher uses it to notify the DV
        without going through the process-global simio hooks.
    stop:
        Optional ``() -> bool`` polled each timestep; returning True kills
        the simulation cooperatively (the DV kills prefetched simulations
        whose analysis changed direction, Sec. IV-C).

    Returns the produced output file names in production order.
    """
    if stop_restart <= start_restart:
        raise InvalidArgumentError("stop_restart must be > start_restart")
    start_ts = start_restart * geometry.delta_r
    end_ts = stop_restart * geometry.delta_r
    if geometry.num_timesteps is not None:
        if start_ts >= geometry.num_timesteps:
            raise InvalidArgumentError(
                f"restart r_{start_restart} (t={start_ts}) is at or past the "
                f"simulation end (t={geometry.num_timesteps})"
            )
        end_ts = min(end_ts, geometry.num_timesteps)

    if start_restart == 0:
        state = simulator.initial_state()
    else:
        restart_path = os.path.join(restart_dir, restart_name(start_restart))
        variables, attrs = read_file(restart_path)
        if attrs.get("timestep") != start_ts:
            raise InvalidArgumentError(
                f"restart file {restart_path} is for timestep "
                f"{attrs.get('timestep')}, expected {start_ts}"
            )
        state = simulator.restart_to_state(variables)

    produced: list[str] = []
    for ts in range(start_ts + 1, end_ts + 1):
        if stop is not None and stop():
            break
        state = simulator.step(state)
        if ts % geometry.delta_d == 0:
            key = ts // geometry.delta_d
            fname = output_name(key)
            with sio_create(os.path.join(output_dir, fname)) as out:
                for var, arr in simulator.output_variables(state).items():
                    out.write(var, arr)
                out.set_attrs(timestep=ts, key=key, simulator=simulator.name)
            produced.append(fname)
            if on_output is not None:
                on_output(fname)
        if write_restarts and ts % geometry.delta_r == 0:
            rname = restart_name(ts // geometry.delta_r)
            with sio_create(os.path.join(restart_dir, rname)) as out:
                for var, arr in simulator.state_to_restart(state).items():
                    out.write(var, arr)
                out.set_attrs(timestep=ts, simulator=simulator.name)
    return produced
