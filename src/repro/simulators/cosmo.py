"""COSMO-like toy climate simulator.

The paper virtualizes COSMO, a non-hydrostatic regional atmospheric model,
on Piz Daint.  The reproduction substitutes a deterministic 2-D
advection-diffusion stencil on a periodic domain (a classic transport
kernel): what SimFS needs from the simulator is a forward-in-time state
with Δd/Δr output/restart cadence and bitwise checkpoint/restart — the
stencil provides exactly that with real (if small) numerics.

The *timing* characteristics of the paper's COSMO context (τsim = 3 s,
αsim = 13 s, Δd = 5, Δr = 60, P = 100 nodes) live in
:data:`COSMO_EVAL_PERF` / :data:`COSMO_EVAL_CONFIG` and are consumed by the
virtual-time experiments of Figs. 16-17.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.context import ContextConfig
from repro.core.errors import InvalidArgumentError
from repro.core.perfmodel import PerformanceModel
from repro.core.steps import StepGeometry
from repro.simulators.base import ForwardSimulator, run_simulation
from repro.simulators.driver import (
    FilePatternNaming,
    SimulationDriver,
    SimulationJobSpec,
)

__all__ = [
    "CosmoSimulator",
    "CosmoDriver",
    "COSMO_EVAL_PERF",
    "COSMO_EVAL_CONFIG",
]

#: Performance model measured in the paper's Sec. VI COSMO benchmark.
#: The context is configured with the *optimal* node count (P = 100) as
#: default — raising parallelism gives no benefit, so prefetch strategy (2)
#: applies (Sec. VI): a single parallelism level models that.
COSMO_EVAL_PERF = PerformanceModel(
    tau_sim=3.0,
    alpha_sim=13.0,
    nodes_per_level=(100,),
)

#: The paper's COSMO evaluation context: one-minute timesteps, one output
#: step every 5 minutes, one restart per hour, 6 h analysed (72 outputs)
#: out of a longer run; smax swept in Fig. 16.
COSMO_EVAL_CONFIG = ContextConfig(
    name="cosmo",
    delta_d=5,
    delta_r=60,
    num_timesteps=4 * 24 * 60,  # a 4-day simulated period
    smax=8,
)


@dataclass
class _State:
    timestep: int
    temperature: np.ndarray  # (ny, nx) float64


class CosmoSimulator(ForwardSimulator):
    """2-D periodic advection-diffusion of a temperature field.

    ``T' = T - dt * (u dT/dx + v dT/dy) + dt * nu * lap(T)`` with central
    differences and `np.roll` periodic boundaries.  All operations are
    elementwise NumPy kernels in a fixed order, so stepping is bitwise
    deterministic and checkpoints restart exactly.
    """

    name = "cosmo"

    def __init__(
        self,
        nx: int = 64,
        ny: int = 48,
        u: float = 0.7,
        v: float = -0.4,
        nu: float = 0.08,
        dt: float = 0.2,
        seed: int = 2024,
    ) -> None:
        if nx < 4 or ny < 4:
            raise InvalidArgumentError("domain must be at least 4x4")
        # Stability guard (explicit scheme): advective and diffusive CFL.
        if dt * (abs(u) + abs(v)) >= 1.0 or dt * nu * 4.0 >= 1.0:
            raise InvalidArgumentError(
                f"unstable configuration: dt={dt}, u={u}, v={v}, nu={nu}"
            )
        self.nx, self.ny = nx, ny
        self.u, self.v, self.nu, self.dt = u, v, nu, dt
        self.seed = seed

    def initial_state(self) -> _State:
        rng = np.random.default_rng(self.seed)
        yy, xx = np.mgrid[0 : self.ny, 0 : self.nx]
        # Smooth synoptic background plus random perturbations.
        base = 280.0 + 8.0 * np.sin(2 * np.pi * xx / self.nx) * np.cos(
            2 * np.pi * yy / self.ny
        )
        perturbation = rng.normal(0.0, 0.5, size=(self.ny, self.nx))
        return _State(timestep=0, temperature=base + perturbation)

    def step(self, state: _State) -> _State:
        t = state.temperature
        ddx = (np.roll(t, -1, axis=1) - np.roll(t, 1, axis=1)) * 0.5
        ddy = (np.roll(t, -1, axis=0) - np.roll(t, 1, axis=0)) * 0.5
        lap = (
            np.roll(t, -1, axis=1)
            + np.roll(t, 1, axis=1)
            + np.roll(t, -1, axis=0)
            + np.roll(t, 1, axis=0)
            - 4.0 * t
        )
        t_new = t - self.dt * (self.u * ddx + self.v * ddy) + self.dt * self.nu * lap
        return _State(timestep=state.timestep + 1, temperature=t_new)

    def output_variables(self, state: _State) -> dict[str, np.ndarray]:
        # Output steps are reduced precision (so < sr in the paper's cost
        # calibration: 6 GiB outputs vs 36 GiB restarts).
        return {"temperature": state.temperature.astype(np.float32)}

    def state_to_restart(self, state: _State) -> dict[str, np.ndarray]:
        return {
            "temperature": state.temperature,
            "timestep": np.array([state.timestep], dtype=np.int64),
        }

    def restart_to_state(self, variables: dict[str, np.ndarray]) -> _State:
        return _State(
            timestep=int(variables["timestep"][0]),
            temperature=variables["temperature"].astype(np.float64, copy=True),
        )


class CosmoDriver(SimulationDriver):
    """Driver running the toy COSMO in-process."""

    def __init__(
        self,
        geometry: StepGeometry,
        prefix: str = "cosmo",
        max_parallelism_level: int = 3,
        **sim_kwargs,
    ) -> None:
        super().__init__(FilePatternNaming(prefix), max_parallelism_level)
        self.geometry = geometry
        self.simulator = CosmoSimulator(**sim_kwargs)

    def execute(
        self,
        job: SimulationJobSpec,
        output_dir: str,
        restart_dir: str,
        on_output=None,
        stop=None,
    ) -> list[str]:
        return run_simulation(
            self.simulator,
            self.geometry,
            job.start_restart,
            job.stop_restart,
            output_dir,
            restart_dir,
            output_name=self.naming.filename,
            restart_name=self.naming.restart_filename,
            write_restarts=job.write_restarts,
            on_output=on_output,
            stop=stop,
        )
