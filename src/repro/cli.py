"""``simfs-ctl``: command-line utilities for SimFS contexts.

Subcommands
-----------
``record-checksums``
    Walk a context output directory and write the reference-checksum map
    backing ``SIMFS_Bitrep`` (paper Sec. III-C2: "a map from filenames to
    checksums that can be updated through a command line utility at the
    time when the first simulation is run").
``initial-run``
    Run the initial simulation of a built-in simulator (synthetic / cosmo /
    flash), producing restart files and the full output.
``replay``
    Replay a generated trace through a replacement policy and print the
    Fig. 5 counters.
``dv-stats``
    Query a running DV daemon's ``stats`` op and print the metrics-plane
    snapshot (same payload as ``simfs-dv --stats``).
``cluster-status``
    Query a cluster node's ``cluster`` op and print its ring/membership
    view (owner per context, peer liveness, epoch) plus the cluster-plane
    metrics (forwarding, gossip, failovers).
``ha-status``
    Query a cluster node's ``ha`` op and print the replication view
    (factor, per-context replica sets with sync state and lag, healing
    queue depth, last promotion) plus the ``repl.*`` metrics.
``migrate``
    Ask a cluster node to live-migrate a context to a destination node
    (forwarded to the current owner automatically) and print the result
    (waiters moved, freeze window, pin version).
``rebalance-status``
    Query a cluster node's ``rebalance`` op and print its placement pins,
    in-flight/incoming migrations, autoscaler decisions and load sample,
    plus the ``migrate.*`` metrics.
``trace``
    Reconstruct one distributed trace by id: any node merges its own
    spans with every reachable peer's (and its executor pool's) and the
    CLI prints the timeline plus a critical-path breakdown.  Unreachable
    peers produce a warning and a partial trace, never a failure.
``trace-slow``
    Print the cluster's slowest retained spans (tail-sampled, so slow
    requests appear even when head sampling skipped them) next to the
    merged autoscaler/migration/promotion decision journal.
``metrics-export``
    Pull the Prometheus text exposition — the queried node's own series,
    or every reachable node's concatenated under ``# node <id>``
    separators.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.core.steps import StepGeometry
from repro.simulators import CosmoDriver, FlashDriver, SyntheticDriver
from repro.traces import TraceSpec, concatenated_trace, ecmwf_like_trace, replay_trace
from repro.util.checksums import file_checksum

_DRIVERS = {"synthetic": SyntheticDriver, "cosmo": CosmoDriver, "flash": FlashDriver}


def _cmd_record_checksums(args: argparse.Namespace) -> int:
    checksums = {}
    for fname in sorted(os.listdir(args.output_dir)):
        if fname.endswith(".sdf"):
            checksums[fname] = file_checksum(os.path.join(args.output_dir, fname))
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(checksums, fh, indent=1, sort_keys=True)
    print(f"recorded {len(checksums)} checksums to {args.out}")
    return 0


def _cmd_initial_run(args: argparse.Namespace) -> int:
    geometry = StepGeometry(args.delta_d, args.delta_r, args.num_timesteps)
    driver = _DRIVERS[args.simulator](geometry, prefix=args.prefix)
    os.makedirs(args.output_dir, exist_ok=True)
    os.makedirs(args.restart_dir, exist_ok=True)
    num_restarts = max(1, args.num_timesteps // args.delta_r)
    produced = driver.execute(
        driver.make_job(args.prefix, 0, num_restarts, write_restarts=True),
        args.output_dir,
        args.restart_dir,
    )
    print(f"produced {len(produced)} output steps and "
          f"{num_restarts} restart files")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    geometry = StepGeometry(args.delta_d, args.delta_r, args.num_timesteps)
    if args.pattern == "ecmwf":
        trace = ecmwf_like_trace(
            geometry.num_output_steps, seed=args.seed, num_accesses=args.accesses
        )
    else:
        spec = TraceSpec(num_output_steps=geometry.num_output_steps)
        trace = concatenated_trace(args.pattern, spec, seed=args.seed)
    result = replay_trace(trace, geometry, args.policy, cache_fraction=args.cache)
    print(json.dumps({
        "pattern": args.pattern,
        "policy": args.policy,
        "accesses": result.accesses,
        "hits": result.hits,
        "restarts": result.restarts,
        "simulated_outputs": result.simulated_outputs,
        "evictions": result.evictions,
    }, indent=1))
    return 0


def _connect_errors():
    from repro.core.errors import SimFSError

    return (SimFSError, OSError)


def _metric_lines(metrics: dict) -> list[str]:
    lines = []
    for name in sorted(metrics):
        series = metrics[name]
        if not isinstance(series, dict):
            continue
        if series.get("type") == "histogram":
            lines.append(
                f"  {name}: count={series.get('count', 0)}"
                f" p50={series.get('p50')} p99={series.get('p99')}"
            )
        else:
            lines.append(f"  {name} = {series.get('value')}")
    return lines


def _cmd_dv_stats(args: argparse.Namespace) -> int:
    from repro.client.dvlib import fetch_stats

    try:
        stats = fetch_stats(args.host, args.port)
    except _connect_errors() as exc:
        # DVConnectionLost already names the endpoint; don't repeat it.
        detail = str(exc) if "cannot reach" in str(exc) else (
            f"cannot reach DV at {args.host}:{args.port}: {exc}")
        print(f"simfs-ctl: {detail}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(stats, indent=1, sort_keys=True))
        return 0
    server = stats.get("server") or {}
    print(f"DV at {args.host}:{args.port}"
          f" mode={server.get('mode', '?')}"
          f" clients={server.get('connected_clients', '?')}")
    for entry in stats.get("contexts") or []:
        fields = ", ".join(
            f"{k}={v}" for k, v in sorted(entry.items()) if k != "context"
        )
        print(f" context {entry.get('context')}: {fields}")
    print(" metrics:")
    for line in _metric_lines(stats.get("metrics") or {}):
        print(line)
    return 0


def _cmd_cluster_status(args: argparse.Namespace) -> int:
    from repro.client.dvlib import TcpConnection

    try:
        with TcpConnection(args.host, args.port, {}, {}) as conn:
            reply = conn.call({"op": "cluster"})
    except _connect_errors() as exc:
        detail = str(exc) if "cannot reach" in str(exc) else (
            f"cannot reach node at {args.host}:{args.port}: {exc}")
        print(f"simfs-ctl: {detail}", file=sys.stderr)
        return 1
    payload = {k: v for k, v in reply.items() if k not in ("op", "req", "error")}
    if args.json:
        print(json.dumps(payload, indent=1, sort_keys=True))
        return 0
    view = payload.get("cluster") or {}
    print(f"node {view.get('self')} epoch={view.get('epoch')}"
          f" generation={view.get('generation')}")
    for peer in view.get("nodes") or []:
        state = "alive" if peer.get("alive") else "dead"
        data = peer.get("data") or 0
        extra = f" data_port={data}" if data else ""
        print(f" peer {peer.get('id')} {peer.get('host')}:{peer.get('port')}"
              f" {state}{extra}")
    for name, owner in sorted((view.get("contexts") or {}).items()):
        print(f" context {name} -> {owner}")
    print(" metrics:")
    for line in _metric_lines(payload.get("metrics") or {}):
        print(line)
    return 0


def _cmd_ha_status(args: argparse.Namespace) -> int:
    from repro.client.dvlib import TcpConnection

    try:
        with TcpConnection(args.host, args.port, {}, {}) as conn:
            reply = conn.call({"op": "ha"})
    except _connect_errors() as exc:
        detail = str(exc) if "cannot reach" in str(exc) else (
            f"cannot reach node at {args.host}:{args.port}: {exc}")
        print(f"simfs-ctl: {detail}", file=sys.stderr)
        return 1
    payload = {k: v for k, v in reply.items() if k not in ("op", "req", "error")}
    if args.json:
        print(json.dumps(payload, indent=1, sort_keys=True))
        return 0
    view = payload.get("ha") or {}
    print(f"node {view.get('self')} replication_factor={view.get('factor')}"
          f" healing_queue={view.get('healing_queue')}")
    for name, entry in sorted((view.get("contexts") or {}).items()):
        replicas = ", ".join(
            f"{r.get('node')}"
            f"[{'synced' if r.get('synced') else 'catching-up'}"
            f" seq={r.get('seq')} lag={r.get('lag_seconds')}s]"
            for r in entry.get("replicas") or []
        ) or "none"
        role = entry.get("role") or "bystander"
        print(f" context {name} owner={entry.get('owner')}"
              f" role={role} replicas: {replicas}")
    for name, entry in sorted((view.get("replica_of") or {}).items()):
        print(f" replica-of {name} src={entry.get('src')}"
              f" seq={entry.get('seq')} age={entry.get('age_seconds')}s"
              f" waiters={entry.get('waiters')}")
    promo = view.get("last_promotion")
    if promo:
        print(f" last promotion: {promo.get('context')}"
              f" restored_waiters={promo.get('restored_waiters')}"
              f" resumed_sims={promo.get('resumed_sims')}")
    print(" metrics:")
    for line in _metric_lines(payload.get("metrics") or {}):
        print(line)
    return 0


def _cmd_migrate(args: argparse.Namespace) -> int:
    from repro.client.dvlib import TcpConnection
    from repro.core.errors import ConnectionLostError, SimFSError

    try:
        with TcpConnection(args.host, args.port, {}, {}) as conn:
            reply = conn.call({
                "op": "migrate", "context": args.context, "dest": args.dest,
            })
    except (ConnectionLostError, OSError) as exc:
        detail = str(exc) if "cannot reach" in str(exc) else (
            f"cannot reach node at {args.host}:{args.port}: {exc}")
        print(f"simfs-ctl: {detail}", file=sys.stderr)
        return 1
    except SimFSError as exc:
        print(f"simfs-ctl: migrate failed: {exc}", file=sys.stderr)
        return 1
    payload = {
        k: v for k, v in reply.items() if k not in ("op", "req", "error")
    }
    result = payload.get("migrate") or {}
    if args.json:
        print(json.dumps(payload, indent=1, sort_keys=True))
        return 0
    if result.get("noop"):
        print(f"context {result.get('context')} already on"
              f" {result.get('to')}")
        return 0
    print(f"migrated {result.get('context')}"
          f" {result.get('from')} -> {result.get('to')}"
          f" (pin v{result.get('pin_version')})")
    print(f" waiters moved: {result.get('moved_waiters')}"
          f"  clients moved: {result.get('moved_clients')}"
          f"  sims resumed: {result.get('resumed_sims')}")
    print(f" freeze: {result.get('freeze_seconds')}s"
          f"  total: {result.get('total_seconds')}s"
          f"  pre-copy frames: {result.get('precopy_frames')}")
    return 0


def _cmd_rebalance_status(args: argparse.Namespace) -> int:
    from repro.client.dvlib import TcpConnection

    try:
        with TcpConnection(args.host, args.port, {}, {}) as conn:
            reply = conn.call({"op": "rebalance"})
    except _connect_errors() as exc:
        detail = str(exc) if "cannot reach" in str(exc) else (
            f"cannot reach node at {args.host}:{args.port}: {exc}")
        print(f"simfs-ctl: {detail}", file=sys.stderr)
        return 1
    payload = {k: v for k, v in reply.items() if k not in ("op", "req", "error")}
    if args.json:
        print(json.dumps(payload, indent=1, sort_keys=True))
        return 0
    view = payload.get("rebalance") or {}
    print(f"node {view.get('self')} epoch={view.get('epoch')}")
    pins = view.get("pins") or {}
    for name, target in sorted(pins.items()):
        print(f" pin {name} -> {target}")
    if not pins:
        print(" pins: none (pure hash placement)")
    migration = view.get("migration") or {}
    for name in migration.get("migrating") or []:
        print(f" migrating out: {name}")
    for name, entry in sorted((migration.get("incoming") or {}).items()):
        print(f" incoming {name} src={entry.get('src')}"
              f" seq={entry.get('seq')} waiters={entry.get('waiters')}")
    last = migration.get("last_outgoing")
    if last:
        print(f" last outgoing: {last.get('context')} -> {last.get('to')}"
              f" waiters={last.get('moved_waiters')}"
              f" freeze={last.get('freeze_seconds')}s")
    last = migration.get("last_incoming")
    if last:
        print(f" last incoming: {last.get('context')} <- {last.get('from')}"
              f" restored_waiters={last.get('restored_waiters')}"
              f"{' (partial)' if last.get('partial') else ''}")
    scaler = view.get("autoscaler")
    if scaler:
        print(f" autoscaler: interval={scaler.get('interval')}s"
              f" high={scaler.get('high')} low={scaler.get('low')}"
              f" slo_p99_s={scaler.get('slo_p99_s')}")
        for entry in scaler.get("last_decisions") or []:
            fields = ", ".join(
                f"{k}={v}" for k, v in sorted(entry.items()) if k != "action"
            )
            print(f"  decision {entry.get('action')}: {fields}")
    else:
        print(" autoscaler: off")
    load = view.get("load") or {}
    for name, depth in sorted((load.get("contexts") or {}).items()):
        print(f" load {name}: waiters={depth.get('waiters')}"
              f" sims={depth.get('sims')} queued={depth.get('queued')}")
    print(f" p99 open: {load.get('p99_open_s')}s  msgs: {load.get('msgs')}")
    print(" metrics:")
    for line in _metric_lines(payload.get("metrics") or {}):
        print(line)
    return 0


def _warn_partial(view: dict) -> None:
    """Satellite contract: a fan-out that missed peers still prints what
    it collected — the gaps are named on stderr, the exit stays 0."""
    unreachable = view.get("unreachable") or []
    if unreachable:
        print(
            "simfs-ctl: warning: partial view, unreachable: "
            + ", ".join(str(peer) for peer in unreachable),
            file=sys.stderr,
        )


def _union_seconds(intervals: list[tuple[float, float]]) -> float:
    """Total length of the union of [start, end) intervals."""
    total = 0.0
    edge: float | None = None
    for start, end in sorted(intervals):
        if edge is None or start > edge:
            total += max(0.0, end - start)
            edge = end
        elif end > edge:
            total += end - edge
            edge = end
    return total


def _span_line(span: dict, t0: float) -> str:
    attrs = span.get("attrs") or {}
    extra = " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
    return (
        f" +{span.get('start', 0.0) - t0:10.6f}s"
        f" {span.get('duration', 0.0):10.6f}s"
        f"  {span.get('name')} @{span.get('node')}"
        + (f"  {extra}" if extra else "")
    )


def _render_trace(view: dict) -> None:
    spans = view.get("spans") or []
    trace_id = view.get("trace_id")
    if not spans:
        print(f"trace {trace_id}: no spans retained "
              "(unsampled, or already rotated out of the span rings)")
        return
    t0 = min(s.get("start", 0.0) for s in spans)
    t1 = max(s.get("end", 0.0) for s in spans)
    wall = max(t1 - t0, 1e-9)
    nodes = ",".join(view.get("nodes") or [])
    print(f"trace {trace_id}: {len(spans)} spans"
          f" nodes=[{nodes}] wall={wall:.6f}s")
    for span in spans:
        print(_span_line(span, t0))
    # Critical-path breakdown: per span name, the wall-clock share its
    # interval union covers (overlapping same-name spans don't double
    # count — queue wait vs. sim wait vs. transfer stay comparable).
    by_name: dict[str, list[tuple[float, float]]] = {}
    for span in spans:
        by_name.setdefault(str(span.get("name")), []).append(
            (span.get("start", 0.0), span.get("end", 0.0))
        )
    print(" critical path:")
    shares = sorted(
        ((_union_seconds(ivals), name) for name, ivals in by_name.items()),
        reverse=True,
    )
    for covered, name in shares:
        print(f"  {name}: {covered:.6f}s ({100.0 * covered / wall:.1f}%)")


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.client.dvlib import TcpConnection

    try:
        with TcpConnection(args.host, args.port, {}, {}) as conn:
            reply = conn.call({"op": "trace", "trace_id": args.trace_id})
    except _connect_errors() as exc:
        detail = str(exc) if "cannot reach" in str(exc) else (
            f"cannot reach node at {args.host}:{args.port}: {exc}")
        print(f"simfs-ctl: {detail}", file=sys.stderr)
        return 1
    payload = {k: v for k, v in reply.items() if k not in ("op", "req", "error")}
    view = payload.get("trace") or {}
    _warn_partial(view)
    if args.json:
        print(json.dumps(payload, indent=1, sort_keys=True))
        return 0
    _render_trace(view)
    return 0


def _cmd_trace_slow(args: argparse.Namespace) -> int:
    from repro.client.dvlib import TcpConnection

    try:
        with TcpConnection(args.host, args.port, {}, {}) as conn:
            reply = conn.call({"op": "trace_slow", "limit": args.limit})
    except _connect_errors() as exc:
        detail = str(exc) if "cannot reach" in str(exc) else (
            f"cannot reach node at {args.host}:{args.port}: {exc}")
        print(f"simfs-ctl: {detail}", file=sys.stderr)
        return 1
    payload = {k: v for k, v in reply.items() if k not in ("op", "req", "error")}
    view = payload.get("slow") or {}
    _warn_partial(view)
    if args.json:
        print(json.dumps(payload, indent=1, sort_keys=True))
        return 0
    spans = view.get("spans") or []
    nodes = ",".join(view.get("nodes") or [])
    print(f"slowest {len(spans)} spans nodes=[{nodes}]")
    for span in spans:
        attrs = span.get("attrs") or {}
        extra = " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
        print(f" {span.get('duration', 0.0):10.6f}s"
              f"  {span.get('name')} @{span.get('node')}"
              f"  trace={span.get('trace_id')}"
              + (f"  {extra}" if extra else ""))
    journal = view.get("journal") or []
    if journal:
        print(" decision journal:")
        for entry in journal:
            fields = ", ".join(
                f"{k}={v}" for k, v in sorted(entry.items())
                if k not in ("ts", "kind", "node")
            )
            print(f"  [{entry.get('ts')}] {entry.get('kind')}"
                  f" @{entry.get('node')}" + (f": {fields}" if fields else ""))
    return 0


def _cmd_metrics_export(args: argparse.Namespace) -> int:
    from repro.client.dvlib import TcpConnection

    message: dict = {"op": "metrics_text"}
    if args.local:
        message["fanout"] = 0
    try:
        with TcpConnection(args.host, args.port, {}, {}) as conn:
            reply = conn.call(message)
    except _connect_errors() as exc:
        detail = str(exc) if "cannot reach" in str(exc) else (
            f"cannot reach node at {args.host}:{args.port}: {exc}")
        print(f"simfs-ctl: {detail}", file=sys.stderr)
        return 1
    _warn_partial(reply)
    text = reply.get("text") or ""
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {len(text)} bytes to {args.out}")
    else:
        sys.stdout.write(text)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="simfs-ctl", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("record-checksums",
                       help="record reference checksums for SIMFS_Bitrep")
    p.add_argument("output_dir")
    p.add_argument("--out", default="checksums.json")
    p.set_defaults(func=_cmd_record_checksums)

    p = sub.add_parser("initial-run", help="run an initial simulation")
    p.add_argument("--simulator", choices=sorted(_DRIVERS), default="synthetic")
    p.add_argument("--prefix", default="sim")
    p.add_argument("--delta-d", type=int, dest="delta_d", default=2)
    p.add_argument("--delta-r", type=int, dest="delta_r", default=8)
    p.add_argument("--num-timesteps", type=int, dest="num_timesteps", default=64)
    p.add_argument("--output-dir", dest="output_dir", default="out")
    p.add_argument("--restart-dir", dest="restart_dir", default="restart")
    p.set_defaults(func=_cmd_initial_run)

    p = sub.add_parser("replay", help="replay a trace through the cache model")
    p.add_argument("--pattern",
                   choices=["forward", "backward", "random", "ecmwf"],
                   default="ecmwf")
    p.add_argument("--policy", default="dcl")
    p.add_argument("--cache", type=float, default=0.25)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--accesses", type=int, default=20_000)
    p.add_argument("--delta-d", type=int, dest="delta_d", default=5)
    p.add_argument("--delta-r", type=int, dest="delta_r", default=240)
    p.add_argument("--num-timesteps", type=int, dest="num_timesteps",
                   default=4 * 24 * 60)
    p.set_defaults(func=_cmd_replay)

    p = sub.add_parser(
        "dv-stats",
        help="print a running DV daemon's stats (against a multi-core "
             "daemon the metric series are pool-merged; each executor's "
             "unmerged series also appear under an exec.<i>. prefix and "
             "supervisor-local ones under sup.)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7878)
    p.add_argument("--json", action="store_true",
                   help="emit the raw stats payload as JSON")
    p.set_defaults(func=_cmd_dv_stats)

    p = sub.add_parser("cluster-status",
                       help="print a cluster node's ring/membership view")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7878)
    p.add_argument("--json", action="store_true",
                   help="emit the raw cluster payload as JSON")
    p.set_defaults(func=_cmd_cluster_status)

    p = sub.add_parser("ha-status",
                       help="print a cluster node's replication/HA view")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7878)
    p.add_argument("--json", action="store_true",
                   help="emit the raw HA payload as JSON")
    p.set_defaults(func=_cmd_ha_status)

    p = sub.add_parser("migrate",
                       help="live-migrate a context to another node")
    p.add_argument("context", help="context name to move")
    p.add_argument("dest", help="destination node id")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7878)
    p.add_argument("--json", action="store_true",
                   help="emit the raw migrate payload as JSON")
    p.set_defaults(func=_cmd_migrate)

    p = sub.add_parser("rebalance-status",
                       help="print a cluster node's migration/autoscaler view")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7878)
    p.add_argument("--json", action="store_true",
                   help="emit the raw rebalance payload as JSON")
    p.set_defaults(func=_cmd_rebalance_status)

    p = sub.add_parser(
        "trace",
        help="reconstruct one distributed trace (spans merged from every "
             "reachable node) and print its critical-path breakdown",
    )
    p.add_argument("trace_id", help="16-hex-digit trace id (e.g. from a "
                                    "client's last_trace_id or an exemplar)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7878)
    p.add_argument("--json", action="store_true",
                   help="emit the raw trace payload as JSON")
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser(
        "trace-slow",
        help="print the slowest retained spans (tail-sampled) and the "
             "decision journal across every reachable node",
    )
    p.add_argument("--limit", type=int, default=20)
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7878)
    p.add_argument("--json", action="store_true",
                   help="emit the raw slow-span payload as JSON")
    p.set_defaults(func=_cmd_trace_slow)

    p = sub.add_parser(
        "metrics-export",
        help="pull the Prometheus text exposition (cluster-merged under "
             "# node <id> separators unless --local)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7878)
    p.add_argument("--local", action="store_true",
                   help="only the queried node's own series")
    p.add_argument("--out", default=None,
                   help="write to a file instead of stdout")
    p.set_defaults(func=_cmd_metrics_export)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
