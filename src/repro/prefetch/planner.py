"""Closed-form prefetching quantities (paper Sec. IV-B and IV-C).

All formulas below are the paper's, implemented as pure functions so both
the live prefetch agents and the analytic overlays of Figs. 17/19 share
them:

* forward re-simulation length
  ``n >= ceil(αsim / max(k·τsim, τcli) + 2) · k`` rounded up to a whole
  number of restart intervals;
* the *prefetching step* ``d_i + n − ceil(αsim / max(k·τsim, τcli)) · k``;
* optimal forward simulation parallelism ``s_opt = ceil(k·τsim / τcli)``;
* backward re-simulation length ``n = k·αsim / (τcli − k·τsim)`` (analysis
  slower than simulation) and the backward parallel-simulation count
  ``s = k·αsim/(n·τcli) + k·τsim/τcli``;
* warm-up times ``T_pre`` for both directions, plus the reference times
  ``T_single`` and ``T_lower`` plotted in Figs. 17/19.
"""

from __future__ import annotations

import math

from repro.core.errors import InvalidArgumentError
from repro.core.steps import StepGeometry

__all__ = [
    "forward_resim_length",
    "forward_prefetch_step",
    "s_opt_forward",
    "backward_resim_length",
    "backward_parallel_sims",
    "forward_warmup_time",
    "backward_warmup_time",
    "forward_analysis_time",
    "single_simulation_time",
    "lower_bound_time",
]


def _check_positive(**values: float) -> None:
    for name, value in values.items():
        if value <= 0:
            raise InvalidArgumentError(f"{name} must be > 0, got {value}")


def _per_step_time(tau_sim: float, tau_cli: float, k: int) -> float:
    """Analysis processing time per accessed output step:
    ``max(k·τsim, τcli)`` — bounded by whichever side is slower."""
    return max(k * tau_sim, tau_cli)


def forward_resim_length(
    alpha_sim: float,
    tau_sim: float,
    tau_cli: float,
    k: int,
    geometry: StepGeometry,
) -> int:
    """Re-simulation length ``n`` masking the next restart latency
    (Sec. IV-B1a), rounded up to a whole number of restart intervals."""
    _check_positive(tau_sim=tau_sim, tau_cli=tau_cli, k=k)
    if alpha_sim < 0:
        raise InvalidArgumentError(f"alpha_sim must be >= 0, got {alpha_sim}")
    per_step = _per_step_time(tau_sim, tau_cli, k)
    n_min = math.ceil(alpha_sim / per_step + 2) * k
    return geometry.round_up_to_restart_outputs(n_min)


def forward_prefetch_step(
    base_step: int,
    n: int,
    alpha_sim: float,
    tau_sim: float,
    tau_cli: float,
    k: int,
) -> int:
    """Output step at which to launch the next re-simulation so that its
    restart latency is fully masked: ``d_i + n − ceil(αsim/max(...))·k``."""
    _check_positive(n=n, tau_sim=tau_sim, tau_cli=tau_cli, k=k)
    per_step = _per_step_time(tau_sim, tau_cli, k)
    lead = math.ceil(alpha_sim / per_step) * k
    return base_step + n - lead


def s_opt_forward(tau_sim: float, tau_cli: float, k: int) -> int:
    """Parallel re-simulations matching a forward analysis' bandwidth:
    ``s_opt = ceil(k·τsim / τcli)`` (Sec. IV-B1b)."""
    _check_positive(tau_sim=tau_sim, tau_cli=tau_cli, k=k)
    return math.ceil(k * tau_sim / tau_cli)


def backward_resim_length(
    alpha_sim: float,
    tau_sim: float,
    tau_cli: float,
    k: int,
    geometry: StepGeometry,
) -> int:
    """Backward re-simulation length hiding restart latency *and*
    re-simulation time when the analysis is slower than the simulation:
    ``n = k·αsim / (τcli − k·τsim)`` rounded up to the next restart step
    (Sec. IV-B2).  Requires ``τcli/k > τsim``."""
    _check_positive(tau_sim=tau_sim, tau_cli=tau_cli, k=k)
    if tau_cli <= k * tau_sim:
        raise InvalidArgumentError(
            "backward_resim_length requires the analysis to be slower than "
            f"the simulation (tau_cli={tau_cli} <= k*tau_sim={k * tau_sim}); "
            "use backward_parallel_sims instead"
        )
    if alpha_sim == 0:
        n_min = 1
    else:
        n_min = math.ceil(k * alpha_sim / (tau_cli - k * tau_sim))
    return geometry.round_up_to_restart_outputs(max(1, n_min))


def backward_parallel_sims(
    alpha_sim: float,
    tau_sim: float,
    tau_cli: float,
    k: int,
    n: int,
) -> int:
    """Minimum parallel re-simulations matching a backward analysis that is
    *faster* than the simulation:
    ``s = k·αsim/(n·τcli) + k·τsim/τcli`` (Sec. IV-B2)."""
    _check_positive(tau_sim=tau_sim, tau_cli=tau_cli, k=k, n=n)
    s = k * alpha_sim / (n * tau_cli) + k * tau_sim / tau_cli
    return max(1, math.ceil(s))


# --------------------------------------------------------------------- #
# Warm-up and reference times (Sec. IV-C1, plotted in Figs. 17 and 19)
# --------------------------------------------------------------------- #
def forward_warmup_time(
    alpha_sim: float,
    tau_sim: float,
    n: int,
    geometry: StepGeometry,
) -> float:
    """``T_pre^fw = αsim + max(2τsim + αsim, (Δr/Δd)·τsim) + n·τsim``."""
    _check_positive(tau_sim=tau_sim, n=n)
    interval_outputs = geometry.outputs_per_restart_interval
    return (
        alpha_sim
        + max(2 * tau_sim + alpha_sim, interval_outputs * tau_sim)
        + n * tau_sim
    )


def backward_warmup_time(
    alpha_sim: float,
    tau_sim: float,
    tau_cli: float,
    n: int,
    first_miss_distance: int,
) -> float:
    """``T_pre^bw = αsim + D_i·τsim + τcli + max(τcli·(D_i−1), αsim + n·τsim)``
    where ``D_i = d_i − R(d_i)`` is the distance of the first missed step
    from its restart (in output steps)."""
    _check_positive(tau_sim=tau_sim, tau_cli=tau_cli, n=n)
    if first_miss_distance < 1:
        raise InvalidArgumentError(
            f"first_miss_distance must be >= 1, got {first_miss_distance}"
        )
    d = first_miss_distance
    return (
        alpha_sim
        + d * tau_sim
        + tau_cli
        + max(tau_cli * (d - 1), alpha_sim + n * tau_sim)
    )


def forward_analysis_time(
    alpha_sim: float,
    tau_sim: float,
    n: int,
    m: int,
    s: int,
    geometry: StepGeometry,
) -> float:
    """``T_cli^fw ≈ T_pre + (m − n)·τsim/s`` for an analysis of ``m`` steps
    (Sec. IV-C1a); for ``m <= n`` the warm-up dominates entirely."""
    _check_positive(tau_sim=tau_sim, n=n, m=m, s=s)
    warmup = forward_warmup_time(alpha_sim, tau_sim, n, geometry)
    if m <= n:
        return warmup
    return warmup + (m - n) * tau_sim / s


def single_simulation_time(alpha_sim: float, tau_sim: float, m: int) -> float:
    """``T_single = αsim + m·τsim`` — one simulation serving every access
    (the in-situ-like bound of Figs. 17/19)."""
    _check_positive(tau_sim=tau_sim, m=m)
    return alpha_sim + m * tau_sim


def lower_bound_time(alpha_sim: float, tau_sim: float, m: int, smax: int) -> float:
    """``T_lower = αsim + m·τsim/smax`` — restart latency plus perfectly
    parallel production over ``smax`` simulations."""
    _check_positive(tau_sim=tau_sim, m=m, smax=smax)
    return alpha_sim + m * tau_sim / smax
