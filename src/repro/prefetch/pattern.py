"""Access-pattern detection (paper Sec. IV-B).

A prefetch agent monitors the output-step keys an analysis accesses.
Forward and backward patterns are detected after two consecutive accesses
with the same stride ``k`` (the paper reserves the first two accesses of
every re-simulation to confirm prefetching validity).  The detector also
measures ``τ_cli`` — the time between two consecutive k-strided accesses —
with an exponential moving average.

The detector resets whenever the analysis changes direction or stride, or
jumps to a different timespan.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.errors import InvalidArgumentError
from repro.util.ema import ExponentialMovingAverage

__all__ = ["Direction", "PatternState", "PatternDetector"]


class Direction(enum.Enum):
    """Detected trajectory direction."""

    FORWARD = 1
    BACKWARD = -1


@dataclass(frozen=True)
class PatternState:
    """Snapshot of the detector after an access."""

    confirmed: bool
    direction: Direction | None
    stride: int | None          #: |k|, always positive
    tau_cli: float | None       #: seconds between k-strided accesses
    just_reset: bool            #: this access broke a previous pattern


class PatternDetector:
    """Stride/direction detector with τ_cli measurement.

    Feed every access with :meth:`observe`; the pattern is *confirmed* once
    two consecutive deltas match (three accesses).  Repeated accesses to the
    same key (delta 0) neither confirm nor reset — analyses often re-read
    the file they hold open.
    """

    def __init__(self, ema_smoothing: float = 0.5) -> None:
        self._tau = ExponentialMovingAverage(ema_smoothing)
        self._last_key: int | None = None
        self._last_time: float | None = None
        self._last_delta: int | None = None
        self._confirmed = False
        # Memoized snapshot: analyses re-read the file they hold open, so
        # long runs of delta-0 accesses would otherwise rebuild an
        # identical frozen PatternState per DV open.  Invalidated on any
        # state change.
        self._state_cache: PatternState | None = None

    # ------------------------------------------------------------------ #
    @property
    def confirmed(self) -> bool:
        return self._confirmed

    @property
    def direction(self) -> Direction | None:
        if self._last_delta is None or self._last_delta == 0:
            return None
        return Direction.FORWARD if self._last_delta > 0 else Direction.BACKWARD

    @property
    def stride(self) -> int | None:
        """|k| of the last observed delta (None before two accesses)."""
        if self._last_delta is None or self._last_delta == 0:
            return None
        return abs(self._last_delta)

    @property
    def tau_cli(self) -> float | None:
        """EMA of the inter-access time; None before the first interval."""
        return self._tau.value if self._tau.count > 0 else None

    # ------------------------------------------------------------------ #
    def observe(
        self, key: int, now: float, processing_time: float | None = None
    ) -> PatternState:
        """Record an access to output step ``key`` at time ``now``.

        ``processing_time`` is the caller's measurement of the pure
        analysis-side time since the *previous access was served* — i.e.
        the raw inter-access gap minus any time the client spent blocked on
        a re-simulation.  When provided it feeds the ``τcli`` estimate
        instead of the raw gap; a consumer that is production-limited would
        otherwise measure ``τcli ≈ τsim`` and the bandwidth-matching
        formulas of Sec. IV-B would conclude no parallelism is needed.
        """
        if self._last_time is not None and now < self._last_time:
            raise InvalidArgumentError(
                f"time went backwards: {now} < {self._last_time}"
            )
        just_reset = False
        if self._last_key is None:
            delta = None
        else:
            delta = key - self._last_key
        if delta == 0:
            # Same file re-read; does not advance or break the pattern.
            self._last_time = now
            return self._snapshot(just_reset=False)

        self._state_cache = None  # every path below may change the state
        if delta is not None:
            if self._last_delta is not None and delta == self._last_delta:
                if not self._confirmed:
                    self._confirmed = True
            elif self._last_delta is not None:
                # Direction/stride change: full reset, keep this access as
                # the new starting point.
                just_reset = True
                self._confirmed = False
                self._tau.reset()
                delta_kept = None
                self._last_delta = delta_kept
                self._last_key = key
                self._last_time = now
                return self._snapshot(just_reset=True)
            if processing_time is not None:
                self._tau.observe(max(processing_time, 0.0))
            elif self._last_time is not None:
                self._tau.observe(now - self._last_time)
            self._last_delta = delta
        self._last_key = key
        self._last_time = now
        return self._snapshot(just_reset=just_reset)

    def reset(self) -> None:
        """Forget everything (analysis terminated or agent reset)."""
        self._last_key = None
        self._last_time = None
        self._last_delta = None
        self._confirmed = False
        self._tau.reset()
        self._state_cache = None

    # ------------------------------------------------------------------ #
    def _snapshot(self, just_reset: bool) -> PatternState:
        if not just_reset and self._state_cache is not None:
            return self._state_cache
        state = PatternState(
            confirmed=self._confirmed,
            direction=self.direction,
            stride=self.stride,
            tau_cli=self.tau_cli,
            just_reset=just_reset,
        )
        if not just_reset:
            self._state_cache = state
        return state
