"""Prefetch agents (paper Sec. IV-B, IV-C).

SimFS associates every analysis with a *prefetch agent* that monitors its
access pattern (direction, stride ``k``, inter-access time ``τcli``) and
launches re-simulations ahead of demand:

* **masking restart latency** — each batch is sized by the planner's ``n``
  so that analysing it covers the next job's restart latency, and the next
  batch is triggered at the *prefetching step* (``lead`` accesses before
  coverage runs out);
* **matching analysis bandwidth** — strategy (1) raises the parallelism
  level of future jobs while that still speeds the simulator up; strategy
  (2) launches ``s`` parallel re-simulations, optionally ramping
  ``s = 1, 2, 4, ...`` up to ``min(s_opt, smax)``;
* **backward trajectories** — batches are laid out below the covered
  window, sized to hide both the restart latency and the re-simulation
  time;
* **pollution detection** — an access that misses on a step this agent
  prefetched means the step was produced and evicted before use; the agent
  reports it so the DV can reset all agents (Sec. IV-C).

Agents are deliberately I/O-free: :meth:`observe_access` returns a
:class:`PrefetchDecision` and the DV coordinator (real mode) or the DES
(virtual-time mode) executes it, so both modes run identical logic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.context import ContextConfig
from repro.core.errors import InvalidArgumentError
from repro.core.perfmodel import PerformanceModel
from repro.core.steps import StepGeometry
from repro.prefetch import planner
from repro.prefetch.pattern import Direction, PatternDetector
from repro.util.ema import ExponentialMovingAverage

__all__ = ["PrefetchAction", "PrefetchDecision", "PrefetchAgent"]


@dataclass(frozen=True)
class PrefetchAction:
    """One re-simulation to launch: restart-interval extent + parallelism."""

    start_restart: int
    stop_restart: int
    parallelism_level: int = 0

    def __post_init__(self) -> None:
        if self.stop_restart <= self.start_restart:
            raise InvalidArgumentError(
                f"empty prefetch extent [{self.start_restart}, {self.stop_restart})"
            )


@dataclass
class PrefetchDecision:
    """What the DV should do after one observed access."""

    launch: list[PrefetchAction] = field(default_factory=list)
    #: the analysis changed direction/stride: prefetched sims for the old
    #: pattern may be killed (if nobody else waits on them)
    pattern_broken: bool = False
    #: a prefetched step was evicted before use: reset all agents
    pollution: bool = False


class PrefetchAgent:
    """Per-analysis prefetching state machine."""

    def __init__(
        self,
        config: ContextConfig,
        perf: PerformanceModel,
        alpha_estimate: ExponentialMovingAverage,
    ) -> None:
        self.config = config
        self.geometry: StepGeometry = config.geometry
        self.perf = perf
        #: shared per-context restart-latency estimator (Sec. IV-C1c)
        self.alpha_estimate = alpha_estimate
        self.detector = PatternDetector(config.ema_smoothing)
        self.level = config.default_parallelism_level
        self._ramp_s = 0           # last batch size (0: nothing launched yet)
        self._frontier: int | None = None  # restart-index edge of coverage
        self._prefetched_keys: set[int] = set()
        self._launched_actions = 0

    # ------------------------------------------------------------------ #
    # Bookkeeping fed by the coordinator
    # ------------------------------------------------------------------ #
    def note_demand_job(self, start_restart: int, stop_restart: int) -> None:
        """The DV launched a demand re-simulation for this analysis' miss;
        extend coverage so prefetching continues from its edge."""
        if self._frontier is None:
            self._frontier = (
                stop_restart
                if self.detector.direction is not Direction.BACKWARD
                else start_restart
            )
        elif self.detector.direction is Direction.BACKWARD:
            self._frontier = min(self._frontier, start_restart)
        else:
            self._frontier = max(self._frontier, stop_restart)

    def reset(self) -> None:
        """Full reset (pollution signal or analysis termination)."""
        self.detector.reset()
        self._frontier = None
        self._ramp_s = 0
        self._prefetched_keys.clear()
        self.level = self.config.default_parallelism_level

    @property
    def prefetched_keys(self) -> frozenset[int]:
        """Output steps covered by prefetch launches (for tests)."""
        return frozenset(self._prefetched_keys)

    @property
    def launched_actions(self) -> int:
        """Total prefetch jobs this agent has requested."""
        return self._launched_actions

    # ------------------------------------------------------------------ #
    # Main entry point
    # ------------------------------------------------------------------ #
    def observe_access(
        self,
        key: int,
        now: float,
        hit: bool,
        processing_time: float | None = None,
    ) -> PrefetchDecision:
        """Record an access to output step ``key`` and decide what to do.

        ``processing_time`` — seconds of pure analysis work since the
        previous access was served (excludes blocking waits); the DV
        coordinator supplies it from its serve timestamps so ``τcli``
        reflects the analysis' full-bandwidth consumption rate.
        """
        decision = PrefetchDecision()

        # Cache-pollution signal: a step we prefetched was evicted before
        # the analysis got to it (Sec. IV-C).
        if not hit and key in self._prefetched_keys:
            self._prefetched_keys.discard(key)
            decision.pollution = True

        state = self.detector.observe(key, now, processing_time)
        if state.just_reset:
            decision.pattern_broken = True
            self._frontier = None
            self._ramp_s = 0
            self._prefetched_keys.clear()

        if not self.config.prefetch_enabled:
            return decision
        if not state.confirmed or state.tau_cli is None:
            return decision

        direction = state.direction
        k = state.stride or 1
        tau_cli = max(state.tau_cli, 1e-9)
        tau_sim = self.perf.tau(self.level)
        alpha = self.alpha_estimate.value

        # Strategy (1): raise the parallelism level of future jobs while
        # the analysis outpaces the simulation and more nodes still help.
        while k * tau_sim > tau_cli and self.perf.next_level_is_faster(self.level):
            self.level += 1
            tau_sim = self.perf.tau(self.level)

        if direction is Direction.FORWARD:
            self._plan_forward(decision, key, k, tau_sim, tau_cli, alpha)
        elif direction is Direction.BACKWARD:
            self._plan_backward(decision, key, k, tau_sim, tau_cli, alpha)
        return decision

    # ------------------------------------------------------------------ #
    def _next_batch_size(self, s_opt: int) -> int:
        """Strategy (2) ramp: double per prefetch step, capped by both
        ``s_opt`` and the context's ``smax``."""
        cap = min(max(1, s_opt), self.config.smax)
        if not self.config.prefetch_ramp_doubling:
            return cap
        nxt = 1 if self._ramp_s == 0 else self._ramp_s * 2
        return min(nxt, cap)

    def _intervals_of(self, n_outputs: int) -> int:
        geo = self.geometry
        return max(1, math.ceil(n_outputs * geo.delta_d / geo.delta_r))

    def _max_restart(self) -> int | None:
        geo = self.geometry
        if geo.num_timesteps is None:
            return None
        return math.ceil(geo.num_timesteps / geo.delta_r)

    def _record_launch(self, decision: PrefetchDecision, action: PrefetchAction) -> None:
        decision.launch.append(action)
        self._launched_actions += 1
        for out_key in self.geometry.outputs_between_restarts(
            action.start_restart, action.stop_restart
        ):
            self._prefetched_keys.add(out_key)

    def _plan_forward(
        self,
        decision: PrefetchDecision,
        key: int,
        k: int,
        tau_sim: float,
        tau_cli: float,
        alpha: float,
    ) -> None:
        geo = self.geometry
        n = planner.forward_resim_length(alpha, tau_sim, tau_cli, k, geo)
        per_step = max(k * tau_sim, tau_cli)
        lead_keys = math.ceil(alpha / per_step) * k if alpha > 0 else 0

        if self._frontier is None:
            # No coverage known yet: treat the current access' canonical
            # job as the base (the coordinator launched it on the miss).
            self._frontier = geo.restart_after(key)
        frontier_key = self._frontier * geo.delta_r // geo.delta_d

        # Prefetching step: launch when the analysis is within `lead_keys`
        # of the end of the covered window (Sec. IV-B1a).
        if frontier_key - key > lead_keys:
            return
        max_r = self._max_restart()
        if max_r is not None and self._frontier >= max_r:
            return  # simulation end reached; nothing left to prefetch

        s = self._next_batch_size(planner.s_opt_forward(tau_sim, tau_cli, k))
        q = self._intervals_of(n)
        start = self._frontier
        for _ in range(s):
            stop = start + q
            if max_r is not None:
                stop = min(stop, max_r)
            if stop <= start:
                break
            self._record_launch(
                decision,
                PrefetchAction(start, stop, parallelism_level=self.level),
            )
            start = stop
        self._frontier = start
        self._ramp_s = max(len(decision.launch), self._ramp_s, 1)

    def _plan_backward(
        self,
        decision: PrefetchDecision,
        key: int,
        k: int,
        tau_sim: float,
        tau_cli: float,
        alpha: float,
    ) -> None:
        geo = self.geometry
        if tau_cli > k * tau_sim:
            # Analysis slower than the simulation: one job of length n
            # hides both latency and simulation time (Sec. IV-B2).
            n = planner.backward_resim_length(alpha, tau_sim, tau_cli, k, geo)
            s_cap = 1
        else:
            # Analysis faster: parallel jobs of one restart interval each.
            n = geo.round_up_to_restart_outputs(
                max(1, int(geo.outputs_per_restart_interval))
            )
            s_cap = planner.backward_parallel_sims(alpha, tau_sim, tau_cli, k, n)
        per_step = max(k * tau_sim, tau_cli)
        lead_keys = math.ceil(alpha / per_step) * k if alpha > 0 else 0

        if self._frontier is None:
            self._frontier = geo.restart_before(key)
        frontier_key = self._frontier * geo.delta_r // geo.delta_d

        # Launch when the analysis approaches the bottom of the coverage.
        if key - frontier_key > lead_keys + int(geo.outputs_per_restart_interval):
            return
        if self._frontier <= 0:
            return  # reached the beginning of the simulation

        s = min(self._next_batch_size(s_cap), self.config.smax)
        q = self._intervals_of(n)
        stop = self._frontier
        for _ in range(s):
            start = max(0, stop - q)
            if start >= stop:
                break
            self._record_launch(
                decision,
                PrefetchAction(start, stop, parallelism_level=self.level),
            )
            stop = start
        self._frontier = stop
        self._ramp_s = max(len(decision.launch), self._ramp_s, 1)
