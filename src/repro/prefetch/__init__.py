"""Prefetching: access-pattern detection, the Sec. IV closed-form planner,
and the per-analysis prefetch agents."""

from repro.prefetch.agent import PrefetchAction, PrefetchAgent, PrefetchDecision
from repro.prefetch.pattern import Direction, PatternDetector, PatternState
from repro.prefetch.planner import (
    backward_parallel_sims,
    backward_resim_length,
    backward_warmup_time,
    forward_analysis_time,
    forward_prefetch_step,
    forward_resim_length,
    forward_warmup_time,
    lower_bound_time,
    s_opt_forward,
    single_simulation_time,
)

__all__ = [
    "Direction",
    "PatternDetector",
    "PatternState",
    "PrefetchAction",
    "PrefetchAgent",
    "PrefetchDecision",
    "backward_parallel_sims",
    "backward_resim_length",
    "backward_warmup_time",
    "forward_analysis_time",
    "forward_prefetch_step",
    "forward_resim_length",
    "forward_warmup_time",
    "lower_bound_time",
    "s_opt_forward",
    "single_simulation_time",
]
