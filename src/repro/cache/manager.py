"""Storage-area manager: bounded cache of output steps (paper Sec. III-A).

Each simulation context owns a *storage area* (a file-system directory in
real mode) with a maximum size.  The manager tracks resident output steps,
their sizes and reference counters, delegates victim selection to the
configured replacement policy, and calls back into the owner to delete the
actual files.  An output step can be evicted only while its reference
counter is zero; if every resident entry is referenced the area is allowed
to overflow temporarily (the alternative — blocking the producing
simulation — would deadlock it against the analyses holding the
references).
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.cache.base import ReplacementPolicy, make_policy
from repro.core.errors import InvalidArgumentError

if TYPE_CHECKING:
    from repro.metrics import MetricsRegistry

__all__ = ["StorageArea", "EvictionRecord"]


@dataclass(frozen=True)
class EvictionRecord:
    """One eviction event, for tests and experiment bookkeeping."""

    key: int
    size_bytes: int


class StorageArea:
    """Bounded, reference-counted cache of output steps.

    Parameters
    ----------
    policy:
        Replacement policy instance, or a policy name (``lru`` etc.) that is
        instantiated with ``capacity_bytes // entry_bytes`` entries.
    capacity_bytes:
        Maximum total size; ``None`` disables eviction entirely.
    entry_bytes:
        Nominal output-step size used to size entry-count-based policies and
        as the default for :meth:`insert`.
    on_evict:
        Callback ``(key) -> None`` invoked after an entry is chosen for
        eviction and before it is dropped from the books; real mode deletes
        the file here.
    metrics / metrics_prefix:
        Optional metrics registry; when given, the area records
        ``{prefix}.hits`` / ``.misses`` / ``.evictions`` / ``.overflows``
        counters and a ``{prefix}.used_bytes`` gauge.
    """

    def __init__(
        self,
        policy: ReplacementPolicy | str,
        capacity_bytes: int | None,
        entry_bytes: int = 1,
        on_evict: Callable[[int], None] | None = None,
        metrics: "MetricsRegistry | None" = None,
        metrics_prefix: str = "cache",
    ) -> None:
        if entry_bytes <= 0:
            raise InvalidArgumentError(f"entry_bytes must be > 0, got {entry_bytes}")
        if capacity_bytes is not None and capacity_bytes < entry_bytes:
            raise InvalidArgumentError(
                f"capacity ({capacity_bytes} B) below one entry ({entry_bytes} B)"
            )
        if isinstance(policy, str):
            cap_entries = (
                max(1, capacity_bytes // entry_bytes)
                if capacity_bytes is not None
                else 1 << 30
            )
            policy = make_policy(policy, cap_entries)
        self.policy = policy
        self.capacity_bytes = capacity_bytes
        self.entry_bytes = entry_bytes
        self._on_evict = on_evict
        self._sizes: dict[int, int] = {}
        self._refcounts: dict[int, int] = {}
        self._used = 0
        self.evictions: list[EvictionRecord] = []
        self.overflow_events = 0
        if metrics is not None:
            self._m_hits = metrics.counter(f"{metrics_prefix}.hits")
            self._m_misses = metrics.counter(f"{metrics_prefix}.misses")
            self._m_evictions = metrics.counter(f"{metrics_prefix}.evictions")
            self._m_overflows = metrics.counter(f"{metrics_prefix}.overflows")
            self._m_used = metrics.gauge(f"{metrics_prefix}.used_bytes")
        else:
            self._m_hits = self._m_misses = None
            self._m_evictions = self._m_overflows = self._m_used = None

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def __contains__(self, key: int) -> bool:
        return key in self._sizes

    def __len__(self) -> int:
        return len(self._sizes)

    def keys(self) -> Iterator[int]:
        return iter(list(self._sizes))

    @property
    def used_bytes(self) -> int:
        """Total size of resident entries."""
        return self._used

    def refcount(self, key: int) -> int:
        return self._refcounts.get(key, 0)

    def size_of(self, key: int) -> int:
        return self._sizes[key]

    # ------------------------------------------------------------------ #
    # Access / insert / evict
    # ------------------------------------------------------------------ #
    def access(self, key: int) -> bool:
        """Record an analysis access; returns True on a hit."""
        hit = self.policy.record_access(key)
        if hit and key not in self._sizes:
            raise AssertionError(
                f"policy/manager residency disagreement on key {key}"
            )
        if self._m_hits is not None:
            (self._m_hits if hit else self._m_misses).inc()
        return hit

    def insert(
        self,
        key: int,
        cost: float = 0.0,
        size_bytes: int | None = None,
        pinned: bool = False,
    ) -> None:
        """Make ``key`` resident (idempotent), evicting to make room.

        With ``pinned=True`` the entry is reference-counted *before* the
        eviction pass runs, so an analysis already waiting on the file can
        never see it evicted between production and notification.
        """
        size = self.entry_bytes if size_bytes is None else size_bytes
        if size <= 0:
            raise InvalidArgumentError(f"size_bytes must be > 0, got {size}")
        if key in self._sizes:
            self._used += size - self._sizes[key]
            self._sizes[key] = size
        else:
            self._sizes[key] = size
            self._used += size
            self.policy.record_insert(key, cost)
        if pinned:
            self.pin(key)
        self.evict_until_fits()
        if self._m_used is not None:
            self._m_used.set(self._used)

    def remove(self, key: int) -> None:
        """Drop an entry without counting it as a policy eviction
        (e.g. the owner deleted the file out-of-band)."""
        size = self._sizes.pop(key, None)
        if size is None:
            return
        self._used -= size
        self._refcounts.pop(key, None)
        self.policy.record_evict(key)
        if self._m_used is not None:
            self._m_used.set(self._used)

    def pin(self, key: int) -> None:
        """Increment the reference counter of a resident entry."""
        if key not in self._sizes:
            raise InvalidArgumentError(f"cannot pin non-resident key {key}")
        count = self._refcounts.get(key, 0)
        self._refcounts[key] = count + 1
        if count == 0:
            # 0 -> 1 transition: let the policy take the entry out of its
            # victim-candidate structure (O(1) selection under pinning).
            self.policy.record_pin(key)

    def unpin(self, key: int) -> None:
        """Decrement the reference counter (released by ``SIMFS_Release``)."""
        count = self._refcounts.get(key, 0)
        if count <= 0:
            raise InvalidArgumentError(f"unpin of key {key} with refcount 0")
        if count == 1:
            self._refcounts.pop(key)
            self.policy.record_unpin(key)
        else:
            self._refcounts[key] = count - 1

    def evict_until_fits(self) -> list[EvictionRecord]:
        """Evict victims until within capacity; returns what was evicted."""
        if self.capacity_bytes is None:
            return []
        freed: list[EvictionRecord] = []
        while self._used > self.capacity_bytes:
            victim = self.policy.victim(self._is_evictable)
            if victim is None:
                self.overflow_events += 1
                if self._m_overflows is not None:
                    self._m_overflows.inc()
                break
            freed.append(self._evict(victim))
        if self._m_used is not None:
            self._m_used.set(self._used)
        return freed

    # ------------------------------------------------------------------ #
    def _is_evictable(self, key: int) -> bool:
        return key in self._sizes and self._refcounts.get(key, 0) == 0

    def _evict(self, key: int) -> EvictionRecord:
        size = self._sizes.pop(key)
        self._used -= size
        record = EvictionRecord(key=key, size_bytes=size)
        self.evictions.append(record)
        if self._m_evictions is not None:
            self._m_evictions.inc()
        if self._on_evict is not None:
            self._on_evict(key)
        self.policy.record_evict(key)
        return record
