"""ARC — Adaptive Replacement Cache (paper Sec. III-D, after
Megiddo & Modha, FAST'03).

ARC splits resident entries into ``T1`` (seen once recently) and ``T2``
(seen at least twice) and keeps ghost lists ``B1``/``B2`` of recently
evicted entries from each.  A hit in a ghost list moves the adaptation
target ``p`` toward favouring that side, letting the cache tune itself
between recency and frequency at runtime.

In this library the storage-area manager drives evictions (capacity is
bytes on disk and entries can be pinned by analyses), so the canonical
"on miss: REPLACE then insert" flow is decomposed into the
``record_access`` / ``victim`` / ``record_evict`` / ``record_insert``
events; the REPLACE decision rule and the adaptation of ``p`` are the
textbook ones.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Callable, Iterator

from repro.cache.base import ReplacementPolicy

__all__ = ["ARCPolicy"]


class ARCPolicy(ReplacementPolicy):
    """Adaptive Replacement Cache over entry counts."""

    name = "arc"

    def __init__(self, capacity_entries: int) -> None:
        super().__init__(capacity_entries)
        self._t1: OrderedDict[int, None] = OrderedDict()  # LRU -> MRU
        self._t2: OrderedDict[int, None] = OrderedDict()
        self._b1: OrderedDict[int, None] = OrderedDict()
        self._b2: OrderedDict[int, None] = OrderedDict()
        self._p = 0.0  # target size of T1
        # Ghost-hit keys whose next insertion goes straight to T2.
        self._promote_on_insert: set[int] = set()
        # Keys the manager reported as pinned (refcount > 0).  ARC's
        # REPLACE rule must still walk T1/T2 in order (victim choice
        # depends on list membership, not recency alone, so the LRU-style
        # O(1) evictable list does not transfer); the set lets the walk
        # skip pinned entries without a callback per key.
        self._pinned: set[int] = set()

    # ------------------------------------------------------------------ #
    def record_access(self, key: int) -> bool:
        if key in self._t1:
            self._t1.pop(key)
            self._t2[key] = None
            self._t2.move_to_end(key)
            self.stats.hits += 1
            return True
        if key in self._t2:
            self._t2.move_to_end(key)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if key in self._b1:
            delta = max(len(self._b2) / len(self._b1), 1.0)
            self._p = min(float(self.capacity_entries), self._p + delta)
            self._b1.pop(key)
            self._promote_on_insert.add(key)
        elif key in self._b2:
            delta = max(len(self._b1) / len(self._b2), 1.0)
            self._p = max(0.0, self._p - delta)
            self._b2.pop(key)
            self._promote_on_insert.add(key)
        return False

    def record_insert(self, key: int, cost: float = 0.0) -> None:
        self.stats.insertions += 1
        if key in self._t1 or key in self._t2:
            return
        self._b1.pop(key, None)
        self._b2.pop(key, None)
        if key in self._promote_on_insert:
            self._promote_on_insert.discard(key)
            self._t2[key] = None
            self._t2.move_to_end(key)
        else:
            self._t1[key] = None
            self._t1.move_to_end(key)
        self._bound_ghosts()

    def record_pin(self, key: int) -> None:
        self._pinned.add(key)

    def record_unpin(self, key: int) -> None:
        self._pinned.discard(key)

    def record_evict(self, key: int) -> None:
        self.stats.evictions += 1
        self._pinned.discard(key)
        if key in self._t1:
            self._t1.pop(key)
            self._b1[key] = None
            self._b1.move_to_end(key)
        elif key in self._t2:
            self._t2.pop(key)
            self._b2[key] = None
            self._b2.move_to_end(key)
        self._bound_ghosts()

    def victim(self, is_evictable: Callable[[int], bool]) -> int | None:
        """REPLACE rule: evict from T1 when it exceeds its target ``p``."""
        prefer_t1 = len(self._t1) >= 1 and len(self._t1) > self._p
        ordered_lists = (
            (self._t1, self._t2) if prefer_t1 or not self._t2 else (self._t2, self._t1)
        )
        for lst in ordered_lists:
            for key in lst:  # LRU first
                if key not in self._pinned and is_evictable(key):
                    return key
        return None

    def resident(self) -> Iterator[int]:
        yield from self._t1
        yield from self._t2

    def is_resident(self, key: int) -> bool:
        return key in self._t1 or key in self._t2

    # -- introspection used by tests ------------------------------------ #
    @property
    def p(self) -> float:
        """Current adaptation target for |T1|."""
        return self._p

    def list_sizes(self) -> dict[str, int]:
        return {
            "t1": len(self._t1),
            "t2": len(self._t2),
            "b1": len(self._b1),
            "b2": len(self._b2),
        }

    # ------------------------------------------------------------------ #
    def _bound_ghosts(self) -> None:
        """Keep |T1|+|B1| <= c and the directory total <= 2c."""
        c = self.capacity_entries
        while len(self._t1) + len(self._b1) > c and self._b1:
            self._b1.popitem(last=False)
        total = len(self._t1) + len(self._t2) + len(self._b1) + len(self._b2)
        while total > 2 * c and (self._b1 or self._b2):
            if self._b2:
                self._b2.popitem(last=False)
            else:
                self._b1.popitem(last=False)
            total -= 1
