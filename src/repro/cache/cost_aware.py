"""Cost-sensitive LRU variants BCL and DCL (paper Sec. III-D, after
Jeong & Dubois, *Cache replacement algorithms with nonuniform miss costs*).

Both schemes keep an LRU recency list but refuse to evict the LRU entry when
a more recent entry with **lower miss cost** exists; the victim is then the
least-recent entry cheaper than the LRU.  To stop a costly but rarely used
entry from pushing out an endless stream of cheap, hot entries, the LRU's
cost is *depreciated* whenever it is spared:

* **BCL** depreciates immediately, each time the LRU is bypassed.
* **DCL** depreciates lazily: only when a cheap entry that was evicted in
  place of the LRU is accessed again *before* the LRU itself is accessed —
  i.e. only when sparing the LRU is proven to have been the wrong call.

In SimFS the miss cost of an output step is its distance (in output steps)
from the closest previous restart step (``StepGeometry.miss_cost``).
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Callable, Iterator
from dataclasses import dataclass

from repro.cache.base import ReplacementPolicy

__all__ = ["BCLPolicy", "DCLPolicy"]


@dataclass
class _Entry:
    cost: float          #: full miss cost, restored on every access
    dep_cost: float      #: current (possibly depreciated) cost


class _CostSensitiveLRU(ReplacementPolicy):
    """Shared machinery of BCL and DCL."""

    def __init__(self, capacity_entries: int) -> None:
        super().__init__(capacity_entries)
        self._order: OrderedDict[int, _Entry] = OrderedDict()  # LRU -> MRU

    # ------------------------------------------------------------------ #
    def record_access(self, key: int) -> bool:
        entry = self._order.get(key)
        if entry is not None:
            self._order.move_to_end(key)
            entry.dep_cost = entry.cost  # accesses restore the full cost
            self._on_resident_access(key)
            self.stats.hits += 1
            return True
        self._on_miss_access(key)
        self.stats.misses += 1
        return False

    def record_insert(self, key: int, cost: float = 0.0) -> None:
        self._order[key] = _Entry(cost=float(cost), dep_cost=float(cost))
        self._order.move_to_end(key)
        self.stats.insertions += 1

    def record_evict(self, key: int) -> None:
        self._order.pop(key, None)
        self.stats.evictions += 1

    def victim(self, is_evictable: Callable[[int], bool]) -> int | None:
        lru_key = next((k for k in self._order if is_evictable(k)), None)
        if lru_key is None:
            return None
        lru_cost = self._order[lru_key].dep_cost
        for key, entry in self._order.items():
            if key == lru_key or not is_evictable(key):
                continue
            if entry.dep_cost < lru_cost:
                # Spare the LRU; evict the least-recent cheaper entry.
                self._on_lru_spared(lru_key, key, entry.dep_cost)
                return key
        return lru_key

    def resident(self) -> Iterator[int]:
        return iter(self._order)

    def is_resident(self, key: int) -> bool:
        return key in self._order

    def depreciated_cost(self, key: int) -> float:
        """Current effective cost of a resident entry (for tests/debug)."""
        return self._order[key].dep_cost

    # -- scheme-specific hooks ------------------------------------------ #
    def _on_lru_spared(self, lru_key: int, victim_key: int, victim_cost: float) -> None:
        raise NotImplementedError

    def _on_resident_access(self, key: int) -> None:
        pass

    def _on_miss_access(self, key: int) -> None:
        pass


class BCLPolicy(_CostSensitiveLRU):
    """Basic Cost-sensitive LRU: depreciate the LRU as soon as it is spared."""

    name = "bcl"

    def _on_lru_spared(self, lru_key: int, victim_key: int, victim_cost: float) -> None:
        entry = self._order[lru_key]
        entry.dep_cost = max(0.0, entry.dep_cost - victim_cost)


class DCLPolicy(_CostSensitiveLRU):
    """Dynamic Cost-sensitive LRU: depreciate only when sparing the LRU is
    proven wrong, i.e. an entry evicted in its place is re-accessed before
    the LRU itself."""

    name = "dcl"

    def __init__(self, capacity_entries: int) -> None:
        super().__init__(capacity_entries)
        # evicted cheap key -> (protected LRU key, cost charged if re-accessed)
        self._pending: dict[int, tuple[int, float]] = {}

    def _on_lru_spared(self, lru_key: int, victim_key: int, victim_cost: float) -> None:
        self._pending[victim_key] = (lru_key, victim_cost)

    def _on_resident_access(self, key: int) -> None:
        # The protected LRU was accessed: sparing it paid off; drop the
        # pending depreciations charged against it.
        self._pending = {
            victim: (protected, cost)
            for victim, (protected, cost) in self._pending.items()
            if protected != key
        }

    def _on_miss_access(self, key: int) -> None:
        pending = self._pending.pop(key, None)
        if pending is None:
            return
        protected, cost = pending
        entry = self._order.get(protected)
        if entry is not None:
            entry.dep_cost = max(0.0, entry.dep_cost - cost)
