"""Cache replacement schemes and the bounded storage-area manager
(paper Sec. III-D)."""

from repro.cache.arc import ARCPolicy
from repro.cache.base import CacheStats, ReplacementPolicy, make_policy
from repro.cache.cost_aware import BCLPolicy, DCLPolicy
from repro.cache.lirs import LIRSPolicy
from repro.cache.lru import LRUPolicy
from repro.cache.manager import EvictionRecord, StorageArea

__all__ = [
    "ARCPolicy",
    "BCLPolicy",
    "CacheStats",
    "DCLPolicy",
    "EvictionRecord",
    "LIRSPolicy",
    "LRUPolicy",
    "ReplacementPolicy",
    "StorageArea",
    "make_policy",
]
