"""Least-Recently-Used replacement (paper Sec. III-D, *Locality-Based*)."""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Callable, Iterator

from repro.cache.base import ReplacementPolicy

__all__ = ["LRUPolicy"]


class LRUPolicy(ReplacementPolicy):
    """Classic LRU with O(1) victim selection under pinning.

    Two ordered dicts, both least-recent first:

    * ``_order`` — every resident key (the full LRU recency order);
    * ``_evictable`` — only the keys whose pin state is known to be
      unpinned, kept in the same recency order.

    When the storage-area manager reports pin transitions
    (:meth:`record_pin` / :meth:`record_unpin`), the head of
    ``_evictable`` *is* the victim, so selection is O(1) regardless of
    how many pinned entries crowd the cold end — the old single-list
    scheme degraded to a linear scan over every pinned-but-cold entry on
    each eviction.  An unpin re-appends the key at the MRU end: the
    release of a file an analysis just finished reading counts as its
    most recent use.

    Without pin notifications (a policy driven directly, as in trace
    replays) ``_evictable`` simply mirrors ``_order`` and ``victim``
    degrades gracefully to the original recency scan, with
    ``is_evictable`` still the final authority either way.
    """

    name = "lru"

    def __init__(self, capacity_entries: int) -> None:
        super().__init__(capacity_entries)
        self._order: OrderedDict[int, None] = OrderedDict()
        self._evictable: OrderedDict[int, None] = OrderedDict()

    def record_access(self, key: int) -> bool:
        if key in self._order:
            self._order.move_to_end(key)
            if key in self._evictable:
                self._evictable.move_to_end(key)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        return False

    def record_insert(self, key: int, cost: float = 0.0) -> None:
        self._order[key] = None
        self._order.move_to_end(key)
        self._evictable[key] = None
        self._evictable.move_to_end(key)
        self.stats.insertions += 1

    def record_evict(self, key: int) -> None:
        self._order.pop(key, None)
        self._evictable.pop(key, None)
        self.stats.evictions += 1

    def record_pin(self, key: int) -> None:
        self._evictable.pop(key, None)

    def record_unpin(self, key: int) -> None:
        if key in self._order:
            self._evictable[key] = None
            self._evictable.move_to_end(key)

    def victim(self, is_evictable: Callable[[int], bool]) -> int | None:
        for key in self._evictable:  # least-recent first; head hit = O(1)
            if is_evictable(key):
                return key
        return None

    def resident(self) -> Iterator[int]:
        return iter(self._order)

    def is_resident(self, key: int) -> bool:
        return key in self._order
