"""Least-Recently-Used replacement (paper Sec. III-D, *Locality-Based*)."""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Callable, Iterator

from repro.cache.base import ReplacementPolicy

__all__ = ["LRUPolicy"]


class LRUPolicy(ReplacementPolicy):
    """Classic LRU over an ordered dict (least-recent first)."""

    name = "lru"

    def __init__(self, capacity_entries: int) -> None:
        super().__init__(capacity_entries)
        self._order: OrderedDict[int, None] = OrderedDict()

    def record_access(self, key: int) -> bool:
        if key in self._order:
            self._order.move_to_end(key)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        return False

    def record_insert(self, key: int, cost: float = 0.0) -> None:
        self._order[key] = None
        self._order.move_to_end(key)
        self.stats.insertions += 1

    def record_evict(self, key: int) -> None:
        self._order.pop(key, None)
        self.stats.evictions += 1

    def victim(self, is_evictable: Callable[[int], bool]) -> int | None:
        for key in self._order:  # least-recent first
            if is_evictable(key):
                return key
        return None

    def resident(self) -> Iterator[int]:
        return iter(self._order)

    def is_resident(self, key: int) -> bool:
        return key in self._order
