"""Replacement-policy interface and bookkeeping (paper Sec. III-D).

Caching simulation data differs from hardware caches in two ways the
interface reflects:

* a miss triggers a *re-simulation* whose cost is proportional to the missed
  step's distance from its previous restart step — policies receive that
  ``cost`` when an entry is inserted, and cost-aware schemes (BCL/DCL) use it;
* entries referenced by running analyses are *pinned* (reference counter > 0)
  and must not be evicted — victim selection takes an ``is_evictable``
  predicate supplied by the storage-area manager.

The cache is fully associative (Sec. III-D: SimFS operates on a milliseconds
time-frame, so conflict misses are designed out).
"""

from __future__ import annotations

import abc
from collections.abc import Callable, Iterator
from dataclasses import dataclass

from repro.core.errors import InvalidArgumentError

__all__ = ["CacheStats", "ReplacementPolicy", "make_policy"]


@dataclass
class CacheStats:
    """Hit/miss/eviction counters kept by every policy."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    insertions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class ReplacementPolicy(abc.ABC):
    """Abstract replacement policy over integer entry keys.

    The storage-area manager drives the policy with four events:

    ``record_access(key)``
        An analysis accessed ``key``.  Called for **every** access, resident
        or not — schemes with ghost lists (ARC, LIRS) and DCL's deferred
        depreciation need to see misses too.  Returns True on a resident hit.
    ``record_insert(key, cost)``
        ``key`` became resident (produced by a re-simulation or the initial
        run) with the given miss cost in output steps.
    ``record_evict(key)``
        The manager removed ``key`` from disk.
    ``victim(is_evictable)``
        Choose a resident entry to evict among those for which
        ``is_evictable(key)`` is True (i.e. reference counter zero), or
        return ``None`` if no entry may be evicted.

    Two optional events let policies track pinning themselves instead of
    rediscovering it through ``is_evictable`` scans:

    ``record_pin(key)`` / ``record_unpin(key)``
        The entry's reference counter left / returned to zero.  The
        storage-area manager reports only the 0↔1 transitions.  Default
        implementations are no-ops, so policies driven without a manager
        (unit tests, trace replays) keep working — ``is_evictable``
        remains the authority during victim selection either way.
    """

    name: str = "base"

    def __init__(self, capacity_entries: int) -> None:
        if capacity_entries < 1:
            raise InvalidArgumentError(
                f"capacity must be >= 1 entry, got {capacity_entries}"
            )
        self.capacity_entries = capacity_entries
        self.stats = CacheStats()

    # -- events -------------------------------------------------------- #
    @abc.abstractmethod
    def record_access(self, key: int) -> bool:
        """Record an access; returns True if ``key`` was resident (hit)."""

    @abc.abstractmethod
    def record_insert(self, key: int, cost: float = 0.0) -> None:
        """Record that ``key`` became resident with re-simulation ``cost``."""

    @abc.abstractmethod
    def record_evict(self, key: int) -> None:
        """Record that the manager evicted ``key``."""

    @abc.abstractmethod
    def victim(self, is_evictable: Callable[[int], bool]) -> int | None:
        """Pick an evictable resident entry, or ``None``."""

    def record_pin(self, key: int) -> None:
        """Optional: ``key``'s reference counter just left zero."""

    def record_unpin(self, key: int) -> None:
        """Optional: ``key``'s reference counter just returned to zero."""

    # -- introspection -------------------------------------------------- #
    @abc.abstractmethod
    def resident(self) -> Iterator[int]:
        """Iterate over resident keys (order unspecified)."""

    @abc.abstractmethod
    def is_resident(self, key: int) -> bool:
        """True if ``key`` is currently resident."""

    def __contains__(self, key: int) -> bool:
        return self.is_resident(key)

    def __len__(self) -> int:
        return sum(1 for _ in self.resident())


def make_policy(name: str, capacity_entries: int) -> ReplacementPolicy:
    """Instantiate a policy by its configuration name.

    Valid names: ``lru``, ``lirs``, ``arc``, ``bcl``, ``dcl``.
    """
    from repro.cache.arc import ARCPolicy
    from repro.cache.cost_aware import BCLPolicy, DCLPolicy
    from repro.cache.lirs import LIRSPolicy
    from repro.cache.lru import LRUPolicy

    registry: dict[str, type[ReplacementPolicy]] = {
        "lru": LRUPolicy,
        "lirs": LIRSPolicy,
        "arc": ARCPolicy,
        "bcl": BCLPolicy,
        "dcl": DCLPolicy,
    }
    try:
        cls = registry[name.lower()]
    except KeyError:
        raise InvalidArgumentError(
            f"unknown replacement policy {name!r}; expected one of {sorted(registry)}"
        ) from None
    return cls(capacity_entries)
