"""LIRS — Low Inter-reference Recency Set replacement (paper Sec. III-D,
after Jiang & Zhang, SIGMETRICS'02).

LIRS partitions resident entries into a *LIR* set (low inter-reference
recency: hot) and a *HIR* set (high inter-reference recency: cold).  It keeps

* stack ``S`` — a recency stack holding LIR entries, resident HIR entries
  and a bounded number of non-resident "ghost" HIR entries, and
* queue ``Q`` — the FIFO of resident HIR entries, which supplies victims.

A HIR entry re-accessed while still on ``S`` has small reuse distance and is
promoted to LIR, demoting the stack-bottom LIR.  Eviction normally takes the
front of ``Q``; the storage-area manager may skip pinned entries.

The paper observes (Fig. 5) that LIRS underperforms on backward scans: the
ghost-stack promotion logic prioritizes evicting exactly the entries a
backward trajectory is about to access.  Reproducing that behaviour is the
point of including it.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Callable, Iterator

from repro.cache.base import ReplacementPolicy

__all__ = ["LIRSPolicy"]

_LIR = "LIR"
_HIR = "HIR"


class LIRSPolicy(ReplacementPolicy):
    """LIRS with a 5 % HIR target and ghosts bounded to 2x capacity."""

    name = "lirs"

    def __init__(self, capacity_entries: int) -> None:
        super().__init__(capacity_entries)
        self._hir_target = max(1, round(0.05 * capacity_entries))
        self._lir_target = max(1, capacity_entries - self._hir_target)
        self._stack: OrderedDict[int, None] = OrderedDict()  # bottom -> top
        self._queue: OrderedDict[int, None] = OrderedDict()  # front -> back
        self._state: dict[int, str] = {}     # key -> _LIR | _HIR (if known)
        self._resident: set[int] = set()
        self._ghost_bound = 2 * capacity_entries + 16
        # Keys the manager reported as pinned (refcount > 0).  LIRS victim
        # selection must still walk Q (and fall back to S) in order — the
        # LRU-style O(1) evictable list does not transfer because victims
        # come from two structures with promotion between them — but the
        # set lets the walk skip pinned entries without a callback per key.
        self._pinned: set[int] = set()

    # ------------------------------------------------------------------ #
    def record_access(self, key: int) -> bool:
        resident = key in self._resident
        if resident:
            self.stats.hits += 1
            if self._state.get(key) == _LIR:
                self._stack.move_to_end(key)
                self._prune()
            else:  # resident HIR
                if key in self._stack:
                    # Small reuse distance: promote to LIR.
                    self._stack.move_to_end(key)
                    self._queue.pop(key, None)
                    self._state[key] = _LIR
                    self._demote_excess_lir()
                    self._prune()
                else:
                    # Large reuse distance: stays HIR, refresh both orders.
                    self._stack[key] = None
                    self._queue.move_to_end(key)
            self._bound_ghosts()
            return True
        # Miss: leave a recency trace so a quick re-access promotes to LIR.
        self.stats.misses += 1
        self._stack[key] = None
        self._stack.move_to_end(key)
        self._state.setdefault(key, _HIR)
        self._bound_ghosts()
        return False

    def record_insert(self, key: int, cost: float = 0.0) -> None:
        self.stats.insertions += 1
        if key in self._resident:
            return
        self._resident.add(key)
        if self._lir_count() < self._lir_target:
            # LIR set not yet full: new residents become LIR directly
            # (classic LIRS cold-start fill; without it, demand-window
            # inserts leave a huge FIFO HIR queue that thrashes scans).
            self._state[key] = _LIR
            self._stack[key] = None
            self._stack.move_to_end(key)
            return
        if key in self._stack and self._state.get(key) == _HIR:
            # Ghost hit: promote, demote the bottom LIR.
            self._state[key] = _LIR
            self._stack.move_to_end(key)
            self._demote_excess_lir(force_one=True)
        else:
            self._state[key] = _HIR
            self._queue[key] = None
            self._queue.move_to_end(key)
        self._prune()
        self._bound_ghosts()

    def record_pin(self, key: int) -> None:
        self._pinned.add(key)

    def record_unpin(self, key: int) -> None:
        self._pinned.discard(key)

    def record_evict(self, key: int) -> None:
        self.stats.evictions += 1
        self._pinned.discard(key)
        self._resident.discard(key)
        self._queue.pop(key, None)
        if self._state.get(key) == _LIR:
            # Forced LIR eviction (pinning): drop from the stack entirely.
            self._stack.pop(key, None)
            self._state.pop(key, None)
            self._prune()
        # HIR entries keep their ghost trace in S (that is LIRS's memory).

    def victim(self, is_evictable: Callable[[int], bool]) -> int | None:
        for key in self._queue:  # front of Q first
            if key not in self._pinned and is_evictable(key):
                return key
        # No evictable resident HIR: fall back to the coldest LIR entry.
        for key in self._stack:  # bottom first
            if (
                key in self._resident
                and key not in self._pinned
                and self._state.get(key) == _LIR
                and is_evictable(key)
            ):
                return key
        return None

    def resident(self) -> Iterator[int]:
        return iter(set(self._resident))

    def is_resident(self, key: int) -> bool:
        return key in self._resident

    # -- introspection used by tests ------------------------------------ #
    def is_lir(self, key: int) -> bool:
        return key in self._resident and self._state.get(key) == _LIR

    def _lir_count(self) -> int:
        return sum(
            1 for k in self._resident if self._state.get(k) == _LIR
        )

    def _any_lir(self) -> bool:
        return any(self._state.get(k) == _LIR for k in self._resident)

    # ------------------------------------------------------------------ #
    def _demote_excess_lir(self, force_one: bool = False) -> None:
        """Demote stack-bottom LIR entries to HIR while over the LIR target."""
        demote = self._lir_count() - self._lir_target
        if force_one:
            demote = max(demote, 1)
        while demote > 0:
            bottom = next(iter(self._stack), None)
            if bottom is None:
                break
            if self._state.get(bottom) == _LIR and bottom in self._resident:
                self._stack.pop(bottom)
                self._state[bottom] = _HIR
                self._queue[bottom] = None
                self._queue.move_to_end(bottom)
                demote -= 1
                self._prune()
            else:
                self._stack.pop(bottom)

    def _prune(self) -> None:
        """Pop non-LIR entries off the stack bottom (LIRS stack pruning)."""
        while self._stack:
            bottom = next(iter(self._stack))
            if self._state.get(bottom) == _LIR and bottom in self._resident:
                break
            self._stack.pop(bottom)

    def _bound_ghosts(self) -> None:
        """Drop oldest ghosts when the stack outgrows its bound."""
        excess = len(self._stack) - self._ghost_bound
        if excess <= 0:
            return
        for key in list(self._stack):
            if excess <= 0:
                break
            if key not in self._resident:
                self._stack.pop(key)
                self._state.pop(key, None)
                excess -= 1
        self._prune()
