"""Toy scientific I/O stack: the SDF container format and a hookable
file-handle API standing in for netCDF/HDF5/ADIOS (Table I)."""

from repro.simio.api import (
    DataFile,
    IOHooks,
    current_hooks,
    install_hooks,
    sio_create,
    sio_open,
)
from repro.simio.format import FormatError, decode, encode, read_file, write_file

__all__ = [
    "DataFile",
    "FormatError",
    "IOHooks",
    "current_hooks",
    "decode",
    "encode",
    "install_hooks",
    "read_file",
    "sio_create",
    "sio_open",
    "write_file",
]
