"""SDF — a small self-describing array container format.

This stands in for netCDF/HDF5/ADIOS files in the reproduction.  The format
is deliberately simple but real: a magic number, a canonical JSON header
describing named n-dimensional arrays, then the raw little-endian payloads.

Bitwise reproducibility (paper Sec. I: SimFS requires re-simulations to
deliver bitwise-identical output) is a design constraint: the encoder is
fully deterministic — canonical JSON (sorted keys, no whitespace drift), no
timestamps, fixed byte order — so identical arrays always produce identical
files, and ``SIMFS_Bitrep`` can compare whole-file checksums.

Layout::

    bytes 0..3    magic  b"SDF1"
    bytes 4..11   header length H (u64 little-endian)
    bytes 12..12+H  canonical JSON header
    then          concatenated array payloads in header order

Header schema::

    {"attrs": {...}, "vars": {name: {"dtype": "<f8", "shape": [..],
                                     "offset": N, "nbytes": M}, ...}}
"""

from __future__ import annotations

import json
from typing import Any

import numpy as np

from repro.core.errors import InvalidArgumentError, SimFSError

__all__ = ["encode", "decode", "write_file", "read_file", "FormatError"]

_MAGIC = b"SDF1"


class FormatError(SimFSError):
    """Raised on malformed SDF containers."""


def _canonical_json(obj: Any) -> bytes:
    return json.dumps(obj, sort_keys=True, separators=(",", ":")).encode("utf-8")


def encode(variables: dict[str, np.ndarray], attrs: dict[str, Any] | None = None) -> bytes:
    """Serialize named arrays (+ JSON-serializable attrs) to SDF bytes.

    Variables are laid out in sorted-name order so the encoding is a pure
    function of its inputs.
    """
    if not isinstance(variables, dict):
        raise InvalidArgumentError("variables must be a dict of name -> ndarray")
    header_vars: dict[str, dict[str, Any]] = {}
    payloads: list[bytes] = []
    offset = 0
    for name in sorted(variables):
        arr = np.ascontiguousarray(variables[name])
        # Force little-endian so files are identical across platforms.
        le = arr.astype(arr.dtype.newbyteorder("<"), copy=False)
        payload = le.tobytes()
        header_vars[name] = {
            "dtype": le.dtype.str,
            "shape": list(arr.shape),
            "offset": offset,
            "nbytes": len(payload),
        }
        payloads.append(payload)
        offset += len(payload)
    header = _canonical_json({"attrs": attrs or {}, "vars": header_vars})
    out = bytearray()
    out += _MAGIC
    out += len(header).to_bytes(8, "little")
    out += header
    for payload in payloads:
        out += payload
    return bytes(out)


def decode(data: bytes) -> tuple[dict[str, np.ndarray], dict[str, Any]]:
    """Parse SDF bytes back into (variables, attrs)."""
    if len(data) < 12 or data[:4] != _MAGIC:
        raise FormatError("not an SDF container (bad magic)")
    header_len = int.from_bytes(data[4:12], "little")
    body_start = 12 + header_len
    if body_start > len(data):
        raise FormatError("truncated SDF header")
    try:
        header = json.loads(data[12:body_start].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FormatError(f"corrupt SDF header: {exc}") from exc
    variables: dict[str, np.ndarray] = {}
    for name, meta in header.get("vars", {}).items():
        start = body_start + meta["offset"]
        stop = start + meta["nbytes"]
        if stop > len(data):
            raise FormatError(f"truncated payload for variable {name!r}")
        arr = np.frombuffer(data[start:stop], dtype=np.dtype(meta["dtype"]))
        variables[name] = arr.reshape(meta["shape"]).copy()
    return variables, header.get("attrs", {})


def write_file(
    path: str, variables: dict[str, np.ndarray], attrs: dict[str, Any] | None = None
) -> int:
    """Encode and write an SDF file; returns the byte count written."""
    blob = encode(variables, attrs)
    with open(path, "wb") as fh:
        fh.write(blob)
    return len(blob)


def read_file(path: str) -> tuple[dict[str, np.ndarray], dict[str, Any]]:
    """Read and decode an SDF file."""
    with open(path, "rb") as fh:
        return decode(fh.read())
