"""File-handle I/O API over the SDF format, with interception hooks.

This is the stand-in for the netCDF/HDF5/ADIOS client libraries of Table I.
Analyses and simulators call :func:`sio_open` / :func:`sio_create` /
:meth:`DataFile.read` / :meth:`DataFile.close`; DVLib virtualizes those
calls by installing an :class:`IOHooks` implementation (exactly where the
original SimFS interposes on the C I/O libraries):

* ``on_open`` runs before an open for reading — DVLib asks the DV for the
  file and blocks until it is on disk;
* ``on_create`` runs before a create — DVLib may *redirect* the path into
  the context storage area and returns the effective path;
* ``on_close`` runs after a close — for files opened for writing, DVLib
  notifies the DV that the file is complete (the "file ready" signal of
  Fig. 4); for reads it releases the reference.

The hook installation is process-global per the original design (one DVLib
per client process), but re-entrant and restorable for tests.
"""

from __future__ import annotations

from typing import Any, Protocol

import numpy as np

from repro.core.errors import InvalidArgumentError, SimFSError
from repro.simio import format as sdf

__all__ = ["IOHooks", "DataFile", "sio_open", "sio_create", "install_hooks", "current_hooks"]


class IOHooks(Protocol):
    """Interception points DVLib installs around the I/O library."""

    def on_open(self, path: str) -> str:
        """Called before opening ``path`` for reading; returns the
        (possibly redirected) path to actually open."""
        ...

    def on_create(self, path: str) -> str:
        """Called before creating ``path``; returns the effective path."""
        ...

    def on_close(self, path: str, mode: str) -> None:
        """Called after closing the file (``mode`` is ``'r'`` or ``'w'``)."""
        ...


class _NullHooks:
    """Default no-op hooks: plain filesystem behaviour."""

    def on_open(self, path: str) -> str:
        return path

    def on_create(self, path: str) -> str:
        return path

    def on_close(self, path: str, mode: str) -> None:
        return None


_hooks: IOHooks = _NullHooks()


def install_hooks(hooks: IOHooks | None) -> IOHooks:
    """Install process-global interception hooks; returns the previous ones.

    Passing ``None`` restores plain filesystem behaviour.
    """
    global _hooks
    previous = _hooks
    _hooks = hooks if hooks is not None else _NullHooks()
    return previous


def current_hooks() -> IOHooks:
    """The currently installed hooks (for tests and diagnostics)."""
    return _hooks


class DataFile:
    """An open SDF file, read or write mode.

    Read mode loads the container eagerly (files are one output step — the
    paper's unit of access).  Write mode accumulates variables in memory and
    serializes on :meth:`close`, which is also when the DV learns the file
    is ready (DVLib intercepts *close*, Fig. 4 step 5).
    """

    def __init__(self, path: str, mode: str, _effective_path: str) -> None:
        if mode not in ("r", "w"):
            raise InvalidArgumentError(f"mode must be 'r' or 'w', got {mode!r}")
        self.path = path                      # logical (virtualized) path
        self.effective_path = _effective_path  # physical path on disk
        self.mode = mode
        self._closed = False
        self._vars: dict[str, np.ndarray] = {}
        self._attrs: dict[str, Any] = {}
        if mode == "r":
            self._vars, self._attrs = sdf.read_file(_effective_path)

    # -- reading -------------------------------------------------------- #
    def variables(self) -> list[str]:
        """Names of variables in the file."""
        self._check_open()
        return sorted(self._vars)

    def read(self, name: str) -> np.ndarray:
        """Read one variable (the ``nc_vara_get``/``H5Dread`` of Table I)."""
        self._check_open()
        try:
            return self._vars[name]
        except KeyError:
            raise SimFSError(f"no variable {name!r} in {self.path}") from None

    def attrs(self) -> dict[str, Any]:
        """File-level attributes."""
        self._check_open()
        return dict(self._attrs)

    # -- writing -------------------------------------------------------- #
    def write(self, name: str, array: np.ndarray) -> None:
        """Stage a variable for writing."""
        self._check_open()
        if self.mode != "w":
            raise SimFSError(f"{self.path} is open read-only")
        self._vars[name] = np.asarray(array)

    def set_attrs(self, **attrs: Any) -> None:
        """Stage file-level attributes."""
        self._check_open()
        if self.mode != "w":
            raise SimFSError(f"{self.path} is open read-only")
        self._attrs.update(attrs)

    # -- lifecycle ------------------------------------------------------ #
    def close(self) -> None:
        """Flush (write mode) and fire the ``on_close`` hook. Idempotent."""
        if self._closed:
            return
        if self.mode == "w":
            sdf.write_file(self.effective_path, self._vars, self._attrs)
        self._closed = True
        _hooks.on_close(self.path, self.mode)

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "DataFile":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise SimFSError(f"{self.path} is closed")


def sio_open(path: str) -> DataFile:
    """Open an existing data file for reading (may block under DVLib while
    a re-simulation produces it)."""
    effective = _hooks.on_open(path)
    return DataFile(path, "r", effective)


def sio_create(path: str) -> DataFile:
    """Create a data file for writing (DVLib may redirect it into the
    context storage area)."""
    effective = _hooks.on_create(path)
    return DataFile(path, "w", effective)
