"""Table I bindings: the (P)netCDF / (P)HDF5 / ADIOS call names.

The paper's DVLib provides bindings for the data-access calls of the
standard I/O libraries so unmodified analyses are virtualized:

=========  ====================  ============  ====================
Call       (P)NetCDF             (P)HDF5       ADIOS
=========  ====================  ============  ====================
open       ``nc_open``           ``H5Fopen``   ``adios_open`` (r)
create     ``nc_create``         ``H5Fcreate`` ``adios_open`` (w)
read       ``nc_vara_get_type``  ``H5Dread``   ``adios_schedule_read``
close      ``nc_close``          ``H5Fclose``  ``adios_close``
=========  ====================  ============  ====================

In the reproduction all three stacks are backed by the SDF container
(:mod:`repro.simio`); these shims expose the Table I names so example
analyses read exactly like their netCDF/HDF5/ADIOS originals.  Install
:class:`repro.client.transparent.VirtualizedHooks` first and every one of
these calls is virtualized.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import InvalidArgumentError
from repro.simio import DataFile, sio_create, sio_open

__all__ = [
    "nc_open",
    "nc_create",
    "nc_vara_get",
    "nc_close",
    "h5f_open",
    "h5f_create",
    "h5d_read",
    "h5f_close",
    "adios_open",
    "adios_schedule_read",
    "adios_close",
]


# -- (P)NetCDF -------------------------------------------------------- #
def nc_open(path: str) -> DataFile:
    """``nc_open`` / ``ncmpi_open``: open a dataset for reading."""
    return sio_open(path)


def nc_create(path: str) -> DataFile:
    """``nc_create`` / ``ncmpi_create``: create a dataset for writing."""
    return sio_create(path)


def nc_vara_get(handle: DataFile, varname: str) -> np.ndarray:
    """``nc_vara_get_<type>`` / ``ncmpi_vara_get_<type>``: read a variable."""
    return handle.read(varname)


def nc_close(handle: DataFile) -> None:
    """``nc_close`` / ``ncmpi_close``."""
    handle.close()


# -- (P)HDF5 ----------------------------------------------------------- #
def h5f_open(path: str) -> DataFile:
    """``H5Fopen``: open a file for reading."""
    return sio_open(path)


def h5f_create(path: str) -> DataFile:
    """``H5Fcreate``: create a file for writing."""
    return sio_create(path)


def h5d_read(handle: DataFile, dataset: str) -> np.ndarray:
    """``H5Dread``: read a dataset."""
    return handle.read(dataset)


def h5f_close(handle: DataFile) -> None:
    """``H5Fclose``."""
    handle.close()


# -- ADIOS ------------------------------------------------------------- #
def adios_open(path: str, mode: str) -> DataFile:
    """``adios_open``: ``mode`` selects read (``"r"``) or write (``"w"``)."""
    if mode == "r":
        return sio_open(path)
    if mode == "w":
        return sio_create(path)
    raise InvalidArgumentError(f"adios_open mode must be 'r' or 'w', got {mode!r}")


def adios_schedule_read(handle: DataFile, varname: str) -> np.ndarray:
    """``adios_schedule_read`` (+ implicit perform): read a variable."""
    return handle.read(varname)


def adios_close(handle: DataFile) -> None:
    """``adios_close``."""
    handle.close()
