"""Transparent mode: I/O-library interception hooks (paper Sec. III-C1).

Installing :class:`VirtualizedHooks` into :mod:`repro.simio` gives legacy
analyses and simulators a virtualized view with **zero code changes**:

* an analysis ``open`` of a context output file blocks (inside the hook)
  until the DV has the file on disk — launching a re-simulation if needed —
  and is then redirected to the physical path in the storage area;
* an analysis read-``close`` releases the file's reference;
* a simulator ``create`` is redirected into the context storage area
  (restart files into the restart directory);
* a simulator write-``close`` signals the DV that the file is ready
  (Fig. 4, step 5).

Files whose names do not match the context's naming convention pass
through untouched, so applications can mix virtualized and private I/O.
The context name can come from the ``SIMFS_CONTEXT`` environment variable,
exactly as in the original SimFS.
"""

from __future__ import annotations

import os

from repro.client.dvlib import DVConnection
from repro.core.errors import ContextError
from repro.simulators.driver import FilePatternNaming

__all__ = ["VirtualizedHooks", "context_from_env", "ENV_CONTEXT"]

ENV_CONTEXT = "SIMFS_CONTEXT"


def context_from_env() -> str:
    """Context name from the ``SIMFS_CONTEXT`` environment variable."""
    name = os.environ.get(ENV_CONTEXT, "")
    if not name:
        raise ContextError(
            f"transparent mode needs a context: set ${ENV_CONTEXT} or pass "
            "context= explicitly"
        )
    return name


class VirtualizedHooks:
    """`IOHooks` implementation bridging simio calls to the DV.

    Parameters
    ----------
    connection:
        The DVLib connection.
    naming:
        The context's file naming convention; used to recognize which
        opens/creates belong to the virtualized context.
    context:
        Context name; defaults to ``$SIMFS_CONTEXT``.
    role:
        ``"analysis"`` (default) or ``"simulator"``.  Simulators get
        create-redirection and write-close notification; analyses get
        blocking opens and read-close release.
    block_timeout:
        Upper bound in seconds for waiting on a re-simulation.
    """

    def __init__(
        self,
        connection: DVConnection,
        naming: FilePatternNaming,
        context: str | None = None,
        role: str = "analysis",
        block_timeout: float | None = 300.0,
    ) -> None:
        if role not in ("analysis", "simulator"):
            raise ContextError(f"unknown role {role!r}")
        self.connection = connection
        self.naming = naming
        self.context = context or context_from_env()
        self.role = role
        self.block_timeout = block_timeout
        #: logical file names this hook has redirected (path -> filename)
        self._virtualized: dict[str, str] = {}

    # ------------------------------------------------------------------ #
    def on_open(self, path: str) -> str:
        filename = os.path.basename(path)
        if not self.naming.is_output(filename):
            return path
        if self.role == "analysis":
            # Blocks until the file exists (re-simulating on a miss); the
            # "non-blocking open, blocking read" split of the paper happens
            # at the I/O-library layer where reads immediately follow.
            self.connection.wait_ready(
                self.context, filename, timeout=self.block_timeout
            )
        physical = self.connection.storage_path(self.context, filename)
        self._virtualized[path] = filename
        return physical

    def on_create(self, path: str) -> str:
        filename = os.path.basename(path)
        if self.naming.is_output(filename):
            self._virtualized[path] = filename
            return self.connection.storage_path(self.context, filename)
        if self.naming.is_restart(filename):
            return os.path.join(self.connection.restart_dir(self.context), filename)
        return path

    def on_close(self, path: str, mode: str) -> None:
        filename = self._virtualized.pop(path, None)
        if filename is None:
            return
        if mode == "r" and self.role == "analysis":
            self.connection.release(self.context, filename)
        elif mode == "w" and self.role == "simulator":
            self.connection.notify_write_close(self.context, filename)
