"""DVLib: the client library connecting analyses/simulators to the DV
(paper Sec. III).

Two interchangeable connection flavours expose the same interface:

* :class:`TcpConnection` — talks to a :class:`repro.dv.server.DVServer`
  over the JSON wire protocol, with a background listener thread matching
  replies and recording unsolicited ``ready`` notifications (the paper's
  deployment: DVLib and DV are separate processes).
* :class:`LocalConnection` — drives a :class:`DVCoordinator` in-process
  (handy for examples, tests, and single-process pipelines).

Blocking-on-read semantics (Sec. III-C1: the *open* is non-blocking, the
*read* blocks until the DV notifies) are implemented by
:meth:`DVConnection.wait_ready`, which the transparent-mode hooks call
before letting the I/O library touch the file.
"""

from __future__ import annotations

import abc
import itertools
import os
import queue
import random
import socket
import threading
import time
import uuid
from dataclasses import dataclass

from repro.core.errors import (
    ConnectionLostError,
    DETAIL_ALREADY_CONNECTED,
    DVConnectionLost,
    ErrorCode,
    FileNotInContextError,
    InvalidArgumentError,
    RestartFailedError,
    SimFSError,
)
from repro.core.status import FileState
from repro.dv.protocol import (
    CODEC_BINARY,
    CODEC_LEGACY,
    PROTOCOL_VERSION,
    SUPPORTED_CODECS,
    MessageReader,
    encode_frame,
    encode_open_request,
    send_message,
)
from repro.obs.trace import new_trace

__all__ = [
    "FileInfo",
    "DVConnection",
    "TcpConnection",
    "LocalConnection",
    "fetch_stats",
]


def fetch_stats(host: str, port: int) -> dict:
    """One-shot ``stats`` query against a running DV daemon (backs the
    ``simfs-dv --stats`` and ``simfs-ctl dv-stats`` entry points)."""
    with TcpConnection(host, port, {}, {}) as conn:
        return conn.stats()


@dataclass(frozen=True)
class FileInfo:
    """Availability report for one requested file."""

    filename: str
    available: bool
    state: FileState
    estimated_wait: float


class _ReadyTable:
    """Thread-safe record of ready/failed notifications per (context, file).

    Notifications may arrive *before* the reply of the open that caused
    them; recording everything unconditionally makes the race harmless.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._ready: set[tuple[str, str]] = set()
        self._failed: set[tuple[str, str]] = set()
        self._watchers: list = []

    def add_watcher(self, callback) -> None:
        """Register a callback fired on every notification (used to update
        outstanding non-blocking acquire requests)."""
        with self._cond:
            self._watchers.append(callback)

    def record(self, context: str, filename: str, ok: bool) -> None:
        with self._cond:
            (self._ready if ok else self._failed).add((context, filename))
            watchers = list(self._watchers)
            self._cond.notify_all()
        for watcher in watchers:
            watcher(context, filename, ok)

    def wait(self, context: str, filename: str, timeout: float | None) -> bool:
        """Block until the file is ready; returns False if it failed.

        Raises ``TimeoutError`` when the timeout expires first.
        """
        key = (context, filename)
        with self._cond:
            happened = self._cond.wait_for(
                lambda: key in self._ready or key in self._failed,
                timeout=timeout,
            )
            if not happened:
                raise TimeoutError(
                    f"timed out waiting for {filename!r} in context {context!r}"
                )
            return key in self._ready

    def is_ready(self, context: str, filename: str) -> bool:
        with self._cond:
            return (context, filename) in self._ready

    def forget(self, context: str, filename: str) -> None:
        """Drop state for a file (after release, so re-acquires re-wait)."""
        with self._cond:
            self._ready.discard((context, filename))
            self._failed.discard((context, filename))


class DVConnection(abc.ABC):
    """Common DVLib connection interface."""

    def __init__(self, client_id: str | None = None) -> None:
        self.client_id = client_id or f"dvlib-{os.getpid()}-{uuid.uuid4().hex[:8]}"
        self.ready_table = _ReadyTable()

    # -- control plane ---------------------------------------------------- #
    @abc.abstractmethod
    def attach(self, context: str) -> None:
        """Attach this client to a simulation context (``SIMFS_Init``)."""

    @abc.abstractmethod
    def finalize(self, context: str) -> None:
        """Detach from a context (``SIMFS_Finalize``)."""

    @abc.abstractmethod
    def close(self) -> None:
        """Tear down the connection."""

    # -- data plane --------------------------------------------------------#
    @abc.abstractmethod
    def open(self, context: str, filename: str) -> FileInfo:
        """Request one file; never blocks (Sec. III-C1 open semantics)."""

    @abc.abstractmethod
    def acquire(self, context: str, filenames: list[str]) -> list[FileInfo]:
        """Request a set of files (``SIMFS_Acquire`` core)."""

    @abc.abstractmethod
    def release(self, context: str, filename: str) -> None:
        """Drop the reference to a file."""

    @abc.abstractmethod
    def notify_write_close(self, context: str, filename: str) -> None:
        """Simulator-side: an output file was closed and is ready on disk."""

    @abc.abstractmethod
    def bitrep(self, context: str, filename: str, path: str | None = None) -> bool:
        """Compare a file against the recorded initial-run checksum."""

    @abc.abstractmethod
    def batch(self, ops: list[dict]) -> list[dict]:
        """Pipelined sub-ops: send many requests in one frame, get the
        per-sub-op reply payloads back in order.  Each payload carries its
        own ``error`` field; a failing sub-op does not abort the rest."""

    @abc.abstractmethod
    def stats(self) -> dict:
        """Snapshot of the DV's metrics plane (the ``stats`` op)."""

    @abc.abstractmethod
    def storage_path(self, context: str, filename: str) -> str:
        """Physical path of an output file in the context storage area."""

    @abc.abstractmethod
    def restart_dir(self, context: str) -> str:
        """Directory holding the context's restart files."""

    # -- blocking helper ---------------------------------------------------#
    def wait_ready(
        self, context: str, filename: str, timeout: float | None = None
    ) -> None:
        """Block until ``filename`` is on disk; raises on failed restarts."""
        info = self.open(context, filename)
        if info.available:
            return
        ok = self.ready_table.wait(context, filename, timeout)
        if not ok:
            raise RestartFailedError(
                f"re-simulation for {filename!r} failed (context {context!r})"
            )

    def __enter__(self) -> "DVConnection":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# --------------------------------------------------------------------- #
class TcpConnection(DVConnection):
    """DVLib over the TCP wire protocol.

    ``codec`` selects the wire format to *request*: the default
    ``binary`` asks a v2 DV for length-prefixed binary frames during the
    ``hello`` handshake and falls back to newline JSON automatically when
    the server does not speak it (a v1 DV simply ignores the request).
    Pass ``codec="legacy"`` to force newline JSON against any server.

    ``trace`` opts requests into distributed tracing: ``True`` traces
    every request, a float in ``(0, 1]`` head-samples that fraction.
    Tracing is negotiated during ``hello`` (legacy daemons simply never
    grant it); sampled requests carry a compact trace context the DV
    chain propagates hop by hop.  :attr:`last_trace_id` holds the trace
    id of the most recent sampled request for ``simfs-ctl trace``.
    """

    def __init__(
        self,
        host: str,
        port: int,
        storage_dirs: dict[str, str],
        restart_dirs: dict[str, str],
        client_id: str | None = None,
        connect_timeout: float = 10.0,
        codec: str = CODEC_BINARY,
        trace: bool | float = False,
    ) -> None:
        super().__init__(client_id)
        if codec not in SUPPORTED_CODECS:
            raise InvalidArgumentError(f"unknown codec {codec!r}")
        self._trace_rate = 1.0 if trace is True else max(0.0, float(trace))
        self._trace_granted = False
        self._trace_rng = random.Random()
        #: Trace id (hex) of the most recent head-sampled request.
        self.last_trace_id: str | None = None
        self._host = host
        self._port = port
        self._connect_timeout = connect_timeout
        self._want_codec = codec
        self._storage_dirs = dict(storage_dirs)
        self._restart_dirs = dict(restart_dirs)
        self._send_lock = threading.Lock()
        self._reqs = itertools.count(1)
        self._replies: dict[int, queue.Queue] = {}
        self._replies_lock = threading.Lock()
        self._closed = False
        self._lost = True  # until the first handshake succeeds
        self.codec = CODEC_LEGACY
        #: Extra fields the daemon attached to its hello reply (a cluster
        #: node reports its ring/membership view here).
        self.server_info: dict = {}
        # Client-side mirror of the daemon's wire counters (guarded by the
        # matching send/replies locks; surfaced via :meth:`wire_stats`).
        self._frames_sent = 0
        self._bytes_sent = 0
        self._frames_recv = 0
        self._bytes_recv = 0
        self._connect()

    def _connect(self, deadline: float | None = None) -> None:
        """Dial and run the hello handshake; starts the listener thread.

        The hello (and its reply) always travel as legacy newline JSON so
        negotiation itself needs no codec; ``vers``/``codec`` request the
        upgrade.  ``deadline`` (reconnect path) allows brief retries of a
        "client_id already connected" rejection while the daemon finishes
        tearing down our previous connection.
        """
        try:
            sock = socket.create_connection(
                (self._host, self._port), timeout=self._connect_timeout
            )
        except OSError as exc:
            raise DVConnectionLost(
                f"cannot reach DV at {self._host}:{self._port}: {exc}"
            ) from exc
        sock.settimeout(None)
        # Request/reply frames are tiny: Nagle's algorithm only adds
        # latency to every RPC round trip.
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass
        self.codec = CODEC_LEGACY
        hello = {"op": "hello", "req": 0, "client_id": self.client_id}
        if self._want_codec != CODEC_LEGACY:
            hello["vers"] = PROTOCOL_VERSION
            hello["codec"] = self._want_codec
        if self._trace_rate > 0.0:
            hello["vers"] = PROTOCOL_VERSION
            hello["trace"] = 1
        try:
            send_message(sock, hello)
            reader = MessageReader(sock)
            reply = reader.read_message()
        except (OSError, SimFSError) as exc:
            sock.close()
            raise DVConnectionLost(f"DV handshake failed: {exc}") from exc
        if reply is None or reply.get("op") != "reply":
            sock.close()
            raise DVConnectionLost("DV handshake failed")
        if reply.get("error"):
            sock.close()
            error = _error_from_code(reply["error"], reply.get("detail", ""))
            if deadline is not None and DETAIL_ALREADY_CONNECTED in str(error):
                # Reconnect race: the daemon releases a dead connection's
                # client_id asynchronously (worker-pool cleanup); ours may
                # still be reserved for a few milliseconds.
                if time.monotonic() < deadline:
                    time.sleep(0.05)
                    return self._connect(deadline)
            raise error
        granted = reply.get("codec", CODEC_LEGACY)
        if granted in SUPPORTED_CODECS and granted != CODEC_LEGACY:
            self.codec = granted
            reader.set_codec(granted)
        self._trace_granted = bool(reply.get("trace"))
        self.server_info = {
            key: value for key, value in reply.items()
            if key not in ("op", "req", "error", "detail")
        }
        self._sock = sock
        # Swap reader and clear the lost flag atomically with respect to
        # the old listener's teardown check (see _listen).
        with self._replies_lock:
            self._reader = reader
            self._lost = False
        self._listener = threading.Thread(
            target=self._listen, args=(reader,),
            name=f"dvlib-listen-{self.client_id}", daemon=True,
        )
        self._listener.start()

    @property
    def address(self) -> tuple[str, int]:
        """The daemon address this connection dials."""
        return (self._host, self._port)

    @property
    def is_lost(self) -> bool:
        """True once the link died (or was closed); :meth:`reconnect`
        clears it."""
        return self._lost or self._closed

    def reconnect(self) -> None:
        """Re-dial the daemon: fresh socket, fresh ``hello`` handshake.

        The client_id and the ready table survive, so a
        :class:`~repro.client.api.SimFSSession` can re-register its
        context and resume after a daemon restart or failover.  RPCs that
        were in flight when the link died have already failed with
        :class:`DVConnectionLost`; callers re-issue them.
        """
        if self._closed:
            raise DVConnectionLost("connection is closed")
        self._lost = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except (OSError, AttributeError):
            pass
        try:
            self._sock.close()
        except (OSError, AttributeError):
            pass
        self._fail_outstanding()
        self._connect(deadline=time.monotonic() + 5.0)

    def wire_stats(self) -> dict:
        """Client-side wire counters (frames/bytes in each direction)."""
        with self._send_lock:
            sent = {"frames_sent": self._frames_sent,
                    "bytes_sent": self._bytes_sent}
        with self._replies_lock:
            recv = {"frames_recv": self._frames_recv,
                    "bytes_recv": self._bytes_recv}
        return {"codec": self.codec, **sent, **recv}

    # -- plumbing ----------------------------------------------------------#
    def _listen(self, reader: MessageReader) -> None:
        try:
            while not self._closed and self._reader is reader:
                message = reader.read_message()
                if message is None:
                    break
                with self._replies_lock:
                    self._frames_recv += 1
                    self._bytes_recv = reader.bytes_read
                if message.get("op") == "ready":
                    self.ready_table.record(
                        message["context"], message["file"], bool(message.get("ok", True))
                    )
                elif message.get("op") == "reply":
                    with self._replies_lock:
                        waiter = self._replies.pop(message.get("req"), None)
                    if waiter is not None:
                        waiter.put(message)
        except (SimFSError, OSError):
            pass
        # Mark the link dead and unblock any RPC still waiting — but only
        # if this listener still owns the connection (a reconnect swaps
        # in a new reader before this thread observes the old socket
        # die).  The check-and-set is atomic under _replies_lock: a stale
        # listener racing a concurrent reconnect must not mark the fresh
        # connection lost after the swap.
        with self._replies_lock:
            owns = self._reader is reader
            if owns:
                self._lost = True
        if owns:
            self._fail_outstanding()

    def _fail_outstanding(self) -> None:
        with self._replies_lock:
            waiters = list(self._replies.values())
            self._replies.clear()
        for waiter in waiters:
            waiter.put(None)  # sentinel: the link is gone

    def _next_tc(self) -> str | None:
        """Head-sampling coin flip: a fresh sampled trace context (wire
        form) for this request, or ``None`` when untraced."""
        if not self._trace_granted or self._trace_rate <= 0.0:
            return None
        if self._trace_rate < 1.0 and self._trace_rng.random() >= self._trace_rate:
            return None
        tc = new_trace(sampled=True)
        self.last_trace_id = f"{tc.trace_id:016x}"
        return tc.to_wire()

    def _rpc(self, message: dict, timeout: float = 60.0) -> dict:
        if self._closed:
            raise ConnectionLostError("connection is closed")
        if "tc" not in message:
            tc = self._next_tc()
            if tc is not None:
                message["tc"] = tc
        req = next(self._reqs)
        message["req"] = req
        return self._rpc_send(req, encode_frame(message, self.codec), timeout)

    def call(self, message: dict, timeout: float = 60.0) -> dict:
        """Generic RPC: send any op-bearing message, return its reply.

        The escape hatch for service-level ops outside the classic DVLib
        surface (``{"op": "cluster"}``, future admin ops).
        """
        return self._rpc(dict(message), timeout)

    def _rpc_send(self, req: int, data: bytes, timeout: float = 60.0) -> dict:
        """Ship one pre-encoded request frame and await its reply."""
        if self._lost:
            raise DVConnectionLost("DV connection lost (reconnect to resume)")
        waiter: queue.Queue = queue.Queue(maxsize=1)
        with self._replies_lock:
            self._replies[req] = waiter
        try:
            with self._send_lock:
                self._frames_sent += 1
                self._bytes_sent += len(data)
                self._sock.sendall(data)
        except OSError as exc:
            self._lost = True
            with self._replies_lock:
                self._replies.pop(req, None)
            raise DVConnectionLost(f"DV connection lost: {exc}") from exc
        try:
            reply = waiter.get(timeout=timeout)
        except queue.Empty:
            with self._replies_lock:
                self._replies.pop(req, None)
            raise ConnectionLostError("DV reply timed out") from None
        if reply is None:
            raise DVConnectionLost("DV connection lost mid-request")
        error = reply.get("error", 0)
        if error:
            raise _error_from_code(error, reply.get("detail", ""))
        return reply

    # -- interface ----------------------------------------------------------#
    def attach(self, context: str) -> None:
        self._rpc({"op": "attach", "context": context})

    def finalize(self, context: str) -> None:
        self._rpc({"op": "finalize", "context": context})

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        # shutdown() (not just close()) is required: the listener thread is
        # blocked in recv() on this socket, which keeps the kernel-side file
        # description alive — a bare close() would neither wake it nor send
        # the FIN the DV needs to clean up this client.
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def open(self, context: str, filename: str) -> FileInfo:
        # The transparent path's hottest RPC: packed straight from the
        # fields, skipping the dict round-trip on the binary codec.
        if self._closed:
            raise ConnectionLostError("connection is closed")
        req = next(self._reqs)
        reply = self._rpc_send(
            req,
            encode_open_request(
                req, context, filename, self.codec, tc=self._next_tc()
            ),
        )
        return FileInfo(
            filename=filename,
            available=bool(reply["available"]),
            state=FileState(reply["state"]),
            estimated_wait=float(reply["wait"]),
        )

    def acquire(self, context: str, filenames: list[str]) -> list[FileInfo]:
        reply = self._rpc({"op": "acquire", "context": context, "files": filenames})
        return [
            FileInfo(
                filename=item["file"],
                available=bool(item["available"]),
                state=FileState(item["state"]),
                estimated_wait=float(item["wait"]),
            )
            for item in reply["results"]
        ]

    def release(self, context: str, filename: str) -> None:
        self._rpc({"op": "release", "context": context, "file": filename})
        self.ready_table.forget(context, filename)

    def notify_write_close(self, context: str, filename: str) -> None:
        self._rpc({"op": "wclose", "context": context, "file": filename})

    def bitrep(self, context: str, filename: str, path: str | None = None) -> bool:
        message = {"op": "bitrep", "context": context, "file": filename}
        if path is not None:
            message["path"] = path
        return bool(self._rpc(message)["matches"])

    def batch(self, ops: list[dict]) -> list[dict]:
        return list(self._rpc({"op": "batch", "ops": list(ops)})["results"])

    def stats(self) -> dict:
        return dict(self._rpc({"op": "stats"})["stats"])

    # -- bulk data plane ---------------------------------------------------#
    def fetch_info(self, context: str, filename: str | None = None) -> dict:
        """Ask the control plane where a context file can be pulled from.

        Routable: whichever daemon this connection reaches forwards the
        question to the context's owner, so the reply's ``data_host``/
        ``data_port`` name the owner's data plane.  Without ``filename``
        the reply enumerates the context's available output files.
        """
        message = {"op": "fetch_info", "context": context}
        if filename is not None:
            message["file"] = filename
        return self._rpc(message)

    def fetch_file(
        self,
        context: str,
        filename: str,
        dest: str,
        *,
        resume: bool = True,
        timeout: float = 60.0,
    ):
        """Pull one context file over the bulk data plane into ``dest``.

        The transfer is chunked, resumable (a leftover ``dest.part`` from
        an interrupted pull continues from its offset) and verified
        against the server's whole-file SHA-256 before the rename into
        place.  Returns a :class:`repro.data.client.FetchResult`.
        """
        from repro.data.client import DataClient

        info = self.fetch_info(context, filename)
        if not info.get("exists"):
            raise FileNotInContextError(
                f"file {filename!r} has no bytes to fetch in {context!r}"
            )
        host, port = info.get("data_host"), info.get("data_port")
        if not host or not port:
            raise ConnectionLostError(
                f"context {context!r}'s owner advertises no data plane"
            )
        with DataClient(host, port, timeout=timeout) as client:
            return client.fetch(
                context, filename, dest, resume=resume, tc=self._next_tc()
            )

    def fetch_context(
        self,
        context: str,
        dest_dir: str,
        *,
        resume: bool = True,
        timeout: float = 60.0,
    ) -> dict:
        """Pull every available output file of ``context`` into
        ``dest_dir``; returns ``{filename: FetchResult}``."""
        from repro.data.client import DataClient

        info = self.fetch_info(context)
        host, port = info.get("data_host"), info.get("data_port")
        names = list(info.get("files", []))
        results: dict = {}
        if not names:
            return results
        if not host or not port:
            raise ConnectionLostError(
                f"context {context!r}'s owner advertises no data plane"
            )
        os.makedirs(dest_dir, exist_ok=True)
        tc = self._next_tc()
        with DataClient(host, port, timeout=timeout) as client:
            for name in names:
                results[name] = client.fetch(
                    context, name, os.path.join(dest_dir, name),
                    resume=resume, tc=tc,
                )
        return results

    def storage_path(self, context: str, filename: str) -> str:
        return os.path.join(self._storage_dirs[context], filename)

    def restart_dir(self, context: str) -> str:
        return self._restart_dirs[context]


# --------------------------------------------------------------------- #
class LocalConnection(DVConnection):
    """DVLib talking to an in-process DV server (no sockets)."""

    def __init__(self, server, client_id: str | None = None) -> None:
        """``server`` is a :class:`repro.dv.server.DVServer` (not started)
        or anything exposing ``coordinator``, ``launcher`` and
        ``storage_path``."""
        super().__init__(client_id)
        self._server = server
        self._coordinator = server.coordinator
        self._clock = server.launcher.clock
        self._contexts: set[str] = set()
        # Splice this client's notifications into the ready table.
        inner = self._coordinator._notify

        def notify(notification) -> None:
            inner(notification)
            if notification.client_id == self.client_id:
                self.ready_table.record(
                    notification.context_name, notification.filename, notification.ok
                )

        self._coordinator._notify = notify

    def attach(self, context: str) -> None:
        # Shards serialize their own state: no front-end lock is needed.
        self._coordinator.client_connect(self.client_id, context)
        self._contexts.add(context)

    def finalize(self, context: str) -> None:
        self._coordinator.client_disconnect(
            self.client_id, context, self._clock.now()
        )
        self._contexts.discard(context)

    def close(self) -> None:
        for context in list(self._contexts):
            try:
                self.finalize(context)
            except SimFSError:
                pass

    def open(self, context: str, filename: str) -> FileInfo:
        result = self._coordinator.handle_open(
            self.client_id, context, filename, self._clock.now()
        )
        return FileInfo(
            filename=filename,
            available=result.available,
            state=result.state,
            estimated_wait=result.estimated_wait,
        )

    def acquire(self, context: str, filenames: list[str]) -> list[FileInfo]:
        return [self.open(context, name) for name in filenames]

    def release(self, context: str, filename: str) -> None:
        self._coordinator.handle_release(
            self.client_id, context, filename, self._clock.now()
        )
        self.ready_table.forget(context, filename)

    def notify_write_close(self, context: str, filename: str) -> None:
        self._coordinator.sim_file_closed(context, filename, self._clock.now())

    def bitrep(self, context: str, filename: str, path: str | None = None) -> bool:
        if path is None:
            path = self.storage_path(context, filename)
        return self._coordinator.handle_bitrep(context, filename, path)

    def batch(self, ops: list[dict]) -> list[dict]:
        """In-process mirror of the daemon's ``batch`` op semantics."""
        results = []
        for sub in ops:
            sub_op = sub.get("op") if isinstance(sub, dict) else None
            try:
                payload = self._local_op(sub_op, sub)
            except SimFSError as exc:
                payload = {"error": int(exc.code), "detail": str(exc)}
            payload.setdefault("error", int(ErrorCode.SUCCESS))
            payload["op"] = sub_op
            results.append(payload)
        return results

    def _local_op(self, sub_op: str | None, sub: dict) -> dict:
        if sub_op == "open":
            info = self.open(sub["context"], sub["file"])
            return {"available": info.available, "state": info.state.value,
                    "wait": info.estimated_wait}
        if sub_op == "acquire":
            infos = self.acquire(sub["context"], list(sub["files"]))
            return {"results": [
                {"file": i.filename, "available": i.available,
                 "state": i.state.value, "wait": i.estimated_wait}
                for i in infos
            ]}
        if sub_op == "release":
            self.release(sub["context"], sub["file"])
            return {}
        if sub_op == "wclose":
            self.notify_write_close(sub["context"], sub["file"])
            return {}
        if sub_op == "bitrep":
            return {"matches": self.bitrep(
                sub["context"], sub["file"], sub.get("path")
            )}
        if sub_op == "attach":
            self.attach(sub["context"])
            return {}
        if sub_op == "finalize":
            self.finalize(sub["context"])
            return {}
        if sub_op == "stats":
            return {"stats": self.stats()}
        from repro.core.errors import ProtocolError

        raise ProtocolError(f"unknown or non-batchable sub-op {sub_op!r}")

    def stats(self) -> dict:
        return self._coordinator.stats_snapshot()

    def storage_path(self, context: str, filename: str) -> str:
        return self._server.storage_path(context, filename)

    def restart_dir(self, context: str) -> str:
        return self._server.launcher.restart_dir(context)


def _error_from_code(code: int, detail: str) -> SimFSError:
    """Map a wire error code back to the local exception hierarchy."""
    from repro.core import errors as err

    mapping: dict[int, type[SimFSError]] = {
        int(ErrorCode.ERR_CONTEXT): err.ContextError,
        int(ErrorCode.ERR_RESTART_FAILED): err.RestartFailedError,
        int(ErrorCode.ERR_NOT_FOUND): err.FileNotInContextError,
        int(ErrorCode.ERR_PROTOCOL): err.ProtocolError,
        int(ErrorCode.ERR_CONNECTION): err.ConnectionLostError,
        int(ErrorCode.ERR_INVALID): err.InvalidArgumentError,
        int(ErrorCode.ERR_CHECKSUM): err.ChecksumUnavailableError,
    }
    cls = mapping.get(code, SimFSError)
    return cls(detail or f"DV error code {code}")
