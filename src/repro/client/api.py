"""The SimFS APIs (paper Sec. III-C2) in both C-style and Pythonic form.

The original exposes ``SIMFS_Init/Acquire/Acquire_nb/Wait/Test/Waitsome/
Testsome/Release/Bitrep/Finalize`` returning ``int`` error codes with out
parameters.  Python has no out parameters, so the C-style shims return
``(ErrorCode, value)`` tuples with the exact call semantics; the
:class:`SimFSSession` class is the idiomatic interface both the examples
and the shims build on.
"""

from __future__ import annotations

import threading

from repro.client.dvlib import DVConnection, _error_from_code
from repro.core.errors import ErrorCode, InvalidArgumentError, SimFSError
from repro.core.status import AcquireRequest, FileState, Status
from repro.simio import DataFile, sio_open

__all__ = [
    "SimFSSession",
    "simfs_init",
    "simfs_finalize",
    "simfs_acquire",
    "simfs_acquire_nb",
    "simfs_release",
    "simfs_wait",
    "simfs_test",
    "simfs_waitsome",
    "simfs_testsome",
    "simfs_bitrep",
]


class SimFSSession:
    """A client's attachment to one simulation context.

    Holds the non-blocking request plumbing: every ``ready`` notification
    from the DV is fanned out to outstanding :class:`AcquireRequest`
    objects through a ready-table watcher.
    """

    def __init__(self, connection: DVConnection, context: str) -> None:
        self.connection = connection
        self.context = context
        self._requests: list[AcquireRequest] = []
        self._requests_lock = threading.Lock()
        connection.attach(context)
        connection.ready_table.add_watcher(self._on_notification)
        self._finalized = False

    # ------------------------------------------------------------------ #
    # Acquire / release
    # ------------------------------------------------------------------ #
    def acquire(self, filenames: list[str], timeout: float | None = None) -> Status:
        """Blocking acquire: returns when every file is on disk."""
        infos = self.connection.acquire(self.context, filenames)
        status = self._status_from_infos(infos)
        missing = [i.filename for i in infos if not i.available]
        for filename in missing:
            ok = self.connection.ready_table.wait(self.context, filename, timeout)
            status.file_states[filename] = (
                FileState.ON_DISK if ok else FileState.FAILED
            )
            if not ok:
                status.error = int(ErrorCode.ERR_RESTART_FAILED)
        if status.ok:
            status.estimated_wait = 0.0
        return status

    def acquire_nb(self, filenames: list[str]) -> tuple[Status, AcquireRequest]:
        """Non-blocking acquire (``SIMFS_Acquire_nb``)."""
        request = AcquireRequest(filenames=list(filenames))
        with self._requests_lock:
            self._requests.append(request)
        infos = self.connection.acquire(self.context, filenames)
        for info in infos:
            if info.available:
                request.mark_ready(info.filename)
            elif self.connection.ready_table.is_ready(self.context, info.filename):
                # Notification raced ahead of the acquire reply.
                request.mark_ready(info.filename)
        return self._status_from_infos(infos), request

    def release(self, filename: str) -> None:
        """``SIMFS_Release``: drop the reference to a file."""
        self.connection.release(self.context, filename)

    def release_many(self, filenames: list[str]) -> None:
        """Release several files in one pipelined ``batch`` frame.

        Equivalent to :meth:`release` per file but with a single round
        trip — the counterpart to acquiring a window of steps at once.
        """
        if not filenames:
            return
        results = self.connection.batch([
            {"op": "release", "context": self.context, "file": name}
            for name in filenames
        ])
        first_error: tuple[int, str] | None = None
        for name, payload in zip(filenames, results):
            if payload.get("error"):
                if first_error is None:
                    first_error = (payload["error"], payload.get("detail", ""))
            else:
                self.connection.ready_table.forget(self.context, name)
        if first_error is not None:
            raise _error_from_code(*first_error)

    def stats(self) -> dict:
        """Metrics-plane snapshot of the DV this session talks to.

        Over TCP the snapshot additionally carries ``client_wire`` — this
        connection's own frame/byte counters and negotiated codec — so an
        analysis can see both ends of the wire in one call.
        """
        snapshot = self.connection.stats()
        wire_stats = getattr(self.connection, "wire_stats", None)
        if callable(wire_stats):
            snapshot["client_wire"] = wire_stats()
        return snapshot

    # ------------------------------------------------------------------ #
    # Wait / test
    # ------------------------------------------------------------------ #
    def wait(self, request: AcquireRequest, timeout: float | None = None) -> Status:
        """``SIMFS_Wait``: block until every file of the request resolves."""
        complete = request.wait(timeout)
        return self._status_from_request(request, complete)

    def test(self, request: AcquireRequest) -> tuple[bool, Status]:
        """``SIMFS_Test``: non-blocking completion check."""
        complete = request.complete
        return complete, self._status_from_request(request, complete)

    def waitsome(
        self, request: AcquireRequest, timeout: float | None = None
    ) -> tuple[list[int], Status]:
        """``SIMFS_Waitsome``: block for at least one newly ready file;
        returns their indices within the request."""
        indices = request.wait_some(timeout)
        return indices, self._status_from_request(request, request.complete)

    def testsome(self, request: AcquireRequest) -> tuple[list[int], Status]:
        """``SIMFS_Testsome``: non-blocking variant of waitsome."""
        indices = request.test_some()
        return indices, self._status_from_request(request, request.complete)

    # ------------------------------------------------------------------ #
    # Data access and checks
    # ------------------------------------------------------------------ #
    def open_file(self, filename: str, timeout: float | None = None) -> DataFile:
        """Convenience: blocking acquire of one file plus a simio open of
        its physical path.  Closing the handle does *not* release the DV
        reference; call :meth:`release` when done."""
        self.connection.wait_ready(self.context, filename, timeout)
        return sio_open(self.connection.storage_path(self.context, filename))

    def bitrep(self, filename: str) -> bool:
        """``SIMFS_Bitrep``: does the on-disk file match the initial run?"""
        return self.connection.bitrep(self.context, filename)

    def fetch_file(self, filename: str, dest: str, *, resume: bool = True):
        """Pull one of this context's files over the bulk data plane into
        ``dest`` (chunked, resumable, checksum-verified).  Requires a
        connection flavour with a data plane (:class:`TcpConnection` to a
        daemon advertising one); returns a ``FetchResult``."""
        fetch = getattr(self.connection, "fetch_file", None)
        if not callable(fetch):
            raise InvalidArgumentError(
                "this connection flavour has no bulk data plane"
            )
        return fetch(self.context, filename, dest, resume=resume)

    def fetch_context(self, dest_dir: str, *, resume: bool = True) -> dict:
        """Pull every available output file of this context into
        ``dest_dir``; returns ``{filename: FetchResult}``."""
        fetch = getattr(self.connection, "fetch_context", None)
        if not callable(fetch):
            raise InvalidArgumentError(
                "this connection flavour has no bulk data plane"
            )
        return fetch(self.context, dest_dir, resume=resume)

    def reconnect(self) -> None:
        """Re-establish the session after a :class:`DVConnectionLost`.

        Re-dials the DV (fresh ``hello`` handshake) when the underlying
        connection supports it, then re-registers the context — the
        failover primitive the cluster tier builds on: a client whose
        daemon restarted (or whose context moved to another node) calls
        this and resumes on the same session object.  Acquire requests
        that were in flight when the link died have already failed;
        re-issue them after reconnecting.
        """
        reconnect = getattr(self.connection, "reconnect", None)
        if callable(reconnect):
            reconnect()
        self.connection.attach(self.context)
        self._finalized = False

    def finalize(self) -> None:
        """``SIMFS_Finalize``: detach from the context."""
        if not self._finalized:
            self.connection.finalize(self.context)
            self._finalized = True

    def __enter__(self) -> "SimFSSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.finalize()

    # ------------------------------------------------------------------ #
    def _on_notification(self, context: str, filename: str, ok: bool) -> None:
        if context != self.context:
            return
        with self._requests_lock:
            live = [r for r in self._requests if not r.complete]
            self._requests = live
            targets = [r for r in live if filename in r.filenames]
        for request in targets:
            if ok:
                request.mark_ready(filename)
            else:
                request.mark_failed(filename)

    def _status_from_infos(self, infos) -> Status:
        status = Status()
        status.estimated_wait = max(
            (i.estimated_wait for i in infos if not i.available), default=0.0
        )
        for info in infos:
            status.file_states[info.filename] = info.state
        return status

    def _status_from_request(self, request: AcquireRequest, complete: bool) -> Status:
        status = Status()
        if request.any_failed:
            status.error = int(ErrorCode.ERR_RESTART_FAILED)
        elif not complete:
            status.error = int(ErrorCode.ERR_PENDING)
        for filename in request.filenames:
            if filename in request.ready_files():
                status.file_states[filename] = FileState.ON_DISK
        return status


# --------------------------------------------------------------------- #
# C-style shims mirroring the paper's signatures
# --------------------------------------------------------------------- #
def _guard(func):
    """Run an API body, mapping SimFS exceptions to error codes."""
    try:
        return func()
    except SimFSError as exc:
        return int(exc.code), None


def simfs_init(connection: DVConnection, sim_context: str):
    """``int SIMFS_Init(char *sim_context, SIMFS_Context *context)``."""
    return _guard(lambda: (int(ErrorCode.SUCCESS), SimFSSession(connection, sim_context)))


def simfs_finalize(session: SimFSSession):
    """``int SIMFS_Finalize(SIMFS_Context *context)``."""

    def body():
        session.finalize()
        return int(ErrorCode.SUCCESS), None

    return _guard(body)[0]


def simfs_acquire(session: SimFSSession, filenames: list[str]):
    """``int SIMFS_Acquire(...)`` -> ``(code, SIMFS_Status)``."""

    def body():
        status = session.acquire(filenames)
        return status.error, status

    return _guard(body)


def simfs_acquire_nb(session: SimFSSession, filenames: list[str]):
    """``int SIMFS_Acquire_nb(...)`` -> ``(code, status, SIMFS_Req)``."""
    try:
        status, request = session.acquire_nb(filenames)
        return int(ErrorCode.SUCCESS), status, request
    except SimFSError as exc:
        return int(exc.code), None, None


def simfs_release(session: SimFSSession, filename: str):
    """``int SIMFS_Release(...)``."""

    def body():
        session.release(filename)
        return int(ErrorCode.SUCCESS), None

    return _guard(body)[0]


def simfs_wait(session: SimFSSession, request: AcquireRequest):
    """``int SIMFS_Wait(SIMFS_Req *req, SIMFS_Status *status)``."""

    def body():
        status = session.wait(request)
        return status.error, status

    return _guard(body)


def simfs_test(session: SimFSSession, request: AcquireRequest):
    """``int SIMFS_Test(...)`` -> ``(code, flag, status)``."""
    try:
        flag, status = session.test(request)
        return int(ErrorCode.SUCCESS), flag, status
    except SimFSError as exc:
        return int(exc.code), False, None


def simfs_waitsome(session: SimFSSession, request: AcquireRequest):
    """``int SIMFS_Waitsome(...)`` -> ``(code, readyidx, status)``."""
    try:
        indices, status = session.waitsome(request)
        return int(ErrorCode.SUCCESS), indices, status
    except SimFSError as exc:
        return int(exc.code), [], None


def simfs_testsome(session: SimFSSession, request: AcquireRequest):
    """``int SIMFS_Testsome(...)`` -> ``(code, readyidx, status)``."""
    try:
        indices, status = session.testsome(request)
        return int(ErrorCode.SUCCESS), indices, status
    except SimFSError as exc:
        return int(exc.code), [], None


def simfs_bitrep(session: SimFSSession, filename: str):
    """``int SIMFS_Bitrep(...)`` -> ``(code, flag)``."""
    try:
        return int(ErrorCode.SUCCESS), session.bitrep(filename)
    except SimFSError as exc:
        return int(exc.code), False
