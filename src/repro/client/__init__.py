"""DVLib client: connections to the DV, the SIMFS_* API, transparent-mode
interception, and the Table I I/O-library bindings."""

from repro.client.api import (
    SimFSSession,
    simfs_acquire,
    simfs_acquire_nb,
    simfs_bitrep,
    simfs_finalize,
    simfs_init,
    simfs_release,
    simfs_test,
    simfs_testsome,
    simfs_wait,
    simfs_waitsome,
)
from repro.client.dvlib import DVConnection, FileInfo, LocalConnection, TcpConnection
from repro.client.transparent import ENV_CONTEXT, VirtualizedHooks, context_from_env

__all__ = [
    "DVConnection",
    "ENV_CONTEXT",
    "FileInfo",
    "LocalConnection",
    "SimFSSession",
    "TcpConnection",
    "VirtualizedHooks",
    "context_from_env",
    "simfs_acquire",
    "simfs_acquire_nb",
    "simfs_bitrep",
    "simfs_finalize",
    "simfs_init",
    "simfs_release",
    "simfs_test",
    "simfs_testsome",
    "simfs_wait",
    "simfs_waitsome",
]
