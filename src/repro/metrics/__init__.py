"""Metrics plane: counters, gauges and histograms for the DV service."""

from repro.metrics.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
)

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "merge_snapshots"]
