"""Thread-safe metrics plane for the DV service.

A :class:`MetricsRegistry` is a flat namespace of named instruments:

* :class:`Counter` — monotonically increasing totals (ops served, cache
  hits, re-simulations launched);
* :class:`Gauge` — instantaneous values (running simulations, resident
  bytes, connected clients);
* :class:`Histogram` — distributions over fixed bucket bounds (op service
  times, estimated waits).

Every DV deployment carries one registry: the TCP daemon exposes it
through the ``stats`` protocol op (and ``simfs-dv --stats``), the DES
front end through :meth:`repro.des.components.VirtualSimFS.stats`.
Instruments are cheap enough to update on the data path — one small lock
per instrument, no allocation after creation — so shards, the cache
manager and the launcher all record into the same plane.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from collections.abc import Sequence

from repro.core.errors import InvalidArgumentError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_snapshots",
]

#: Default histogram bucket upper bounds (seconds-flavoured, log-spaced).
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0, 600.0
)


class Counter:
    """Monotonic counter."""

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise InvalidArgumentError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Instantaneous value that can move both ways."""

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max.

    ``buckets`` are upper bounds; observations beyond the last bound land
    in an implicit overflow bucket.
    """

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise InvalidArgumentError(f"histogram {name!r} needs >= 1 bucket")
        self.name = name
        self.help = help
        self.bounds = bounds
        self._lock = threading.Lock()
        self._bucket_counts = [0] * (len(bounds) + 1)  # +1 overflow
        self._count = 0
        self._sum = 0.0
        self._min: float | None = None
        self._max: float | None = None

    def observe(self, value: float) -> None:
        idx = bisect_right(self.bounds, value)
        with self._lock:
            self._bucket_counts[idx] += 1
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def snapshot(self) -> dict:
        with self._lock:
            counts = list(self._bucket_counts)
            count, total = self._count, self._sum
            lo, hi = self._min, self._max
        snap = {
            "type": "histogram",
            "count": count,
            "sum": total,
            "min": lo,
            "max": hi,
            "buckets": {
                **{str(b): c for b, c in zip(self.bounds, counts)},
                "+inf": counts[-1],
            },
        }
        snap.update(
            _bucket_percentiles(self.bounds, counts, count, lo, hi)
        )
        return snap


def _bucket_percentiles(
    bounds: Sequence[float],
    counts: Sequence[int],
    count: int,
    lo: float | None,
    hi: float | None,
    quantiles: Sequence[float] = (0.5, 0.95, 0.99),
) -> dict[str, float | None]:
    """Estimate quantiles from fixed-bucket counts.

    Linear interpolation inside the covering bucket; the first bucket's
    lower edge is the observed minimum (0 if unknown) and the overflow
    bucket is pinned to the observed maximum.  Estimates are clamped to
    the observed ``[min, max]`` so they never leave the data's range.
    """
    keys = ["p" + str(int(q * 100)) for q in quantiles]
    if count <= 0:
        return dict.fromkeys(keys)
    out: dict[str, float | None] = {}
    for key, q in zip(keys, quantiles):
        rank = q * count
        cum = 0.0
        value = hi if hi is not None else bounds[-1]
        for idx, n in enumerate(counts):
            if n <= 0:
                continue
            if cum + n >= rank:
                if idx == 0:
                    lower = lo if lo is not None else 0.0
                else:
                    lower = bounds[idx - 1]
                if idx < len(bounds):
                    upper = bounds[idx]
                else:  # overflow bucket
                    upper = hi if hi is not None else bounds[-1]
                frac = (rank - cum) / n
                value = lower + (upper - lower) * max(0.0, min(1.0, frac))
                break
            cum += n
        if lo is not None:
            value = max(value, lo)
        if hi is not None:
            value = min(value, hi)
        out[key] = value
    return out


def merge_snapshots(snapshots: Sequence[dict[str, dict]]) -> dict[str, dict]:
    """Merge per-process ``MetricsRegistry.snapshot()`` dicts into one view.

    Counters and gauges sum; histograms merge bucket-wise (bucket layouts
    must agree for a given series name) and re-derive their percentile
    estimates from the combined counts.  Used by the multi-core supervisor
    to fold per-executor metric planes into the single ``stats`` payload.
    """
    merged: dict[str, dict] = {}
    for snap in snapshots:
        for name, metric in snap.items():
            cur = merged.get(name)
            if cur is None:
                merged[name] = {
                    **metric,
                    "buckets": dict(metric.get("buckets", {})),
                }
                if "buckets" not in metric:
                    merged[name].pop("buckets")
                continue
            if cur.get("type") != metric.get("type"):
                raise InvalidArgumentError(
                    f"metric {name!r} merged as both "
                    f"{cur.get('type')!r} and {metric.get('type')!r}"
                )
            if metric["type"] in ("counter", "gauge"):
                cur["value"] += metric["value"]
            else:
                if set(cur.get("buckets", ())) != set(metric.get("buckets", ())):
                    raise InvalidArgumentError(
                        f"histogram {name!r} merged with mismatched bucket "
                        f"layouts {sorted(cur.get('buckets', ()))} vs "
                        f"{sorted(metric.get('buckets', ()))}"
                    )
                cur["count"] += metric["count"]
                cur["sum"] += metric["sum"]
                for edge in ("min", "max"):
                    vals = [v for v in (cur[edge], metric[edge]) if v is not None]
                    if vals:
                        cur[edge] = min(vals) if edge == "min" else max(vals)
                for key, n in metric["buckets"].items():
                    cur["buckets"][key] = cur["buckets"].get(key, 0) + n
    for metric in merged.values():
        if metric.get("type") == "histogram":
            buckets = metric["buckets"]
            bounds = sorted(float(k) for k in buckets if k != "+inf")
            counts = [buckets[str(b)] for b in bounds] + [buckets.get("+inf", 0)]
            metric.update(
                _bucket_percentiles(
                    bounds, counts, metric["count"], metric["min"], metric["max"]
                )
            )
    return merged


class MetricsRegistry:
    """Named instruments, created on first use.

    ``counter``/``gauge``/``histogram`` are get-or-create: repeated calls
    with the same name return the same instrument, so independent
    subsystems (a shard, the cache manager, the launcher) can share series
    without plumbing instrument objects around.  Requesting an existing
    name as a different instrument type is an error.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, lambda: Counter(name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, lambda: Gauge(name, help))

    def histogram(
        self, name: str, help: str = "", buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, lambda: Histogram(name, help, buckets)
        )

    def _get_or_create(self, cls, name: str, factory):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
        if not isinstance(metric, cls):
            raise InvalidArgumentError(
                f"metric {name!r} already registered as {type(metric).__name__}"
            )
        return metric

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        with self._lock:
            return self._metrics.get(name)

    def prune(self, prefix: str) -> int:
        """Drop every series whose name starts with ``prefix``.

        Called on context unregister so per-context series (``dv.<ctx>.*``,
        ``cache.<ctx>.*``) don't accumulate across register/unregister
        churn.  Returns the number of series removed.  ``prefix`` must be
        non-empty — pruning everything is never what a caller wants.
        """
        if not prefix:
            raise InvalidArgumentError("prune() requires a non-empty prefix")
        with self._lock:
            doomed = [name for name in self._metrics if name.startswith(prefix)]
            for name in doomed:
                del self._metrics[name]
        return len(doomed)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def snapshot(self, prefix: str = "") -> dict[str, dict]:
        """JSON-serializable view of every instrument (the ``stats`` op).

        ``prefix`` restricts the view to one subsystem's series (e.g.
        ``"cluster."`` for the cluster plane's forwarding/gossip counters).
        """
        with self._lock:
            metrics = dict(self._metrics)
        return {
            name: metric.snapshot()
            for name, metric in sorted(metrics.items())
            if name.startswith(prefix)
        }
