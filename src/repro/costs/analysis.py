"""Cost-effectiveness studies (paper Sec. V-A/V-B, Figs. 1, 12, 13, 14, 15).

Each function regenerates the data series of one figure: it builds the
COSMO cost scenario, generates the multi-analysis workload, obtains the
re-simulation volume ``V(γ)`` by replaying the merged trace through the
cache model (DCL by default, as fixed in Sec. III-D), and evaluates the
three cost models.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.steps import StepGeometry
from repro.costs.models import (
    AZURE_COSTS,
    COSMO_COST_SCENARIO,
    CostParams,
    PIZ_DAINT_COSTS,
    in_situ_cost,
    on_disk_cost,
    simfs_cost,
)
from repro.traces.replay import replay_trace
from repro.traces.workload import ForwardWorkload

__all__ = [
    "CostRow",
    "SpaceRow",
    "scenario_geometry",
    "resim_volume",
    "availability_sweep",
    "overlap_sweep",
    "analyses_sweep",
    "cost_ratio_heatmap",
    "space_tradeoff",
    "TIMESTEP_SECONDS",
    "DEFAULT_ANALYSIS_LENGTH",
]

#: Simulated seconds per timestep in the COSMO cost scenario.
TIMESTEP_SECONDS = 20.0

#: Output steps accessed by each synthetic analysis (the paper does not
#: publish this; 1000 steps ≈ 3.5 simulated days of a ~30-day run).
DEFAULT_ANALYSIS_LENGTH = 1000


@dataclass(frozen=True)
class CostRow:
    """One point of a cost figure."""

    months: float
    restart_hours: float
    cache_fraction: float
    overlap: float
    num_analyses: int
    on_disk: float
    in_situ: float
    simfs: float
    resim_outputs: int

    @property
    def winner(self) -> str:
        best = min(self.on_disk, self.in_situ, self.simfs)
        if best == self.simfs:
            return "simfs"
        return "on-disk" if best == self.on_disk else "in-situ"


@dataclass(frozen=True)
class SpaceRow:
    """One point of the Fig. 15b/c space tradeoff."""

    restart_hours: float
    cache_fraction: float
    restart_space_tib: float
    total_space_tib: float
    simfs_cost: float
    resim_hours: float


def scenario_geometry(
    params: CostParams = COSMO_COST_SCENARIO, restart_hours: float = 8.0
) -> StepGeometry:
    """Step geometry of the cost scenario for a given restart interval."""
    delta_d = 15
    delta_r = int(restart_hours * 3600.0 / TIMESTEP_SECONDS)
    return StepGeometry(
        delta_d=delta_d,
        delta_r=delta_r,
        num_timesteps=params.num_output_steps * delta_d,
    )


def resim_volume(
    workload: ForwardWorkload,
    geometry: StepGeometry,
    cache_fraction: float,
    policy: str = "dcl",
) -> int:
    """``V(γ)``: output steps SimFS re-simulates for this workload."""
    result = replay_trace(
        workload.merged_trace(),
        geometry,
        policy,
        cache_fraction=cache_fraction,
    )
    return result.simulated_outputs


def _make_workload(
    params: CostParams, num_analyses: int, overlap: float,
    analysis_length: int, seed: int,
) -> ForwardWorkload:
    return ForwardWorkload(
        num_output_steps=params.num_output_steps,
        num_analyses=num_analyses,
        analysis_length=analysis_length,
        overlap=overlap,
        seed=seed,
    )


def _evaluate(
    params: CostParams,
    months: float,
    restart_hours: float,
    cache_fraction: float,
    overlap: float,
    num_analyses: int,
    analysis_length: int,
    seed: int,
    policy: str = "dcl",
) -> CostRow:
    scenario = params.with_restart_interval(
        restart_hours * 3600.0 / TIMESTEP_SECONDS / 15.0
    )
    geometry = scenario_geometry(scenario, restart_hours)
    workload = _make_workload(scenario, num_analyses, overlap, analysis_length, seed)
    volume = resim_volume(workload, geometry, cache_fraction, policy)
    cache_steps = int(scenario.num_output_steps * cache_fraction)
    return CostRow(
        months=months,
        restart_hours=restart_hours,
        cache_fraction=cache_fraction,
        overlap=overlap,
        num_analyses=num_analyses,
        on_disk=on_disk_cost(scenario, months),
        in_situ=in_situ_cost(scenario, workload.analyses()),
        simfs=simfs_cost(scenario, months, cache_steps, volume),
        resim_outputs=volume,
    )


# --------------------------------------------------------------------- #
# Figure generators
# --------------------------------------------------------------------- #
def availability_sweep(
    months_list: tuple[float, ...] = (6, 12, 24, 36, 48, 60),
    restart_hours_list: tuple[float, ...] = (8.0,),
    cache_fractions: tuple[float, ...] = (0.25,),
    num_analyses: int = 100,
    overlap: float = 0.5,
    analysis_length: int = DEFAULT_ANALYSIS_LENGTH,
    params: CostParams = COSMO_COST_SCENARIO,
    seed: int = 1,
) -> list[CostRow]:
    """Figs. 1 and 12: cost vs. data availability period.

    Fig. 1 is the single-configuration slice (Δr = 8 h, cache 25 %);
    Fig. 12 sweeps Δr ∈ {4, 8, 16} h and cache ∈ {25, 50} %.
    """
    rows = []
    for restart_hours in restart_hours_list:
        for cache in cache_fractions:
            # V(γ) does not depend on Δt: evaluate once per configuration.
            base = _evaluate(
                params, months_list[0], restart_hours, cache,
                overlap, num_analyses, analysis_length, seed,
            )
            for months in months_list:
                scenario = params.with_restart_interval(
                    restart_hours * 3600.0 / TIMESTEP_SECONDS / 15.0
                )
                cache_steps = int(scenario.num_output_steps * cache)
                rows.append(
                    CostRow(
                        months=months,
                        restart_hours=restart_hours,
                        cache_fraction=cache,
                        overlap=overlap,
                        num_analyses=num_analyses,
                        on_disk=on_disk_cost(scenario, months),
                        in_situ=base.in_situ,
                        simfs=simfs_cost(
                            scenario, months, cache_steps, base.resim_outputs
                        ),
                        resim_outputs=base.resim_outputs,
                    )
                )
    return rows


def overlap_sweep(
    overlaps: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0),
    restart_hours_list: tuple[float, ...] = (4.0, 8.0, 16.0),
    cache_fractions: tuple[float, ...] = (0.25, 0.5),
    months: float = 24.0,
    num_analyses: int = 100,
    analysis_length: int = DEFAULT_ANALYSIS_LENGTH,
    params: CostParams = COSMO_COST_SCENARIO,
    seed: int = 1,
) -> list[CostRow]:
    """Fig. 13: cost vs. analyses execution overlap at Δt = 2 y."""
    return [
        _evaluate(params, months, rh, cache, overlap, num_analyses,
                  analysis_length, seed)
        for rh in restart_hours_list
        for cache in cache_fractions
        for overlap in overlaps
    ]


def analyses_sweep(
    analysis_counts: tuple[int, ...] = (1, 5, 10, 20, 50, 75, 100, 125),
    restart_hours_list: tuple[float, ...] = (4.0, 8.0, 16.0),
    cache_fractions: tuple[float, ...] = (0.25, 0.5),
    months: float = 24.0,
    overlap: float = 0.5,
    analysis_length: int = DEFAULT_ANALYSIS_LENGTH,
    params: CostParams = COSMO_COST_SCENARIO,
    seed: int = 1,
) -> list[CostRow]:
    """Fig. 14: cost vs. total number of analyses at Δt = 2 y."""
    return [
        _evaluate(params, months, rh, cache, overlap, z, analysis_length, seed)
        for rh in restart_hours_list
        for cache in cache_fractions
        for z in analysis_counts
    ]


def cost_ratio_heatmap(
    storage_costs: tuple[float, ...] = (0.02, 0.06, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35),
    compute_costs: tuple[float, ...] = (0.25, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0),
    months: float = 36.0,
    cache_fraction: float = 0.25,
    restart_hours: float = 8.0,
    num_analyses: int = 100,
    overlap: float = 0.5,
    analysis_length: int = DEFAULT_ANALYSIS_LENGTH,
    params: CostParams = COSMO_COST_SCENARIO,
    seed: int = 1,
) -> list[dict]:
    """Fig. 15a: min(on-disk, in-situ)/SimFS cost ratio over (cs, cc).

    Ratio > 1 means SimFS is the cheapest option at that price point.
    The Azure and Piz Daint datapoints of the paper are included via
    :data:`AZURE_COSTS` / :data:`PIZ_DAINT_COSTS`.
    """
    base = _evaluate(
        params, months, restart_hours, cache_fraction, overlap,
        num_analyses, analysis_length, seed,
    )
    cells = []
    points = [(cs, cc) for cs in storage_costs for cc in compute_costs]
    points.append((AZURE_COSTS["storage_cost"], AZURE_COSTS["compute_cost"]))
    points.append((PIZ_DAINT_COSTS["storage_cost"], PIZ_DAINT_COSTS["compute_cost"]))
    for cs, cc in points:
        scenario = params.with_restart_interval(
            restart_hours * 3600.0 / TIMESTEP_SECONDS / 15.0
        ).with_costs(cc, cs)
        workload = _make_workload(
            scenario, num_analyses, overlap, analysis_length, seed
        )
        cache_steps = int(scenario.num_output_steps * cache_fraction)
        disk = on_disk_cost(scenario, months)
        situ = in_situ_cost(scenario, workload.analyses())
        sim = simfs_cost(scenario, months, cache_steps, base.resim_outputs)
        cells.append(
            {
                "storage_cost": cs,
                "compute_cost": cc,
                "on_disk": disk,
                "in_situ": situ,
                "simfs": sim,
                "ratio": min(disk, situ) / sim,
            }
        )
    return cells


def space_tradeoff(
    restart_hours_list: tuple[float, ...] = (4.0, 8.0, 16.0, 32.0),
    cache_fractions: tuple[float, ...] = (0.25, 0.5),
    months: float = 36.0,
    num_analyses: int = 100,
    overlap: float = 0.5,
    analysis_length: int = DEFAULT_ANALYSIS_LENGTH,
    params: CostParams = COSMO_COST_SCENARIO,
    seed: int = 1,
) -> list[SpaceRow]:
    """Fig. 15b/c: SimFS cost and re-simulation compute time as functions
    of the storage space devoted to restart files (i.e. of Δr)."""
    rows = []
    for restart_hours in restart_hours_list:
        for cache in cache_fractions:
            row = _evaluate(
                params, months, restart_hours, cache, overlap,
                num_analyses, analysis_length, seed,
            )
            scenario = params.with_restart_interval(
                restart_hours * 3600.0 / TIMESTEP_SECONDS / 15.0
            )
            restart_tib = (
                scenario.num_restart_steps * scenario.restart_step_gib / 1024.0
            )
            cache_tib = (
                int(scenario.num_output_steps * cache)
                * scenario.output_step_gib
                / 1024.0
            )
            resim_hours = row.resim_outputs * scenario.tau_sim / 3600.0
            rows.append(
                SpaceRow(
                    restart_hours=restart_hours,
                    cache_fraction=cache,
                    restart_space_tib=restart_tib,
                    total_space_tib=restart_tib + cache_tib,
                    simfs_cost=row.simfs,
                    resim_hours=resim_hours,
                )
            )
    return rows
