"""Sec. V cost models and the cost-effectiveness studies behind
Figs. 1 and 12-15."""

from repro.costs.analysis import (
    CostRow,
    SpaceRow,
    analyses_sweep,
    availability_sweep,
    cost_ratio_heatmap,
    overlap_sweep,
    resim_volume,
    scenario_geometry,
    space_tradeoff,
)
from repro.costs.models import (
    AZURE_COSTS,
    COSMO_COST_SCENARIO,
    CostParams,
    PIZ_DAINT_COSTS,
    c_sim,
    c_store,
    in_situ_cost,
    on_disk_cost,
    simfs_cost,
)

__all__ = [
    "AZURE_COSTS",
    "COSMO_COST_SCENARIO",
    "CostParams",
    "CostRow",
    "PIZ_DAINT_COSTS",
    "SpaceRow",
    "analyses_sweep",
    "availability_sweep",
    "c_sim",
    "c_store",
    "cost_ratio_heatmap",
    "in_situ_cost",
    "on_disk_cost",
    "overlap_sweep",
    "resim_volume",
    "scenario_geometry",
    "simfs_cost",
    "space_tradeoff",
]
