"""Cost models for on-disk, in-situ, and SimFS analysis (paper Sec. V).

Building blocks (Table II symbols):

* ``C_sim(O, P) = O * tau_sim(P) * P * cc`` — simulating ``O`` output steps
  on ``P`` nodes at ``cc`` $/node/hour (τ converted to hours);
* ``C_store(F, m, Δt) = F * m * Δt * cs`` — storing ``F`` files of ``m``
  GiB for ``Δt`` months at ``cs`` $/GiB/month.

Solution costs:

* on-disk: initial simulation + storing all ``n_o`` output steps;
* in-situ: per analysis ``j`` starting at step ``i_j``, a simulation of
  ``i_j + |γ(j)|`` output steps (everything before the start is simulated
  but unused);
* SimFS: initial simulation + storing the ``n_r`` restart files and the
  ``M``-step cache + re-simulating the ``V(γ)`` missed output steps.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.core.errors import InvalidArgumentError
from repro.traces.workload import AnalysisRun

__all__ = [
    "CostParams",
    "c_sim",
    "c_store",
    "on_disk_cost",
    "in_situ_cost",
    "simfs_cost",
    "AZURE_COSTS",
    "PIZ_DAINT_COSTS",
    "COSMO_COST_SCENARIO",
]


@dataclass(frozen=True)
class CostParams:
    """Platform + simulation calibration of the Sec. V cost models."""

    compute_cost: float        #: cc, $/node/hour
    storage_cost: float        #: cs, $/GiB/month
    nodes: int                 #: P, nodes used by (re-)simulations
    tau_sim: float             #: seconds per output step at P nodes
    output_step_gib: float     #: so
    restart_step_gib: float    #: sr
    num_output_steps: int      #: n_o of the full simulation
    outputs_per_restart: float  #: Δr/Δd — sets n_r = n_o / this

    def __post_init__(self) -> None:
        for name in ("compute_cost", "storage_cost", "tau_sim",
                     "output_step_gib", "restart_step_gib"):
            if getattr(self, name) <= 0:
                raise InvalidArgumentError(f"{name} must be > 0")
        if self.nodes < 1 or self.num_output_steps < 1:
            raise InvalidArgumentError("nodes and num_output_steps must be >= 1")
        if self.outputs_per_restart <= 0:
            raise InvalidArgumentError("outputs_per_restart must be > 0")

    @property
    def num_restart_steps(self) -> int:
        """``n_r``: restart files of the initial simulation."""
        return int(self.num_output_steps / self.outputs_per_restart)

    @property
    def total_output_gib(self) -> float:
        """Total output data volume."""
        return self.num_output_steps * self.output_step_gib

    def with_costs(self, compute_cost: float, storage_cost: float) -> "CostParams":
        """Same scenario on a different platform price point (Fig. 15a)."""
        from dataclasses import replace

        return replace(self, compute_cost=compute_cost, storage_cost=storage_cost)

    def with_restart_interval(self, outputs_per_restart: float) -> "CostParams":
        """Same scenario with a different Δr (Figs. 12/15b)."""
        from dataclasses import replace

        return replace(self, outputs_per_restart=outputs_per_restart)


def c_sim(outputs: float, params: CostParams) -> float:
    """``C_sim(O, P)`` in dollars."""
    if outputs < 0:
        raise InvalidArgumentError(f"outputs must be >= 0, got {outputs}")
    hours_per_output = params.tau_sim / 3600.0
    return outputs * hours_per_output * params.nodes * params.compute_cost


def c_store(files: float, size_gib: float, months: float, params: CostParams) -> float:
    """``C_store(F, m, Δt)`` in dollars."""
    if files < 0 or months < 0:
        raise InvalidArgumentError("files and months must be >= 0")
    return files * size_gib * months * params.storage_cost


def on_disk_cost(params: CostParams, months: float) -> float:
    """``C_on-disk(Δt)``: initial simulation + full output stored for Δt."""
    return c_sim(params.num_output_steps, params) + c_store(
        params.num_output_steps, params.output_step_gib, months, params
    )


def in_situ_cost(params: CostParams, analyses: Iterable[AnalysisRun]) -> float:
    """``C_in-situ``: one simulation from step 0 per analysis.

    Independent of Δt — nothing is stored.
    """
    total = 0.0
    for run in analyses:
        total += c_sim(run.start_step - 1 + run.length, params)
    return total


def simfs_cost(
    params: CostParams,
    months: float,
    cache_steps: int,
    resimulated_outputs: int,
) -> float:
    """``C_SimFS(Δt)``: initial simulation + restart & cache storage +
    re-simulation of the ``V(γ)`` missed steps."""
    if cache_steps < 0 or resimulated_outputs < 0:
        raise InvalidArgumentError("cache_steps and V must be >= 0")
    return (
        c_sim(params.num_output_steps, params)
        + c_store(params.num_restart_steps, params.restart_step_gib, months, params)
        + c_store(cache_steps, params.output_step_gib, months, params)
        + c_sim(resimulated_outputs, params)
    )


# --------------------------------------------------------------------- #
# The paper's calibrations (Sec. V-A / V-B)
# --------------------------------------------------------------------- #
#: Microsoft Azure calibration: NCv2 VM (P100 GPU) + Azure File share.
AZURE_COSTS = {"compute_cost": 2.07, "storage_cost": 0.06}

#: Piz Daint price point derived from the CSCS cost catalog (Fig. 15a).
PIZ_DAINT_COSTS = {"compute_cost": 1.04, "storage_cost": 0.12}

#: COSMO production scenario: 20 s timesteps, Δd = 15 (one 6 GiB output
#: step every 5 simulated minutes, produced in τsim(100) = 20 s), 36 GiB
#: restarts, 50 TiB total output -> n_o = 50 TiB / 6 GiB = 8533 steps.
#: Δr = 8 h of simulated time = 1440 timesteps = 96 output steps.
COSMO_COST_SCENARIO = CostParams(
    compute_cost=AZURE_COSTS["compute_cost"],
    storage_cost=AZURE_COSTS["storage_cost"],
    nodes=100,
    tau_sim=20.0,
    output_step_gib=6.0,
    restart_step_gib=36.0,
    num_output_steps=8533,
    outputs_per_restart=96.0,
)
