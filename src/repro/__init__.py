"""SimFS: a simulation data virtualizing file system interface.

Reproduction of *SimFS: A Simulation Data Virtualizing File System
Interface* (Di Girolamo, Schmid, Schulthess, Hoefler — IPDPS 2019).

SimFS exposes a virtualized view of a simulation's output: analyses see
every output file, but only a subset is stored.  Accesses to missing files
transparently restart the simulation from the nearest checkpoint; caching
(LRU/LIRS/ARC/BCL/DCL) decides what stays on disk and prefetch agents mask
re-simulation latency for scanning analyses.

Typical entry points
--------------------
* :class:`repro.dv.DVServer` — the Data Virtualizer daemon (real mode).
* :class:`repro.client.SimFSSession` / ``simfs_*`` — the analysis API.
* :class:`repro.client.VirtualizedHooks` — transparent interposition.
* :class:`repro.des.VirtualSimFS` — the virtual-time deployment used by
  the performance experiments.
* :mod:`repro.costs` — the Sec. V cost models.

See README.md for a quickstart and DESIGN.md for the system inventory.
"""

from repro.cache import StorageArea, make_policy
from repro.client import (
    LocalConnection,
    SimFSSession,
    TcpConnection,
    VirtualizedHooks,
)
from repro.core import (
    ContextConfig,
    ErrorCode,
    PerformanceModel,
    SimFSError,
    SimulationContext,
    StepGeometry,
)
from repro.des import VirtualSimFS, latency_experiment, scaling_experiment
from repro.dv import DVCoordinator, DVServer, ThreadedLauncher
from repro.prefetch import PatternDetector, PrefetchAgent
from repro.simulators import (
    CosmoDriver,
    FlashDriver,
    SimulationDriver,
    SyntheticDriver,
)
from repro.traces import ForwardWorkload, ecmwf_like_trace, replay_trace

__version__ = "1.0.0"

__all__ = [
    "ContextConfig",
    "CosmoDriver",
    "DVCoordinator",
    "DVServer",
    "ErrorCode",
    "FlashDriver",
    "ForwardWorkload",
    "LocalConnection",
    "PatternDetector",
    "PerformanceModel",
    "PrefetchAgent",
    "SimFSError",
    "SimFSSession",
    "SimulationContext",
    "SimulationDriver",
    "StepGeometry",
    "StorageArea",
    "SyntheticDriver",
    "TcpConnection",
    "ThreadedLauncher",
    "VirtualSimFS",
    "VirtualizedHooks",
    "__version__",
    "ecmwf_like_trace",
    "latency_experiment",
    "make_policy",
    "replay_trace",
    "scaling_experiment",
]
