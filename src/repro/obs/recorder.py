"""Per-node span collection: ring buffer, sampling, exemplars, journal.

A :class:`SpanRecorder` is deliberately boring on the hot path: one
small lock around a fixed-size ring of completed spans.  Sampling policy
is **head + tail**:

* *head* — the request originator decides at trace start (default one in
  64); sampled traces carry ``FLAG_SAMPLED`` and every hop records its
  spans.  Unsampled requests carry no trace context at all, so the hot
  path pays nothing beyond a dict lookup.
* *tail* — any span slower than ``slow_threshold`` is recorded even
  without (or with an unsampled) trace context, under a synthesized
  local trace id, so "what was slow last minute" is answerable without
  sampling luck.  :meth:`slow` lists them.

Exemplars bind a sampled trace_id to the latency-histogram bucket its
observation landed in (:meth:`attach_exemplar`), so a p99 spike in the
exported metrics points straight at a reconstructable trace.  The
decision journal (:meth:`journal`) keeps the last N structured
autoscaler/migration/promotion decisions.

Timestamps are caller-supplied, so the DES records the same span
structure in virtual time (``clock`` only stamps journal entries).
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_right
from collections import deque
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.obs.trace import TraceContext, _new_id, new_trace, parse_wire

__all__ = ["Span", "SpanRecorder"]

#: Default head-sampling probability (one traced request in 64).
DEFAULT_HEAD_RATE = 1.0 / 64.0
#: Default tail threshold: spans at least this long (seconds) are
#: recorded regardless of the head-sampling decision.
DEFAULT_SLOW_THRESHOLD = 0.25


@dataclass
class Span:
    """One completed, named time interval of a trace."""

    trace_id: str
    span_id: str
    parent_id: str
    name: str
    node: str
    start: float
    end: float
    attrs: dict | None = None
    sampled: bool = True

    @property
    def duration(self) -> float:
        return self.end - self.start

    def as_dict(self) -> dict:
        out = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "node": self.node,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        return out


class SpanRecorder:
    """Lock-light fixed-capacity span store for one node/process."""

    def __init__(
        self,
        node: str = "",
        capacity: int = 2048,
        head_rate: float = DEFAULT_HEAD_RATE,
        slow_threshold: float = DEFAULT_SLOW_THRESHOLD,
        journal_capacity: int = 256,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if capacity <= 0:
            raise ValueError("SpanRecorder capacity must be positive")
        self.node = node
        self.capacity = int(capacity)
        self.head_rate = float(head_rate)
        self.slow_threshold = float(slow_threshold)
        self._clock = clock
        self._lock = threading.Lock()
        self._ring: list[Span | None] = [None] * self.capacity
        self._next = 0
        self._recorded = 0
        self._journal: deque[dict] = deque(maxlen=journal_capacity)
        self._journal_lock = threading.Lock()
        self._exemplars: dict[str, dict[str, dict]] = {}
        # Sampling coin flips ride the trace module's private RNG via
        # new_trace(); the decision itself uses random.random-equivalent
        # bits from _new_id to avoid seeding interactions.
        self._sample_bits = 0

    def now(self) -> float:
        """The recorder's own timebase (``time.time`` live, the virtual
        clock in the DES) — span endpoints must come from here, never
        from deployment clocks with a different origin."""
        return self._clock()

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #
    def start_trace(self, sampled: bool | None = None) -> TraceContext:
        """New trace context; ``sampled=None`` applies head sampling."""
        if sampled is None:
            sampled = (_new_id() / float(1 << 64)) < self.head_rate
        return new_trace(sampled=bool(sampled))

    # ------------------------------------------------------------------ #
    # Span recording
    # ------------------------------------------------------------------ #
    def record(
        self,
        name: str,
        tc: TraceContext | str | None,
        start: float,
        end: float,
        node: str | None = None,
        **attrs: object,
    ) -> Span | None:
        """Record one completed span under ``tc``.

        ``tc`` may be a :class:`TraceContext`, its wire string, or
        ``None``.  Unsampled (or absent) contexts are dropped unless the
        span crosses ``slow_threshold`` (tail sampling); absent contexts
        get a synthesized local-only trace id so ``trace-slow`` output is
        still reconstructable.
        """
        if isinstance(tc, str):
            tc = parse_wire(tc)
        duration = end - start
        if tc is None:
            if duration < self.slow_threshold:
                return None
            tc = new_trace(sampled=False)
        elif not tc.sampled and duration < self.slow_threshold:
            return None
        span = Span(
            trace_id=f"{tc.trace_id:016x}",
            span_id=f"{_new_id():016x}",
            parent_id=f"{tc.span_id:016x}",
            name=name,
            node=node or self.node,
            start=start,
            end=end,
            attrs={k: v for k, v in attrs.items() if v is not None} or None,
            sampled=tc.sampled,
        )
        with self._lock:
            self._ring[self._next % self.capacity] = span
            self._next += 1
            self._recorded += 1
        return span

    def _spans(self) -> list[Span]:
        with self._lock:
            return [span for span in self._ring if span is not None]

    def trace(self, trace_id: str | int) -> list[dict]:
        """Every retained span of one trace, sorted by start time."""
        if isinstance(trace_id, int):
            trace_id = f"{trace_id:016x}"
        trace_id = trace_id.lower()
        spans = [s for s in self._spans() if s.trace_id == trace_id]
        spans.sort(key=lambda s: (s.start, s.end))
        return [s.as_dict() for s in spans]

    def slow(self, limit: int = 20) -> list[dict]:
        """The slowest retained spans (tail-sampled view), longest first."""
        spans = sorted(self._spans(), key=lambda s: s.duration, reverse=True)
        return [s.as_dict() for s in spans[: max(0, int(limit))]]

    # ------------------------------------------------------------------ #
    # Exemplars
    # ------------------------------------------------------------------ #
    def attach_exemplar(
        self,
        series: str,
        bounds: Sequence[float],
        value: float,
        tc: TraceContext | str | None,
    ) -> None:
        """Bind a sampled trace to the histogram bucket ``value`` landed
        in; the Prometheus exporter emits it as an OpenMetrics exemplar."""
        if isinstance(tc, str):
            tc = parse_wire(tc)
        if tc is None or not tc.sampled:
            return
        idx = bisect_right(bounds, value)
        le = "+Inf" if idx >= len(bounds) else repr(float(bounds[idx]))
        with self._journal_lock:
            self._exemplars.setdefault(series, {})[le] = {
                "trace_id": f"{tc.trace_id:016x}",
                "value": float(value),
            }

    def exemplars(self) -> dict[str, dict[str, dict]]:
        with self._journal_lock:
            return {
                series: {le: dict(entry) for le, entry in buckets.items()}
                for series, buckets in self._exemplars.items()
            }

    # ------------------------------------------------------------------ #
    # Decision journal
    # ------------------------------------------------------------------ #
    def journal(self, kind: str, **fields: object) -> dict:
        """Append one structured decision record (autoscaler verdicts,
        migration cutovers, HA promotions)."""
        entry = {"ts": self._clock(), "kind": kind, "node": self.node}
        entry.update({k: v for k, v in fields.items() if v is not None})
        with self._journal_lock:
            self._journal.append(entry)
        return entry

    def journal_entries(
        self, kind: str | None = None, limit: int | None = None
    ) -> list[dict]:
        """Retained journal entries, oldest first."""
        with self._journal_lock:
            entries = list(self._journal)
        if kind is not None:
            entries = [e for e in entries if e.get("kind") == kind]
        if limit is not None:
            entries = entries[-max(0, int(limit)):]
        return [dict(e) for e in entries]

    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict:
        """Introspection payload for status ops."""
        with self._lock:
            retained = sum(1 for s in self._ring if s is not None)
            recorded = self._recorded
        with self._journal_lock:
            journal = len(self._journal)
        return {
            "node": self.node,
            "capacity": self.capacity,
            "retained_spans": retained,
            "recorded_spans": recorded,
            "head_rate": self.head_rate,
            "slow_threshold": self.slow_threshold,
            "journal_entries": journal,
        }
