"""Unified observability plane: distributed tracing, span collection,
and Prometheus-text export (see ARCHITECTURE.md "Observability").

* :mod:`repro.obs.trace` — the compact trace context (trace_id, span_id,
  flags) every hop propagates, and its wire string form.
* :mod:`repro.obs.recorder` — the per-node lock-light ring-buffer
  :class:`SpanRecorder` with head + tail sampling, latency-histogram
  exemplars and the structured decision journal.
* :mod:`repro.obs.export` — the Prometheus text renderer and the
  optional HTTP exporter endpoint.
"""

from repro.obs.recorder import Span, SpanRecorder
from repro.obs.trace import (
    FLAG_SAMPLED,
    TraceContext,
    format_trace_id,
    new_trace,
    parse_wire,
)

__all__ = [
    "FLAG_SAMPLED",
    "TraceContext",
    "new_trace",
    "parse_wire",
    "format_trace_id",
    "Span",
    "SpanRecorder",
]
