"""Compact trace context propagated across every hop of a request.

A trace context is ``(trace_id, span_id, flags)`` — two random 64-bit
ids plus a flags byte (bit 0 = sampled).  On the wire it travels either
as a packed 17-byte prefix on binary frames (:mod:`repro.dv.protocol`)
or as a ``"tc"`` string field on JSON payloads::

    "6f2a9c01d4e8b377-1b22c3d4e5f60718-01"
     trace_id (16 hex)  span_id (16 hex)  flags (2 hex)

The string form is the canonical interop representation: legacy peers
carry it as an opaque extra JSON key, so tracing never needs a protocol
version bump beyond the ``hello`` negotiation bit.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass

__all__ = [
    "FLAG_SAMPLED",
    "TraceContext",
    "new_trace",
    "parse_wire",
    "format_trace_id",
]

#: Flags bit 0: this trace was head-sampled — record its spans everywhere.
FLAG_SAMPLED = 0x01

_WIRE_RE = re.compile(r"\A([0-9a-f]{16})-([0-9a-f]{16})-([0-9a-f]{2})\Z")

# Module-level RNG: id generation must not perturb any seeded global
# random stream (the DES derives byte-identical outputs from those).
_rng = random.Random()


def _new_id() -> int:
    value = 0
    while not value:
        value = _rng.getrandbits(64)
    return value


@dataclass(frozen=True)
class TraceContext:
    """One hop's view of a trace: ids plus the sampling decision."""

    trace_id: int
    span_id: int
    flags: int = FLAG_SAMPLED

    @property
    def sampled(self) -> bool:
        return bool(self.flags & FLAG_SAMPLED)

    def child(self) -> "TraceContext":
        """A fresh span id under the same trace (downstream hop)."""
        return TraceContext(self.trace_id, _new_id(), self.flags)

    def to_wire(self) -> str:
        return f"{self.trace_id:016x}-{self.span_id:016x}-{self.flags:02x}"


def new_trace(sampled: bool = True) -> TraceContext:
    """Start a new trace (the root span's context)."""
    return TraceContext(_new_id(), _new_id(), FLAG_SAMPLED if sampled else 0)


def parse_wire(value: object) -> TraceContext | None:
    """Parse the wire string form; tolerant (None for anything invalid),
    so a malformed ``tc`` field degrades to "untraced", never an error."""
    if not isinstance(value, str):
        return None
    match = _WIRE_RE.match(value)
    if match is None:
        return None
    return TraceContext(
        int(match.group(1), 16), int(match.group(2), 16), int(match.group(3), 16)
    )


def format_trace_id(trace_id: int) -> str:
    return f"{trace_id:016x}"
