"""Prometheus text exposition for the metrics plane.

:func:`render_prometheus` turns a ``MetricsRegistry.snapshot()`` dict
(optionally a cross-process merge) into the Prometheus text format, with
cumulative ``le`` buckets and OpenMetrics-style exemplars binding
histogram buckets to sampled trace ids.  :class:`MetricsExporter` serves
that text over HTTP (``GET /metrics``) from a daemon thread so any node
can be scraped directly; the same renderer backs the ``metrics_text``
protocol op and ``simfs-ctl metrics-export``.
"""

from __future__ import annotations

import re
import threading
from collections.abc import Callable
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

__all__ = ["MetricsExporter", "render_prometheus"]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(series: str) -> str:
    name = _NAME_RE.sub("_", series)
    if name and name[0].isdigit():
        name = "_" + name
    return name


def _fmt(value: float | int | None) -> str:
    if value is None:
        return "NaN"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _bucket_key(key: str) -> float:
    return float("inf") if key == "+inf" else float(key)


def render_prometheus(
    snapshot: dict[str, dict],
    exemplars: dict[str, dict[str, dict]] | None = None,
) -> str:
    """Render a metrics snapshot as Prometheus exposition text.

    ``exemplars`` maps series name -> ``le`` label -> ``{"trace_id",
    "value"}`` (see ``SpanRecorder.exemplars``); matching histogram
    bucket lines get an OpenMetrics exemplar suffix.
    """
    exemplars = exemplars or {}
    lines: list[str] = []
    for series in sorted(snapshot):
        metric = snapshot[series]
        kind = metric.get("type")
        name = _prom_name(series)
        if kind == "counter":
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {_fmt(metric.get('value', 0))}")
        elif kind == "gauge":
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_fmt(metric.get('value', 0))}")
        elif kind == "histogram":
            lines.append(f"# TYPE {name} histogram")
            series_ex = exemplars.get(series, {})
            cumulative = 0
            buckets = metric.get("buckets", {})
            for key in sorted(buckets, key=_bucket_key):
                cumulative += buckets[key]
                le = "+Inf" if key == "+inf" else _fmt(float(key))
                line = f'{name}_bucket{{le="{le}"}} {cumulative}'
                ex = series_ex.get("+Inf" if key == "+inf" else repr(float(key)))
                if ex:
                    line += (
                        f' # {{trace_id="{ex["trace_id"]}"}} {_fmt(ex["value"])}'
                    )
                lines.append(line)
            lines.append(f"{name}_sum {_fmt(metric.get('sum', 0.0))}")
            lines.append(f"{name}_count {_fmt(metric.get('count', 0))}")
        else:  # unknown type: emit as an untyped sample if it has a value
            if "value" in metric:
                lines.append(f"# TYPE {name} untyped")
                lines.append(f"{name} {_fmt(metric['value'])}")
    return "\n".join(lines) + ("\n" if lines else "")


class MetricsExporter:
    """Background HTTP endpoint serving ``render_prometheus`` output.

    ``source`` is a zero-argument callable returning the exposition text
    at scrape time (so daemons can merge per-executor snapshots and
    attach fresh exemplars on every scrape).
    """

    def __init__(
        self,
        source: Callable[[], str],
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._source = source
        self._host = host
        self._requested_port = port
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        if self._server is None:
            return self._requested_port
        return self._server.server_address[1]

    def start(self) -> None:
        if self._server is not None:
            return
        source = self._source

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                if self.path.split("?", 1)[0] not in ("/metrics", "/"):
                    self.send_error(404)
                    return
                try:
                    body = source().encode("utf-8")
                except Exception as exc:  # pragma: no cover - defensive
                    self.send_error(500, str(exc))
                    return
                self.send_response(200)
                self.send_header(
                    "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
                )
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args: object) -> None:
                pass

        self._server = ThreadingHTTPServer(
            (self._host, self._requested_port), _Handler
        )
        self._server.daemon_threads = True
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="metrics-exporter", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._server = None
        self._thread = None
