"""Legacy setup shim.

The execution environment has no ``wheel`` package, so PEP-517 editable
installs fail; ``pip install -e . --no-build-isolation`` falls back to this
``setup.py develop`` path. All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
