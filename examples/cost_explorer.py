#!/usr/bin/env python
"""Cost-model explorer (paper Sec. V): when is SimFS worth it?

Evaluates the on-disk / in-situ / SimFS cost models on the paper's COSMO
production scenario (50 TiB of output, Azure price calibration) and prints
Fig. 1-style and Fig. 14-style summaries plus the platform heatmap
corners, so operators can plug in their own price points.

Run:  python examples/cost_explorer.py
"""

from repro.costs import (
    AZURE_COSTS,
    PIZ_DAINT_COSTS,
    analyses_sweep,
    availability_sweep,
    cost_ratio_heatmap,
)


def main() -> None:
    print("== cost vs data availability period "
          "(100 analyses, 50% overlap, dr=8h, cache 25%) ==")
    print(f"   {'months':>7} {'on-disk k$':>11} {'in-situ k$':>11} "
          f"{'SimFS k$':>9}  winner")
    for row in availability_sweep(
        months_list=(6, 12, 24, 36, 48, 60),
        num_analyses=100, overlap=0.5,
    ):
        print(
            f"   {int(row.months):>7} {row.on_disk / 1e3:>11.1f} "
            f"{row.in_situ / 1e3:>11.1f} {row.simfs / 1e3:>9.1f}  "
            f"{row.winner}"
        )

    print("\n== cost vs number of analyses (dt=2y) ==")
    print(f"   {'z':>4} {'on-disk k$':>11} {'in-situ k$':>11} "
          f"{'SimFS k$':>9}  winner")
    for row in analyses_sweep(
        analysis_counts=(1, 5, 10, 20, 50, 100),
        restart_hours_list=(8.0,), cache_fractions=(0.25,),
    ):
        print(
            f"   {row.num_analyses:>4} {row.on_disk / 1e3:>11.1f} "
            f"{row.in_situ / 1e3:>11.1f} {row.simfs / 1e3:>9.1f}  "
            f"{row.winner}"
        )

    print("\n== platform price points (3y, cache 25%) ==")
    cells = cost_ratio_heatmap(
        storage_costs=(), compute_costs=(),
        num_analyses=100, overlap=0.5,
    )
    for cell in cells:
        label = (
            "Microsoft Azure"
            if (cell["storage_cost"], cell["compute_cost"])
            == (AZURE_COSTS["storage_cost"], AZURE_COSTS["compute_cost"])
            else "Piz Daint (CSCS)"
        )
        print(
            f"   {label:<18} cs={cell['storage_cost']:.2f} "
            f"cc={cell['compute_cost']:.2f}: "
            f"min(alternatives)/SimFS = {cell['ratio']:.2f} "
            f"({'SimFS wins' if cell['ratio'] > 1 else 'alternative wins'})"
        )


if __name__ == "__main__":
    main()
