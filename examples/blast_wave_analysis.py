#!/usr/bin/env python
"""Sedov blast-wave analysis on virtualized FLASH-like data (Sec. VI).

Reproduces the paper's second evaluation workload as a runnable example:
a 1-D Sedov blast simulation is virtualized, and an analysis computes the
mean and variance of the velocity field (the paper's FLASH analysis)
while tracking the shock front — accessing output steps *backward in
time* from the moment the shock reaches a target radius, the classic
root-cause access pattern (Sec. IV-B2).

Run:  python examples/blast_wave_analysis.py
"""

import os
import tempfile

import numpy as np

from repro.client import LocalConnection, SimFSSession
from repro.core import ContextConfig, PerformanceModel, SimulationContext
from repro.dv import DVServer
from repro.simio import sio_open
from repro.simulators import FlashDriver


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="simfs-blast-")
    output_dir = os.path.join(workdir, "output")
    restart_dir = os.path.join(workdir, "restart")
    os.makedirs(output_dir)
    os.makedirs(restart_dir)

    # Output every timestep, restart every 20 — the paper's FLASH cadence.
    config = ContextConfig(
        name="flash",
        delta_d=1,
        delta_r=20,
        num_timesteps=200,
        replacement_policy="dcl",
        smax=8,
    )
    driver = FlashDriver(config.geometry, prefix="flash", cells=128)
    context = SimulationContext(
        config=config,
        driver=driver,
        perf=PerformanceModel(tau_sim=0.001, alpha_sim=0.0),
    )

    print("== initial blast simulation (virtualized afterwards) ==")
    produced = driver.execute(
        driver.make_job("flash", 0, 10, write_restarts=True),
        output_dir, restart_dir,
    )
    for fname in produced:
        os.unlink(os.path.join(output_dir, fname))
    print(f"   {len(produced)} output steps virtualized\n")

    server = DVServer()
    server.add_context(context, output_dir, restart_dir)
    try:
        with LocalConnection(server) as conn:
            with SimFSSession(conn, "flash") as session:
                # Find when the shock front has travelled 6 cells from
                # the blast center by scanning forward coarsely (every
                # 20th step)...
                shock_step = None
                for key in range(20, 201, 20):
                    fname = context.filename_of(key)
                    session.acquire([fname], timeout=60.0)
                    with sio_open(conn.storage_path("flash", fname)) as fh:
                        pressure = fh.read("pressure")
                    session.release(fname)
                    half = len(pressure) // 2
                    shocked = np.nonzero(pressure[half:] > 0.05)[0]
                    if shocked.size and shocked.max() >= 6:
                        shock_step = key
                        break
                assert shock_step is not None, "shock never reached target"
                print(f"   shock reaches target radius around step {shock_step}")

                # ... then walk *backward* through the preceding steps to
                # characterize the front's development (root-cause style).
                print("\n== backward root-cause analysis ==")
                for key in range(shock_step, shock_step - 10, -1):
                    fname = context.filename_of(key)
                    session.acquire([fname], timeout=60.0)
                    with sio_open(conn.storage_path("flash", fname)) as fh:
                        vel = fh.read("velocity")
                    session.release(fname)
                    print(
                        f"   step {key:3d}: |v|max={np.abs(vel).max():7.4f}  "
                        f"mean={vel.mean():+.5f}  var={vel.var():.6f}"
                    )

        stats = server.coordinator
        print(f"\n   re-simulations: {stats.total_restarts}, "
              f"output steps produced: {stats.total_simulated_outputs}")
        state = stats.get_state("flash")
        print(f"   resident output steps at exit: {len(state.area)}")
    finally:
        server.stop()
        server.launcher.wait_all()
    print(f"workspace: {workdir}")


if __name__ == "__main__":
    main()
