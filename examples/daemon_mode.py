#!/usr/bin/env python
"""Daemon deployment: DV over TCP, exactly the paper's architecture.

Starts a DV daemon on an ephemeral localhost port, then connects a
separate ``TcpConnection`` client (in production this would be another
process or node) and runs a strided forward analysis — demonstrating the
control-plane/data-plane split of Fig. 4: control messages flow over
TCP/IP, data through the (shared) file system.

Run:  python examples/daemon_mode.py
"""

import os
import tempfile

from repro.client import SimFSSession, TcpConnection
from repro.core import ContextConfig, PerformanceModel, SimulationContext
from repro.dv import DVServer
from repro.simio import sio_open
from repro.simulators import SyntheticDriver


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="simfs-daemon-")
    output_dir = os.path.join(workdir, "output")
    restart_dir = os.path.join(workdir, "restart")
    os.makedirs(output_dir)
    os.makedirs(restart_dir)

    config = ContextConfig(
        name="synth", delta_d=2, delta_r=10, num_timesteps=200, smax=4
    )
    driver = SyntheticDriver(config.geometry, prefix="synth", cells=64)
    context = SimulationContext(
        config=config, driver=driver,
        perf=PerformanceModel(tau_sim=0.001, alpha_sim=0.0),
    )
    driver.execute(
        driver.make_job("synth", 0, 20, write_restarts=True),
        output_dir, restart_dir,
    )
    for fname in os.listdir(output_dir):
        os.unlink(os.path.join(output_dir, fname))

    server = DVServer()
    server.add_context(context, output_dir, restart_dir)
    server.start()
    host, port = server.address
    print(f"== DV daemon listening on {host}:{port} ==\n")

    try:
        connection = TcpConnection(
            host, port,
            storage_dirs={"synth": output_dir},
            restart_dirs={"synth": restart_dir},
        )
        with connection:
            with SimFSSession(connection, "synth") as session:
                print("== strided forward analysis over TCP (k=4) ==")
                for key in range(4, 80, 4):
                    fname = context.filename_of(key)
                    status = session.acquire([fname], timeout=60.0)
                    assert status.ok
                    with sio_open(
                        connection.storage_path("synth", fname)
                    ) as fh:
                        mean = float(fh.read("value").mean())
                    session.release(fname)
                    print(f"   {fname}: mean={mean:.4f}")
        stats = server.coordinator
        print(f"\n   re-simulations: {stats.total_restarts}, "
              f"outputs produced: {stats.total_simulated_outputs}")
    finally:
        server.stop()
        server.launcher.wait_all()
    print(f"workspace: {workdir}")


if __name__ == "__main__":
    main()
