#!/usr/bin/env python
"""Climate re-analysis on virtualized COSMO-like data (paper Sec. VI).

The motivating workload of the paper: a climate simulation produced more
data than can stay on disk; later, analysts compute statistics over
arbitrary time windows — forward scans, and backward scans for root-cause
analysis.  This example:

1. runs the initial toy-COSMO simulation (advection-diffusion stencil),
   keeping restarts and deleting the output;
2. serves a *forward* analysis (mean/variance of the temperature field,
   exactly the paper's analysis) through transparent interception — the
   analysis code performs plain ``sio_open`` calls on logical paths;
3. serves a *backward* analysis through the explicit SIMFS_* API with
   non-blocking acquires;
4. prints the re-simulation statistics.

Run:  python examples/climate_reanalysis.py
"""

import os
import tempfile

import numpy as np

from repro.client import LocalConnection, SimFSSession, VirtualizedHooks
from repro.core import ContextConfig, PerformanceModel, SimulationContext
from repro.dv import DVServer
from repro.simio import install_hooks, sio_open
from repro.simulators import CosmoDriver


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="simfs-climate-")
    output_dir = os.path.join(workdir, "output")
    restart_dir = os.path.join(workdir, "restart")
    os.makedirs(output_dir)
    os.makedirs(restart_dir)

    # One output step every 5 timesteps, a restart every 60 — the paper's
    # COSMO cadence, over a shortened 480-timestep run (96 outputs).
    config = ContextConfig(
        name="cosmo",
        delta_d=5,
        delta_r=60,
        num_timesteps=480,
        replacement_policy="dcl",
        smax=8,
    )
    driver = CosmoDriver(config.geometry, prefix="cosmo", nx=32, ny=24)
    context = SimulationContext(
        config=config,
        driver=driver,
        perf=PerformanceModel(tau_sim=0.001, alpha_sim=0.0),
    )

    print("== initial climate simulation ==")
    produced = driver.execute(
        driver.make_job("cosmo", 0, 8, write_restarts=True),
        output_dir, restart_dir,
    )
    for fname in produced:
        os.unlink(os.path.join(output_dir, fname))
    print(f"   {len(produced)} output steps virtualized "
          f"(only 8 restart files kept)\n")

    server = DVServer()
    server.add_context(context, output_dir, restart_dir)
    try:
        # ---- forward analysis, fully transparent (Sec. III-C1) -------- #
        print("== forward analysis (transparent mode) ==")
        with LocalConnection(server) as conn:
            conn.attach("cosmo")
            previous = install_hooks(
                VirtualizedHooks(conn, driver.naming, context="cosmo")
            )
            try:
                for key in range(10, 16):
                    # Legacy analysis code: just opens files by name.
                    with sio_open(context.filename_of(key)) as fh:
                        temp = fh.read("temperature")
                    print(
                        f"   step {key:3d}: mean={temp.mean():8.3f} K  "
                        f"var={temp.var():7.4f}"
                    )
            finally:
                install_hooks(previous)

        # ---- backward analysis via the SIMFS_* API (Sec. III-C2) ------ #
        print("\n== backward analysis (explicit API, non-blocking) ==")
        with LocalConnection(server) as conn:
            with SimFSSession(conn, "cosmo") as session:
                wanted = [context.filename_of(k) for k in range(60, 50, -1)]
                _status, request = session.acquire_nb(wanted)
                processed = 0
                while processed < len(wanted):
                    indices, _ = session.waitsome(request, timeout=60.0)
                    for idx in indices:
                        fname = wanted[idx]
                        with sio_open(
                            conn.storage_path("cosmo", fname)
                        ) as fh:
                            temp = fh.read("temperature")
                        print(f"   {fname}: mean={temp.mean():8.3f} K")
                        session.release(fname)
                        processed += 1

        stats = server.coordinator
        print(f"\n   re-simulations: {stats.total_restarts}, "
              f"output steps produced: {stats.total_simulated_outputs}")
    finally:
        server.stop()
        server.launcher.wait_all()
    print(f"workspace: {workdir}")


if __name__ == "__main__":
    main()
