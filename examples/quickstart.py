#!/usr/bin/env python
"""Quickstart: virtualize a simulation's output and analyze missing files.

Walks the full SimFS loop on a toy synthetic simulator:

1. run the *initial* simulation, keeping only the restart files (the
   output is deleted — the "cannot store everything" premise);
2. start a Data Virtualizer with a bounded storage area;
3. open output files through a ``SimFSSession`` — misses transparently
   restart the simulation from the right checkpoint;
4. verify bitwise reproducibility with ``SIMFS_Bitrep``.

Run:  python examples/quickstart.py
"""

import os
import tempfile

from repro.client import LocalConnection, SimFSSession
from repro.core import ContextConfig, PerformanceModel, SimulationContext
from repro.dv import DVServer
from repro.simulators import SyntheticDriver


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="simfs-quickstart-")
    output_dir = os.path.join(workdir, "output")
    restart_dir = os.path.join(workdir, "restart")
    os.makedirs(output_dir)
    os.makedirs(restart_dir)

    # A simulation with an output step every 2 timesteps and a restart
    # checkpoint every 8; 80 timesteps -> 40 output steps, 10 restarts.
    config = ContextConfig(
        name="demo",
        delta_d=2,
        delta_r=8,
        num_timesteps=80,
        replacement_policy="dcl",
        max_storage_bytes=None,
    )
    driver = SyntheticDriver(config.geometry, prefix="demo", cells=32)
    context = SimulationContext(
        config=config,
        driver=driver,
        perf=PerformanceModel(tau_sim=0.001, alpha_sim=0.0),
    )

    print("== initial simulation (writes restarts + full output) ==")
    produced = driver.execute(
        driver.make_job("demo", 0, 10, write_restarts=True),
        output_dir,
        restart_dir,
    )
    print(f"   produced {len(produced)} output steps, 10 restart files")

    # Record reference checksums, then delete the output: from now on the
    # data exists only *virtually*.
    for fname in produced:
        context.record_checksum(
            fname, driver.checksum(os.path.join(output_dir, fname))
        )
        os.unlink(os.path.join(output_dir, fname))
    print("   deleted all output steps (keeping checksums + restarts)\n")

    print("== virtualized analysis ==")
    server = DVServer()
    server.add_context(context, output_dir, restart_dir)
    try:
        with LocalConnection(server) as conn:
            with SimFSSession(conn, "demo") as session:
                for key in (7, 21, 33):
                    fname = context.filename_of(key)
                    status = session.acquire([fname], timeout=30.0)
                    assert status.ok
                    with session.open_file(fname) as fh:
                        values = fh.read("value")
                    matches = session.bitrep(fname)
                    print(
                        f"   {fname}: mean={values.mean():.4f} "
                        f"bitwise-identical={matches}"
                    )
                    session.release(fname)
        print(f"\n   re-simulations launched: "
              f"{server.coordinator.total_restarts}")
        print(f"   output steps produced on demand: "
              f"{server.coordinator.total_simulated_outputs}")
    finally:
        server.stop()
        server.launcher.wait_all()
    print(f"\nworkspace: {workdir}")


if __name__ == "__main__":
    main()
