"""Fig. 15 — (a) cost-effectiveness heatmap over (storage, compute) price
points; (b) SimFS cost over restart-file space; (c) re-simulation compute
time vs. space.

Paper: 100 analyses, 50 % overlap, 3 y availability, cache 25 %; the
heatmap marks the Microsoft Azure and Piz Daint price points, and the
space plots annotate restart volumes 6.33/3.16/1.58/0.79 TiB for
Δr = 4/8/16/32 h.
"""

from _harness import emit, run_once

from repro.costs import AZURE_COSTS, PIZ_DAINT_COSTS, cost_ratio_heatmap, space_tradeoff


def compute():
    cells = cost_ratio_heatmap(
        storage_costs=(0.02, 0.06, 0.12, 0.2, 0.3),
        compute_costs=(0.5, 1.0, 2.0, 3.0),
        months=36.0,
        cache_fraction=0.25,
        num_analyses=40,
        analysis_length=600,
        overlap=0.5,
    )
    space = space_tradeoff(
        restart_hours_list=(4.0, 8.0, 16.0, 32.0),
        cache_fractions=(0.25, 0.5),
        months=36.0,
        num_analyses=40,
        analysis_length=600,
        overlap=0.5,
    )
    return cells, space


def test_fig15_heatmap_and_space(benchmark):
    cells, space = run_once(benchmark, compute)
    emit(
        "fig15a_heatmap",
        "Fig. 15a: min(on-disk, in-situ) / SimFS cost ratio over platform "
        "prices (>1 means SimFS is cheapest)",
        ["cs $/GiB/mo", "cc $/node/h", "ratio", "best alternative"],
        [
            [c["storage_cost"], c["compute_cost"], c["ratio"],
             "on-disk" if c["on_disk"] < c["in_situ"] else "in-situ"]
            for c in cells
        ],
    )
    emit(
        "fig15bc_space",
        "Fig. 15b/c: SimFS cost and re-simulation time vs restart space "
        "(dt=3y)",
        ["dr (h)", "cache", "restarts TiB", "total TiB", "SimFS k$",
         "resim hours"],
        [
            [r.restart_hours, r.cache_fraction, r.restart_space_tib,
             r.total_space_tib, r.simfs_cost / 1e3, r.resim_hours]
            for r in space
        ],
    )
    # The Azure and Piz Daint datapoints are present (paper annotations).
    points = {(c["storage_cost"], c["compute_cost"]) for c in cells}
    assert (AZURE_COSTS["storage_cost"], AZURE_COSTS["compute_cost"]) in points
    assert (
        PIZ_DAINT_COSTS["storage_cost"],
        PIZ_DAINT_COSTS["compute_cost"],
    ) in points
    # Fig. 15b annotation: restart volumes halve as dr doubles
    # (6.33 -> 3.16 -> 1.58 -> 0.79 TiB).
    by_dr = {r.restart_hours: r for r in space if r.cache_fraction == 0.25}
    assert abs(by_dr[4.0].restart_space_tib - 6.33) < 0.35
    assert abs(by_dr[8.0].restart_space_tib - 3.16) < 0.2
    assert abs(by_dr[16.0].restart_space_tib - 1.58) < 0.1
    assert abs(by_dr[32.0].restart_space_tib - 0.79) < 0.05
    # Fig. 15c: the 50% cache never needs more re-simulation time.
    for dr in (4.0, 8.0, 16.0, 32.0):
        big = [r for r in space if r.restart_hours == dr and r.cache_fraction == 0.5][0]
        small = [r for r in space if r.restart_hours == dr and r.cache_fraction == 0.25][0]
        assert big.resim_hours <= small.resim_hours + 1e-9
