"""Tracing-overhead benchmark: the observability plane must be ~free.

Reuses the bench_wire pipelined-open workload against the shipped
binary+selector daemon in three trace modes:

* ``off``     — tracing never negotiated (the pre-observability wire
  path, bit-identical frames: the baseline);
* ``default`` — tracing negotiated, head sampling at the default 1/64
  (what a production client pays);
* ``all``     — every request carries a trace context (worst case: a
  17-byte packed prefix per frame plus a span record per hop).

Acceptance gate: ``default`` sequential round-trip latency within 5%
of ``off``.  The gate is measured as chunked single-client RTTs
interleaved across modes (a few thousand round trips against one shared
warmed daemon, paired per chunk and median-ed) because multi-threaded
throughput on a shared box swings +/-15% from scheduler noise alone —
far above the ~2% signal being guarded.  Throughput per mode is still
swept and reported, un-gated.  The micro series pins where the cost
lives: per-frame encode cost with and without the packed trace prefix,
and the recorder's per-call cost for sampled (recorded) vs unsampled
(dropped at a dict lookup) spans.

Persisted as ``BENCH_obs.json`` at the repo root (CI ``bench-smoke``
artifact).  Run directly (``python benchmarks/bench_obs.py [--smoke]``)
or under pytest (``pytest benchmarks/bench_obs.py``).
"""

from __future__ import annotations

import argparse
import os
import random
import statistics
import sys
import tempfile
import threading
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from _harness import emit, emit_json, run_once  # noqa: E402, F401
from bench_wire import RawClient, build_server  # noqa: E402

from repro.dv.protocol import (  # noqa: E402
    CODEC_BINARY,
    PROTOCOL_VERSION,
    encode_open_request,
)
from repro.obs.recorder import DEFAULT_HEAD_RATE, SpanRecorder  # noqa: E402
from repro.obs.trace import new_trace  # noqa: E402

#: Trace modes swept: (name, negotiate tracing, client head-sample rate).
MODES = (("off", False, 0.0), ("default", True, DEFAULT_HEAD_RATE),
         ("all", True, 1.0))

FULL = {"clients": 8, "window": 64, "seconds": 2.0, "micro_iters": 20000,
        "lat_chunks": 60, "lat_chunk_ops": 100}
SMOKE = {"clients": 4, "window": 32, "seconds": 0.5, "micro_iters": 4000,
         "lat_chunks": 30, "lat_chunk_ops": 50}


def _connect(host: str, port: int, uid: str, trace: bool) -> RawClient:
    if not trace:
        return RawClient(host, port, CODEC_BINARY, f"bench-obs-{uid}")
    # Tracing rides the same hello as the codec upgrade: rebuild the
    # handshake with the trace bit set.
    import socket as socket_mod

    from repro.dv.protocol import MessageReader, send_message

    sock = socket_mod.create_connection((host, port), timeout=10.0)
    sock.settimeout(None)
    sock.setsockopt(socket_mod.IPPROTO_TCP, socket_mod.TCP_NODELAY, 1)
    hello = {"op": "hello", "req": 0, "client_id": f"bench-obs-{uid}",
             "context": "wire", "vers": PROTOCOL_VERSION,
             "codec": CODEC_BINARY, "trace": 1}
    send_message(sock, hello)
    reader = MessageReader(sock)
    reply = reader.read_message()
    assert reply is not None and not reply.get("error"), reply
    assert reply.get("codec") == CODEC_BINARY
    assert reply.get("trace"), "daemon did not grant tracing"
    client = RawClient.__new__(RawClient)
    client.sock = sock
    client.codec = CODEC_BINARY
    client.reader = reader
    client.reader.set_codec(CODEC_BINARY)
    client.hello = reply
    return client


def _worker(host, port, slot, uid, filename, window, rate, trace, stop_at,
            start_gate, counts, errors):
    """Pipelined opens, attaching a trace context to ``rate`` of them."""
    rng = random.Random(0xB0B + slot)
    try:
        client = _connect(host, port, uid, trace)
        try:
            req = 0
            in_flight = 0
            start_gate.wait()
            while time.perf_counter() < stop_at[0]:
                while in_flight < window:
                    req += 1
                    tc = None
                    if rate > 0.0 and (rate >= 1.0 or rng.random() < rate):
                        tc = new_trace(sampled=True).to_wire()
                    client.sock.sendall(encode_open_request(
                        req, "wire", filename, client.codec, tc=tc
                    ))
                    in_flight += 1
                client.read_reply()
                in_flight -= 1
                counts[slot] += 1
            while in_flight > 0:
                client.read_reply()
                in_flight -= 1
                counts[slot] += 1
        finally:
            client.close()
    except Exception as exc:  # surfaced after join
        errors.append(exc)


def measure_phase(server, context, phase: str, trace: bool, rate: float,
                  sizing: dict) -> float:
    """Aggregate pipelined-open msgs/sec for one trace mode, against an
    already-running daemon (tracing is negotiated per connection, so the
    modes share one server — same warmed state, comparable numbers)."""
    host, port = server.address
    clients = sizing["clients"]
    counts = [0] * clients
    errors: list[Exception] = []
    start_gate = threading.Event()
    stop_at = [0.0]
    threads = [
        threading.Thread(
            target=_worker,
            args=(host, port, slot, f"{phase}-{slot}", context.filename_of(1),
                  sizing["window"], rate, trace, stop_at,
                  start_gate, counts, errors),
        )
        for slot in range(clients)
    ]
    for t in threads:
        t.start()
    time.sleep(0.2)  # let every client finish its handshake
    stop_at[0] = time.perf_counter() + sizing["seconds"]
    begin = time.perf_counter()
    start_gate.set()
    for t in threads:
        t.join(timeout=60.0)
    elapsed = time.perf_counter() - begin
    if errors:
        raise errors[0]
    return sum(counts) / elapsed


def _rtt_chunk(client, filename: str, base_req: int, n: int, rate: float,
               rng) -> float:
    """Mean ns per sequential open round trip over one chunk of ``n``."""
    begin = time.perf_counter_ns()
    for i in range(n):
        tc = None
        if rate > 0.0 and (rate >= 1.0 or rng.random() < rate):
            tc = new_trace(sampled=True).to_wire()
        client.sock.sendall(encode_open_request(
            base_req + i, "wire", filename, client.codec, tc=tc
        ))
        client.read_reply()
    return (time.perf_counter_ns() - begin) / n


def measure_rtt(server, context, sizing: dict) -> tuple[dict, dict]:
    """Sequential round-trip latency per mode, interleaved in chunks.

    One persistent connection per mode against the shared daemon; each
    chunk times a short burst of round trips for every mode back to
    back, so slow phases of the machine hit all modes alike.  The
    overhead for a mode is the median of its per-chunk ratios against
    the ``off`` chunk adjacent in time.
    """
    host, port = server.address
    filename = context.filename_of(1)
    chunks, ops = sizing["lat_chunks"], sizing["lat_chunk_ops"]
    conns, rngs = {}, {}
    for idx, (name, trace, _rate) in enumerate(MODES):
        conns[name] = _connect(host, port, f"rtt-{name}", trace)
        rngs[name] = random.Random(0xA11 + idx)
    samples: dict[str, list[float]] = {name: [] for name, _, _ in MODES}
    try:
        for name, _trace, rate in MODES:  # warm code paths + caches
            _rtt_chunk(conns[name], filename, 1_000_000, 100, rate,
                       rngs[name])
        for chunk in range(chunks):
            for name, _trace, rate in MODES:
                samples[name].append(_rtt_chunk(
                    conns[name], filename, 2_000_000 + chunk * ops, ops,
                    rate, rngs[name],
                ))
    finally:
        for client in conns.values():
            client.close()
    # Best chunk per mode: the minimum over many short chunks is the
    # classic noise-robust latency estimator — scheduler stalls only
    # ever ADD time, so the fastest chunk is the least-perturbed one,
    # and the ratio of fastest chunks isolates the code-path delta.
    best = {name: min(vals) for name, vals in samples.items()}
    rtt = {name: round(val, 1) for name, val in best.items()}
    overhead = {
        name: round(100.0 * (val / best["off"] - 1.0), 2)
        for name, val in best.items() if name != "off"
    }
    return rtt, overhead


def measure_micro(sizing: dict) -> dict:
    """Where the per-request cost lives, in ns/op."""
    iters = sizing["micro_iters"]
    tc = new_trace(sampled=True).to_wire()
    rows = {}
    begin = time.perf_counter_ns()
    for req in range(iters):
        encode_open_request(req, "wire", "wire_out_00042.sdf", CODEC_BINARY)
    rows["encode_open_ns"] = (time.perf_counter_ns() - begin) / iters
    begin = time.perf_counter_ns()
    for req in range(iters):
        encode_open_request(req, "wire", "wire_out_00042.sdf", CODEC_BINARY,
                            tc=tc)
    rows["encode_open_traced_ns"] = (time.perf_counter_ns() - begin) / iters
    recorder = SpanRecorder(node="bench")
    sampled = new_trace(sampled=True)
    unsampled = new_trace(sampled=False)
    begin = time.perf_counter_ns()
    for i in range(iters):
        recorder.record("op.open", sampled, float(i), float(i) + 1e-4)
    rows["record_sampled_ns"] = (time.perf_counter_ns() - begin) / iters
    begin = time.perf_counter_ns()
    for i in range(iters):
        recorder.record("op.open", unsampled, float(i), float(i) + 1e-4)
    rows["record_dropped_ns"] = (time.perf_counter_ns() - begin) / iters
    return {k: round(v, 1) for k, v in rows.items()}


def compute(sizing: dict) -> dict:
    # All series share one warmed daemon (tracing is negotiated per
    # connection).  The GATE rides the interleaved sequential-RTT
    # series: per-chunk pairing against the adjacent off chunk cancels
    # machine drift, the median sheds one-off scheduler stalls.  The
    # multi-client throughput sweep stays as reporting only — its run-
    # to-run swing on a shared box dwarfs the overhead being guarded.
    with tempfile.TemporaryDirectory(prefix="bench-obs-") as workdir:
        server, context = build_server(workdir, "selector")
        try:
            rtt, overhead = measure_rtt(server, context, sizing)
            throughput = {
                name: round(measure_phase(
                    server, context, name, trace, rate, sizing
                ), 1)
                for name, trace, rate in MODES
            }
        finally:
            server.stop()
    return {
        "rtt_ns": rtt,
        "overhead_pct": overhead,
        "throughput_msgs_per_sec": throughput,
        "head_rate_default": DEFAULT_HEAD_RATE,
        "micro_ns": measure_micro(sizing),
        "sizing": sizing,
    }


def report(results: dict) -> None:
    rtt = results["rtt_ns"]
    overhead = results["overhead_pct"]
    emit(
        "obs_overhead",
        "Sequential open RTT by trace mode (binary+selector; gated)",
        ["mode", "rtt ns/op", "overhead %"],
        [[name, rtt[name], overhead.get(name, 0.0)] for name in rtt],
    )
    emit(
        "obs_throughput",
        "Pipelined open throughput by trace mode (reporting only)",
        ["mode", "msgs/s"],
        sorted(results["throughput_msgs_per_sec"].items()),
    )
    micro = results["micro_ns"]
    emit(
        "obs_micro",
        "Per-op cost of the tracing plane",
        ["operation", "ns/op"],
        sorted(micro.items()),
    )
    path = emit_json("obs", results)
    print(f"wrote {path}")


def test_tracing_overhead(benchmark):
    results = run_once(benchmark, lambda: compute(SMOKE))
    report(results)
    # Acceptance gate: default head sampling adds <= 5% to the wire
    # path's round-trip latency.  (Negative overhead = noise.)
    overhead = results["overhead_pct"]["default"]
    assert overhead <= 5.0, (
        f"default-sampling tracing overhead {overhead:.2f}% exceeds the "
        "5% budget"
    )
    # The drop path really is a dict lookup, not a ring write.
    micro = results["micro_ns"]
    assert micro["record_dropped_ns"] < micro["record_sampled_ns"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", "--quick", dest="smoke",
                        action="store_true",
                        help="short run for CI")
    args = parser.parse_args(argv)
    results = compute(dict(SMOKE if args.smoke else FULL))
    report(results)
    overhead = results["overhead_pct"]["default"]
    if overhead > 5.0:
        print(f"WARNING: default tracing overhead {overhead:.2f}% > 5%",
              file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
