"""Fig. 5 — Cache replacement scheme comparison.

Paper setup: a 4-day simulation with an output step every 5 minutes and a
restart every 4 hours (1152 steps, 48 per restart interval), cache = 25 %
of the data volume.  Traces: concatenations of 50 forward / backward /
random scans of 100-400 steps each, plus an ECMWF-archive-like trace
(synthetic here, see DESIGN.md).  Bars = simulated output steps; dots =
restarts.

Expected shape: little difference between schemes on scan patterns (LIRS
worse on backward); the cost-aware schemes — DCL in particular — minimize
restarts/simulated steps on the ECMWF and random traces.
"""

import statistics

from _harness import emit, run_once

from repro.core.steps import StepGeometry
from repro.traces import TraceSpec, concatenated_trace, ecmwf_like_trace, replay_trace

GEO = StepGeometry(delta_d=5, delta_r=240, num_timesteps=4 * 24 * 60)
POLICIES = ("arc", "bcl", "dcl", "lirs", "lru")
PATTERNS = ("forward", "backward", "random", "ecmwf")
REPEATS = 5  # the paper repeats 100x; 5 keeps the bench quick
SPEC = TraceSpec(num_output_steps=GEO.num_output_steps, num_traces=25)


def make_trace(pattern: str, seed: int) -> list[int]:
    if pattern == "ecmwf":
        return ecmwf_like_trace(GEO.num_output_steps, seed=seed,
                                num_accesses=12_000)
    return concatenated_trace(pattern, SPEC, seed=seed)


def compute():
    rows = []
    for pattern in PATTERNS:
        for policy in POLICIES:
            outputs, restarts = [], []
            for rep in range(REPEATS):
                trace = make_trace(pattern, seed=100 * rep + 7)
                result = replay_trace(trace, GEO, policy, cache_fraction=0.25)
                outputs.append(result.simulated_outputs)
                restarts.append(result.restarts)
            rows.append(
                (pattern, policy,
                 statistics.median(outputs), statistics.median(restarts))
            )
    return rows


def test_fig05_cache_schemes(benchmark):
    rows = run_once(benchmark, compute)
    emit(
        "fig05_cache_schemes",
        "Fig. 5: simulated output steps / restarts by replacement scheme "
        "and access pattern (cache 25%, median of "
        f"{REPEATS} trace seeds)",
        ["pattern", "scheme", "simulated outputs", "restarts"],
        rows,
    )
    by = {(p, s): (o, r) for p, s, o, r in rows}
    # Random: DCL (the paper's pick) is the best or within 10% of it.
    best_random = min(by[("random", s)][0] for s in POLICIES)
    assert by[("random", "dcl")][0] <= 1.10 * best_random
    # ECMWF-like: the cost-aware DCL beats the recency-based LRU and its
    # eager sibling BCL.  (On the *synthetic* archive trace the
    # frequency-based ARC/LIRS can do even better than DCL because the
    # Zipf skew is stronger than the real trace's — see EXPERIMENTS.md.)
    assert by[("ecmwf", "dcl")][0] <= by[("ecmwf", "lru")][0]
    assert by[("ecmwf", "dcl")][0] <= by[("ecmwf", "bcl")][0]
    # Scan patterns: schemes are close to each other (except LIRS on
    # backward, which the paper singles out as the outlier).
    fwd = [by[("forward", s)][0] for s in POLICIES]
    assert max(fwd) <= 1.5 * min(fwd)
    assert by[("backward", "lirs")][0] >= max(
        by[("backward", s)][0] for s in ("lru", "arc", "bcl", "dcl")
    )
