"""Concurrency microbenchmark: multi-client op throughput over TCP.

Eight clients spread over four contexts hammer the daemon with
acquire / bitrep / release cycles on resident steps.  Two configurations:

* ``sharded`` — the daemon as shipped: handler threads dispatch into
  per-context shards, each serializing only its own traffic, and slow
  data-plane work (the bitrep checksum) runs outside any control lock;
* ``global-lock`` — the pre-sharding behavior, emulated by wrapping the
  daemon's dispatch in one process-wide lock (every op of every client
  serializes, checksums included — exactly what the seed's
  ``ThreadedLauncher.lock`` did).

The contexts use a driver whose ``checksum`` adds a small real sleep,
emulating the parallel-file-system read of an output step in the paper's
deployment (the launcher's ``alpha_delay``/``tau_delay`` pacing pattern):
checksumming a multi-GB step is I/O time during which a global-lock
daemon is deaf to every other client, while the sharded daemon keeps
serving.  On multi-core hardware the same contrast appears with pure
CPU hashing; the sleep makes it visible on single-core CI boxes too.

The headline number is the aggregate op throughput ratio.  A second
series measures the ``batch`` op's round-trip savings: N open+release
pairs issued as 2N sequential RPCs versus one pipelined frame.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import threading
import time

from _harness import emit, run_once

from repro.client import SimFSSession, TcpConnection
from repro.core.context import ContextConfig, SimulationContext
from repro.core.perfmodel import PerformanceModel
from repro.dv.server import DVServer
from repro.simulators import SyntheticDriver

NUM_CONTEXTS = 4
NUM_CLIENTS = 8
MEASURE_SECONDS = 2.0
CELLS = 16384
#: emulated PFS read latency for one output-step checksum (see module doc)
CHECKSUM_IO_DELAY = 0.002
BATCH_PAIRS = 64


class PacedChecksumDriver(SyntheticDriver):
    """Synthetic driver whose checksum pays an emulated PFS read."""

    def checksum(self, path: str) -> str:
        time.sleep(CHECKSUM_IO_DELAY)
        return super().checksum(path)


def build_server(workdir: str) -> tuple[DVServer, dict[str, SimulationContext]]:
    server = DVServer()
    contexts = {}
    for idx in range(NUM_CONTEXTS):
        name = f"ctx{idx}"
        config = ContextConfig(name=name, delta_d=2, delta_r=8, num_timesteps=32)
        driver = PacedChecksumDriver(
            config.geometry, prefix=name, cells=CELLS, seed=idx + 1
        )
        context = SimulationContext(
            config=config, driver=driver,
            perf=PerformanceModel(tau_sim=0.001, alpha_sim=0.0),
        )
        out = os.path.join(workdir, f"{name}-out")
        rst = os.path.join(workdir, f"{name}-rst")
        os.makedirs(out)
        os.makedirs(rst)
        produced = driver.execute(
            driver.make_job(name, 0, 4, write_restarts=True), out, rst
        )
        for fname in produced:
            context.record_checksum(
                fname, driver.checksum(os.path.join(out, fname))
            )
        server.add_context(context, out, rst)
        contexts[name] = context
    server.start()
    return server, contexts


def run_clients(server: DVServer, contexts: dict[str, SimulationContext]) -> float:
    """8 clients, 2 per context, cycling acquire+bitrep+release on resident
    steps for MEASURE_SECONDS; returns aggregate ops per second."""
    host, port = server.address
    names = sorted(contexts)
    ops = [0] * NUM_CLIENTS
    errors: list[Exception] = []
    start_gate = threading.Event()
    stop_at = [0.0]

    def worker(slot: int) -> None:
        name = names[slot % NUM_CONTEXTS]
        context = contexts[name]
        keys = list(range(1 + slot, 13, NUM_CLIENTS // NUM_CONTEXTS))
        try:
            conn = TcpConnection(
                host, port,
                storage_dirs={name: server.launcher.output_dir(name)},
                restart_dirs={name: server.launcher.restart_dir(name)},
            )
            with conn, SimFSSession(conn, name) as session:
                start_gate.wait()
                idx = 0
                while time.perf_counter() < stop_at[0]:
                    fname = context.filename_of(keys[idx % len(keys)])
                    session.acquire([fname], timeout=30.0)
                    session.bitrep(fname)
                    session.release(fname)
                    ops[slot] += 3
                    idx += 1
        except Exception as exc:  # surfaced after join
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(NUM_CLIENTS)]
    for t in threads:
        t.start()
    time.sleep(0.2)  # let every client finish its handshake
    stop_at[0] = time.perf_counter() + MEASURE_SECONDS
    begin = time.perf_counter()
    start_gate.set()
    for t in threads:
        t.join(timeout=60.0)
    elapsed = time.perf_counter() - begin
    if errors:
        raise errors[0]
    return sum(ops) / elapsed


def with_global_lock(func):
    """Emulate the pre-sharding daemon: one lock around every dispatch."""
    original = DVServer._dispatch
    big_lock = threading.RLock()

    def locked_dispatch(self, conn, message):
        with big_lock:
            return original(self, conn, message)

    DVServer._dispatch = locked_dispatch
    try:
        return func()
    finally:
        DVServer._dispatch = original


def measure_throughput() -> list[list]:
    rows = []
    results = {}
    for mode in ("global-lock", "sharded"):
        workdir = tempfile.mkdtemp(prefix=f"bench-dv-{mode}-")
        try:
            server, contexts = build_server(workdir)
            try:
                runner = lambda: run_clients(server, contexts)  # noqa: E731
                throughput = (
                    with_global_lock(runner) if mode == "global-lock" else runner()
                )
            finally:
                server.stop()
        finally:
            shutil.rmtree(workdir, ignore_errors=True)
        results[mode] = throughput
        rows.append([mode, NUM_CLIENTS, NUM_CONTEXTS, throughput])
    rows.append([
        "speedup", NUM_CLIENTS, NUM_CONTEXTS,
        results["sharded"] / results["global-lock"],
    ])
    return rows


def measure_batch_round_trips() -> list[list]:
    """Sequential open/release RPCs versus one pipelined ``batch`` frame."""
    workdir = tempfile.mkdtemp(prefix="bench-dv-batch-")
    rows = []
    try:
        server, contexts = build_server(workdir)
        try:
            name = sorted(contexts)[0]
            context = contexts[name]
            host, port = server.address
            conn = TcpConnection(
                host, port,
                storage_dirs={name: server.launcher.output_dir(name)},
                restart_dirs={name: server.launcher.restart_dir(name)},
            )
            with conn:
                conn.attach(name)
                fname = context.filename_of(1)

                begin = time.perf_counter()
                for _ in range(BATCH_PAIRS):
                    conn.open(name, fname)
                    conn.release(name, fname)
                sequential = time.perf_counter() - begin

                frame = []
                for _ in range(BATCH_PAIRS):
                    frame.append({"op": "open", "context": name, "file": fname})
                    frame.append({"op": "release", "context": name, "file": fname})
                begin = time.perf_counter()
                results = conn.batch(frame)
                batched = time.perf_counter() - begin
                assert all(r["error"] == 0 for r in results)

            rows.append(["sequential", 2 * BATCH_PAIRS, sequential * 1e3])
            rows.append(["batch", 2 * BATCH_PAIRS, batched * 1e3])
            rows.append(["speedup", 2 * BATCH_PAIRS, sequential / batched])
        finally:
            server.stop()
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return rows


def compute() -> tuple[list[list], list[list]]:
    return measure_throughput(), measure_batch_round_trips()


def test_concurrent_client_throughput(benchmark):
    throughput_rows, batch_rows = run_once(benchmark, compute)
    emit(
        "concurrent_clients",
        f"Multi-client DV throughput: {NUM_CLIENTS} clients over "
        f"{NUM_CONTEXTS} contexts (acquire+bitrep+release cycles)",
        ["mode", "clients", "contexts", "ops/s"],
        throughput_rows,
    )
    emit(
        "batch_round_trips",
        f"Batch op round-trip savings ({BATCH_PAIRS} open+release pairs)",
        ["mode", "sub-ops", "ms"],
        batch_rows,
    )
    speedup = throughput_rows[-1][-1]
    assert speedup >= 2.0, (
        f"sharding speedup {speedup:.2f}x below the 2x acceptance bar"
    )


if __name__ == "__main__":
    throughput_rows, batch_rows = compute()
    emit(
        "concurrent_clients",
        f"Multi-client DV throughput: {NUM_CLIENTS} clients over "
        f"{NUM_CONTEXTS} contexts (acquire+bitrep+release cycles)",
        ["mode", "clients", "contexts", "ops/s"],
        throughput_rows,
    )
    emit(
        "batch_round_trips",
        f"Batch op round-trip savings ({BATCH_PAIRS} open+release pairs)",
        ["mode", "sub-ops", "ms"],
        batch_rows,
    )
