"""Fig. 14 — Data availability cost vs. total number of analyses.

Paper: Δt = 2 y, 50 % overlap.  Below ~20 analyses in-situ wins (the
initial simulation + restart/cache storage exceed per-analysis coupled
simulations); beyond that, in-situ's lack of sharing makes it the most
expensive option.
"""

from _harness import emit, run_once

from repro.costs import analyses_sweep


def compute():
    return analyses_sweep(
        analysis_counts=(1, 5, 10, 20, 50, 75, 100, 125),
        restart_hours_list=(4.0, 8.0, 16.0),
        cache_fractions=(0.25, 0.5),
        months=24.0,
        overlap=0.5,
        analysis_length=600,
    )


def test_fig14_num_analyses(benchmark):
    rows = run_once(benchmark, compute)
    emit(
        "fig14_num_analyses",
        "Fig. 14: cost (k$) vs number of analyses (dt=2y, 50% overlap)",
        ["analyses", "dr (h)", "cache", "on-disk k$", "in-situ k$",
         "SimFS k$", "winner"],
        [
            [r.num_analyses, r.restart_hours, r.cache_fraction,
             r.on_disk / 1e3, r.in_situ / 1e3, r.simfs / 1e3, r.winner]
            for r in rows
        ],
    )
    series = {
        r.num_analyses: r
        for r in rows
        if r.restart_hours == 8.0 and r.cache_fraction == 0.25
    }
    # in-situ scales linearly with z; SimFS sublinearly (shared cache).
    assert series[125].in_situ > 100 * series[1].in_situ
    assert series[125].simfs < 20 * series[1].simfs
    # Crossover: in-situ wins for one analysis, loses for many.
    assert series[1].in_situ < series[1].simfs
    assert series[125].simfs < series[125].in_situ
