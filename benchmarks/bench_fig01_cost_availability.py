"""Fig. 1 — Aggregated analysis cost vs. data availability period.

Paper: 100 forward analyses at 50 % overlap on the COSMO cost scenario
(Δr = 8 h, cache 25 %); SimFS cuts the 5-year cost from >$200k (on-disk)
to <$100k, while in-situ is flat but expensive for recurring analyses.
"""

from _harness import emit, run_once

from repro.costs import availability_sweep


def compute():
    return availability_sweep(
        months_list=(6, 12, 24, 36, 48, 60),
        restart_hours_list=(8.0,),
        cache_fractions=(0.25,),
        num_analyses=100,
        overlap=0.5,
    )


def test_fig01_cost_availability(benchmark):
    rows = run_once(benchmark, compute)
    emit(
        "fig01_cost_availability",
        "Fig. 1: analysis cost (k$) over the data availability period "
        "(100 analyses, 50% overlap, dr=8h, cache 25%)",
        ["months", "on-disk k$", "in-situ k$", "SimFS k$", "winner"],
        [
            [int(r.months), r.on_disk / 1e3, r.in_situ / 1e3, r.simfs / 1e3,
             r.winner]
            for r in rows
        ],
    )
    by_months = {r.months: r for r in rows}
    # Paper headline claims: >$200k on-disk at 5 y, SimFS <$100k... our
    # workload calibration differs (analysis length unpublished), so pin
    # the shape: on-disk grows linearly, in-situ is flat, SimFS grows
    # slower than on-disk and wins long availability periods.
    assert by_months[60].on_disk > 190_000
    assert by_months[6].in_situ == by_months[60].in_situ
    simfs_growth = by_months[60].simfs - by_months[6].simfs
    disk_growth = by_months[60].on_disk - by_months[6].on_disk
    assert simfs_growth < disk_growth
    assert by_months[60].simfs < by_months[60].on_disk
