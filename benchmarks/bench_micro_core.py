"""Micro-benchmarks of the core substrates.

Not a paper figure: throughput sanity checks that keep the building
blocks honest — storage-area access/insert cycles under each replacement
scheme, DES event throughput, SDF encode/decode bandwidth, and the DV
wire-protocol codec.
"""

import numpy as np
import pytest

from repro.cache import StorageArea
from repro.core.steps import StepGeometry
from repro.des import DESEngine
from repro.dv.protocol import decode_message, encode_message
from repro.simio import decode, encode

GEO = StepGeometry(delta_d=5, delta_r=240, num_timesteps=4 * 24 * 60)


@pytest.mark.parametrize("policy", ["lru", "lirs", "arc", "bcl", "dcl"])
def test_cache_access_insert_throughput(benchmark, policy):
    import random

    rng = random.Random(3)
    keys = [rng.randrange(1, 1153) for _ in range(2000)]

    def workload():
        area = StorageArea(policy, capacity_bytes=288, entry_bytes=1)
        for key in keys:
            if not area.access(key):
                area.insert(key, cost=float(GEO.miss_cost(key)))
        return len(area)

    resident = benchmark(workload)
    assert 0 < resident <= 288


def test_des_event_throughput(benchmark):
    def run_events():
        engine = DESEngine()
        count = 10_000

        def tick():
            nonlocal count
            count -= 1
            if count > 0:
                engine.schedule(0.001, tick)

        engine.schedule(0.0, tick)
        engine.run()
        return engine.events_processed

    processed = benchmark(run_events)
    assert processed == 10_000


def test_sdf_encode_decode(benchmark):
    arr = np.random.default_rng(0).random((256, 256))

    def roundtrip():
        variables, _ = decode(encode({"field": arr}, {"timestep": 5}))
        return variables["field"]

    out = benchmark(roundtrip)
    np.testing.assert_array_equal(out, arr)


@pytest.mark.parametrize("policy", ["lru", "arc", "lirs"])
def test_victim_selection_under_heavy_pinning(benchmark, policy):
    """Victim choice with a cold end crowded by pinned entries — the
    workload shape of a long analysis holding a window of steps open.
    LRU is O(1) here (evictable-order dict); ARC/LIRS skip pinned keys
    via a set instead of a manager callback per key."""
    area = StorageArea(policy, capacity_bytes=1 << 30, entry_bytes=1)
    total = 4096
    for key in range(total):
        area.access(key)
        area.insert(key, cost=1.0)
        if key != total - 1:
            area.pin(key)  # everything but the newest entry is referenced

    def pick():
        victim = None
        for _ in range(1000):
            victim = area.policy.victim(area._is_evictable)
        return victim

    assert benchmark(pick) == total - 1


def test_protocol_codec(benchmark):
    message = {
        "op": "acquire",
        "req": 42,
        "context": "cosmo",
        "files": [f"cosmo_out_{i:08d}.sdf" for i in range(32)],
    }

    def roundtrip():
        return decode_message(encode_message(message).strip())

    out = benchmark(roundtrip)
    assert out["files"] == message["files"]


def test_binary_codec_hot_ops(benchmark):
    """Length-prefixed binary codec round trip for the hottest frame."""
    from repro.dv.protocol import CODEC_BINARY, StreamDecoder, encode_binary

    message = {"op": "open", "req": 42, "context": "cosmo",
               "file": "cosmo_out_00000042.sdf"}
    decoder = StreamDecoder(CODEC_BINARY)

    def roundtrip():
        decoder.feed(encode_binary(message))
        return decoder.next_message()

    assert benchmark(roundtrip) == message


def test_step_geometry_math(benchmark):
    def sweep():
        total = 0
        for i in range(1, 1153):
            total += GEO.miss_cost(i) + GEO.restart_before(i)
        return total

    assert benchmark(sweep) > 0
