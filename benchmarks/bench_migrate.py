"""Live-migration benchmark: cutover cost and autoscaled-scale-event SLO.

Two series, persisted as ``BENCH_migrate.json`` at the repo root (part
of the perf-trajectory artifact the CI ``bench-smoke`` job uploads):

``live_migrate_seconds``
    Live measurement on a real three-node cluster: a gateway client
    blocks on an open against a loaded context, the context is migrated
    out from under it, and we record the protocol's own freeze window
    (the job-intake pause at cutover), the end-to-end migrate duration
    (pre-copy included), and the client-observed time from cutover to
    its ready.  The waiter moves hot — the client never retries — so
    the ready time is dominated by the deliberate simulation delay, and
    the freeze (the only part clients can notice on the open path) must
    stay in the milliseconds.

``des_scale_event``
    The 1→8→2 scale event on the virtual clock: a flash crowd of eight
    contexts hits a single-node :class:`VirtualCluster`, the *same*
    :class:`AutoscalerPolicy` the live nodes run grows the cluster
    through migrate/join decisions, the crowd drains, and the cluster
    shrinks back to two nodes.  The SLO: p99 open latency across the
    whole event must stay within the no-elasticity baseline plus the
    total freeze budget the migrations spent — elasticity must not cost
    latency beyond its advertised freeze windows.

Run directly (``python benchmarks/bench_migrate.py [--quick]``) or
under pytest (``pytest benchmarks/bench_migrate.py``).
"""

from __future__ import annotations

import argparse
import os
import statistics
import sys
import tempfile
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from _harness import emit, emit_json, free_port  # noqa: E402

from repro.client.dvlib import TcpConnection  # noqa: E402
from repro.cluster import ClusterNode  # noqa: E402
from repro.cluster.autoscaler import AutoscalerPolicy  # noqa: E402
from repro.core.context import ContextConfig, SimulationContext  # noqa: E402
from repro.core.perfmodel import PerformanceModel  # noqa: E402
from repro.des.components import (  # noqa: E402
    VirtualAutoscaler,
    VirtualCluster,
)
from repro.simulators import SyntheticDriver  # noqa: E402

NODE_IDS = ("n1", "n2", "n3")

FULL = {"trials": 3, "alpha_delay": 1.2, "des_contexts": 8}
QUICK = {"trials": 1, "alpha_delay": 0.8, "des_contexts": 8}


# --------------------------------------------------------------------- #
# Live: migrate a context out from under a blocked waiter
# --------------------------------------------------------------------- #
def build_context(workdir: str, name: str) -> tuple[SimulationContext, str, str]:
    """A synthetic context with restart files but no outputs (every open
    is a miss that launches a re-simulation)."""
    config = ContextConfig(name=name, delta_d=2, delta_r=8, num_timesteps=32)
    driver = SyntheticDriver(config.geometry, prefix=name, cells=16)
    context = SimulationContext(
        config=config, driver=driver,
        perf=PerformanceModel(tau_sim=0.001, alpha_sim=0.0),
    )
    out = os.path.join(workdir, f"{name}-out")
    rst = os.path.join(workdir, f"{name}-rst")
    os.makedirs(out, exist_ok=True)
    os.makedirs(rst, exist_ok=True)
    produced = driver.execute(
        driver.make_job(name, 0, 4, write_restarts=True), out, rst
    )
    for fname in produced:
        os.unlink(os.path.join(out, fname))
    return context, out, rst


def live_trial(alpha_delay: float) -> dict:
    """One blocked-waiter migration; returns freeze/total/ready times."""
    with tempfile.TemporaryDirectory(prefix="bench-migrate-") as workdir:
        context, out, rst = build_context(workdir, "mig")
        ports = {nid: free_port() for nid in NODE_IDS}
        specs = [f"{nid}@127.0.0.1:{ports[nid]}" for nid in NODE_IDS]
        nodes = {
            nid: ClusterNode(
                nid, port=ports[nid],
                peers=[s for s in specs if not s.startswith(f"{nid}@")],
                vnodes=32, heartbeat_interval=0.15, suspect_after=2,
            )
            for nid in NODE_IDS
        }
        conn = None
        try:
            for node in nodes.values():
                node.add_context(context, out, rst, alpha_delay=alpha_delay)
            for node in nodes.values():
                node.start()
            with nodes["n1"]._lock:
                owner = nodes["n1"].ring.owner("mig")
            others = [n for n in NODE_IDS if n != owner]
            dest, ingress = others
            host, port = nodes[ingress].address
            conn = TcpConnection(
                host, port, {"mig": out}, {"mig": rst},
                client_id="bench-migrate-client",
            )
            conn.attach("mig")
            filename = context.filename_of(3)
            info = conn.open("mig", filename)
            assert not info.available, "context unexpectedly warm"
            # The migration must find a registered waiter, not a race.
            shard = nodes[owner].server.coordinator.shard("mig")
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                with shard.lock:
                    if any(shard.waiters.values()):
                        break
                time.sleep(0.02)
            begin = time.perf_counter()
            result = nodes[owner].migration.migrate("mig", dest)
            assert result["moved_waiters"] >= 1
            assert conn.ready_table.wait("mig", filename, timeout=60.0), \
                "client never unblocked after the migration"
            ready_s = time.perf_counter() - begin
            return {
                "freeze_s": result["freeze_seconds"],
                "migrate_s": result["total_seconds"],
                "ready_s": ready_s,
            }
        finally:
            if conn is not None:
                conn.close()
            for node in nodes.values():
                try:
                    node.stop(drain_timeout=0)
                except Exception:
                    pass


def measure_live(sizing: dict) -> dict:
    samples = [
        live_trial(sizing["alpha_delay"]) for _ in range(sizing["trials"])
    ]
    return {
        key: {
            "median_s": round(
                statistics.median(s[key] for s in samples), 4
            ),
            "max_s": round(max(s[key] for s in samples), 4),
        }
        for key in ("freeze_s", "migrate_s", "ready_s")
    } | {"trials": len(samples)}


# --------------------------------------------------------------------- #
# DES: p99 open latency through an autoscaled 1->8->2 scale event
# --------------------------------------------------------------------- #
def des_context(name: str) -> SimulationContext:
    config = ContextConfig(name=name, delta_d=2, delta_r=8, num_timesteps=64)
    driver = SyntheticDriver(config.geometry, prefix=name)
    return SimulationContext(
        config=config, driver=driver,
        perf=PerformanceModel(tau_sim=5.0, alpha_sim=30.0),
    )


def des_flash_crowd(num_contexts: int, freeze: float, autoscale: bool):
    cluster = VirtualCluster(node_ids=("n1",))
    analyses = []
    for idx in range(num_contexts):
        context = des_context(f"crowd{idx}")
        cluster.add_context(context)
        analyses.append(cluster.add_analysis(
            context, keys=list(range(1, 13)), tau_cli=1.0,
        ))
    scaler = None
    if autoscale:
        policy = AutoscalerPolicy(
            high=4.0, low=1.0, cooldown_ticks=0, min_nodes=2
        )
        scaler = VirtualAutoscaler(
            cluster, policy, tick=5.0, freeze=freeze,
            max_nodes=num_contexts,
        )
        scaler.start(until=2500.0)
    cluster.run()
    assert all(a.done for a in analyses)
    return cluster, analyses, scaler


def p99(samples: list[float]) -> float:
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(0.99 * (len(ordered) - 1)))]


def des_scale_event(num_contexts: int, freeze: float = 0.05) -> dict:
    base_cluster, base_analyses, _ = des_flash_crowd(
        num_contexts, freeze, autoscale=False
    )
    cluster, analyses, scaler = des_flash_crowd(
        num_contexts, freeze, autoscale=True
    )
    stats = cluster.stats()
    base_p99 = p99([s for a in base_analyses for s in a.open_latencies])
    event_p99 = p99([s for a in analyses for s in a.open_latencies])
    moves = stats["migrations"]
    slo = base_p99 + moves * freeze
    return {
        "contexts": num_contexts,
        "baseline_p99_s": round(base_p99, 3),
        "event_p99_s": round(event_p99, 3),
        "slo_p99_s": round(slo, 3),
        "within_slo": event_p99 <= slo + 1e-9,
        "migrations": moves,
        "migrated_waiters": stats["migrated_waiters"],
        "joined": stats["joined"],
        "drained": stats["drained"],
        "peak_nodes": stats["joined"] + 1,
        "final_nodes": stats["joined"] + 1 - stats["drained"],
        "lost_waiters": stats["replication"]["lost_waiters"],
        "freeze_s": freeze,
    }


def compute(sizing: dict) -> dict:
    return {
        "live_migrate_seconds": measure_live(sizing),
        "des_scale_event": des_scale_event(sizing["des_contexts"]),
        "sizing": sizing,
    }


def report(results: dict) -> None:
    live = results["live_migrate_seconds"]
    des = results["des_scale_event"]
    emit(
        "migrate",
        "Live cutover cost and DES 1->N->2 scale-event p99 open latency",
        ["series", "value"],
        [
            ["live freeze median s", live["freeze_s"]["median_s"]],
            ["live migrate median s", live["migrate_s"]["median_s"]],
            ["live ready median s", live["ready_s"]["median_s"]],
            ["des baseline p99 s", des["baseline_p99_s"]],
            ["des event p99 s", des["event_p99_s"]],
            ["des slo p99 s", des["slo_p99_s"]],
            ["des peak nodes", des["peak_nodes"]],
            ["des final nodes", des["final_nodes"]],
        ],
    )
    path = emit_json("migrate", results)
    print(f"wrote {path}")


def test_migrate(benchmark):
    from _harness import run_once

    results = run_once(benchmark, lambda: compute(QUICK))
    report(results)
    des = results["des_scale_event"]
    # The tentpole's acceptance gate: the scale event holds the SLO and
    # loses nothing, and the cluster actually scaled out and back.
    assert des["within_slo"]
    assert des["lost_waiters"] == 0
    assert des["joined"] >= 2 and des["final_nodes"] == 2
    # The live cutover freeze is a pause, not an outage.
    assert results["live_migrate_seconds"]["freeze_s"]["max_s"] < 1.0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="short run for CI (one live trial)")
    args = parser.parse_args(argv)
    results = compute(QUICK if args.quick else FULL)
    report(results)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
