"""Fig. 18 — Strong scalability of analyses on virtualized FLASH data.

Paper: Sedov blast, Δd = 1, Δr = 20, τsim = 14 s, αsim = 7 s, m = 200
(the first second of the blast), smax ∈ {2, 4, 8, 16}.  Expected shape:
scaling keeps improving through smax = 16 (up to ~3x in the paper), and —
unlike COSMO — forward and backward behave the same thanks to the high
restart frequency.
"""

from _harness import emit, run_once

from repro.des import scaling_experiment
from repro.simulators import FLASH_EVAL_CONFIG, FLASH_EVAL_PERF


def compute():
    return scaling_experiment(
        FLASH_EVAL_CONFIG,
        FLASH_EVAL_PERF,
        m=200,
        smax_values=(2, 4, 8, 16),
        tau_cli=0.1,
    )


def test_fig18_flash_scaling(benchmark):
    points = run_once(benchmark, compute)
    emit(
        "fig18_flash_scaling",
        "Fig. 18: FLASH analysis completion time vs smax "
        f"(m=200, T_single={points[0].full_forward_time:.0f}s)",
        ["smax", "direction", "time (s)", "speedup", "restarts"],
        [
            [p.smax, p.direction, p.running_time, p.speedup, p.restarts]
            for p in points
        ],
    )
    fwd = {p.smax: p for p in points if p.direction == "forward"}
    bwd = {p.smax: p for p in points if p.direction == "backward"}
    times = [fwd[s].running_time for s in (2, 4, 8, 16)]
    assert times == sorted(times, reverse=True)  # keeps improving
    assert fwd[16].speedup > 3.0                 # at least the paper's 3x
    for s in (2, 4, 8, 16):                      # directions comparable
        assert 0.7 < bwd[s].running_time / fwd[s].running_time < 1.4
