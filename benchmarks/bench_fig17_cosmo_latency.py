"""Fig. 17 — Prefetching COSMO simulations under different restart
latencies and analysis lengths.

Paper: synthetic simulator with the COSMO production rate (τsim = 3 s),
αsim swept to 600 s (modelling job-queueing time), m ∈ {72, 288, 1152},
smax = 8.  Expected shape: running time grows with αsim; for short
analyses it converges to the prefetching warm-up T_pre (bounded by ~2x
T_single); longer analyses amortize the warm-up and approach T_lower.
"""

from _harness import emit, run_once

from repro.des import latency_experiment
from repro.simulators import COSMO_EVAL_CONFIG, COSMO_EVAL_PERF


def compute():
    return latency_experiment(
        COSMO_EVAL_CONFIG,
        COSMO_EVAL_PERF,
        alpha_values=(0.0, 100.0, 200.0, 300.0, 450.0, 600.0),
        m_values=(72, 288, 1152),
        smax=8,
        tau_cli=0.1,
    )


def test_fig17_cosmo_latency(benchmark):
    points = run_once(benchmark, compute)
    emit(
        "fig17_cosmo_latency",
        "Fig. 17: COSMO analysis time vs restart latency (smax=8)",
        ["alpha (s)", "m", "SimFS (s)", "T_single", "T_lower", "T_pre"],
        [
            [p.alpha_sim, p.m, p.running_time, p.t_single, p.t_lower, p.t_pre]
            for p in points
        ],
    )
    for m in (72, 288, 1152):
        series = sorted((p for p in points if p.m == m), key=lambda p: p.alpha_sim)
        times = [p.running_time for p in series]
        # Rising trend overall; local dips are legitimate — the paper
        # notes that a higher latency can *reduce* running time because
        # the planner picks a longer re-simulation length n (Fig. 19
        # discussion), which shows up for the longest analysis here too.
        assert times[-1] > times[0]
        for p in series:
            assert p.running_time >= p.t_lower - 1e-6
            assert p.running_time <= 2.0 * p.t_single + p.m * 3.0 / 8
    # The longest analysis beats T_single across the whole sweep.
    assert all(
        p.running_time < p.t_single for p in points if p.m == 1152
    )
