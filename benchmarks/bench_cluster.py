"""Cluster-tier benchmark: per-node capacity, forwarding overhead, and
node-count scaling.

Three series, persisted as ``BENCH_cluster.json`` at the repo root (the
perf-trajectory artifact the CI ``bench-smoke`` job uploads alongside
``BENCH_wire.json``):

``per_node_capacity``
    Live measurement: pipelined ``open`` throughput of one DV daemon
    (binary codec + selector loop) — the service rate everything else is
    calibrated against.

``forwarding``
    Live measurement on a real two-node cluster: sequential open round
    trips against the owner directly vs through the gateway (ingress !=
    owner), i.e. the price of the extra ``fwd``/``fwd_reply`` hop.

``aggregate_msgs_per_sec``
    DES capacity model for 1/2/4 nodes — each node is a FIFO server with
    the *measured* per-node service rate; closed-loop clients keep a
    fixed window of opens in flight against contexts pinned to their
    owners (the cluster-aware client's one-hop steady state), and the
    gateway variant charges every op at both ingress and owner.  Virtual
    time makes the scaling number independent of how many cores the
    benchmark host happens to have — which is the whole point of the
    cluster DES model: a laptop (or a 1-core CI box) can project what N
    daemons on N machines deliver.  The model's honesty anchor is the
    live single-node measurement it is calibrated with.

Run directly (``python benchmarks/bench_cluster.py [--smoke]``) or under
pytest (``pytest benchmarks/bench_cluster.py``).
"""

from __future__ import annotations

import argparse
import collections
import os
import statistics
import sys
import tempfile
import threading
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from _harness import emit, emit_json, free_port  # noqa: E402

from repro.client.dvlib import TcpConnection  # noqa: E402
from repro.cluster import ClusterNode  # noqa: E402
from repro.core.context import ContextConfig, SimulationContext  # noqa: E402
from repro.core.perfmodel import PerformanceModel  # noqa: E402
from repro.des.engine import DESEngine  # noqa: E402
from repro.dv.protocol import (  # noqa: E402
    CODEC_BINARY,
    CODEC_LEGACY,
    PROTOCOL_VERSION,
    MessageReader,
    encode_open_request,
    send_message,
)
from repro.dv.server import DVServer  # noqa: E402
from repro.simulators import SyntheticDriver  # noqa: E402

FULL = {"clients": 4, "window": 64, "seconds": 2.0, "latency_ops": 800,
        "model_ops": 200_000}
SMOKE = {"clients": 4, "window": 32, "seconds": 0.5, "latency_ops": 200,
         "model_ops": 40_000}

NODE_COUNTS = (1, 2, 4)


# --------------------------------------------------------------------- #
# Shared context plumbing
# --------------------------------------------------------------------- #
def build_context(workdir: str, name: str) -> tuple[SimulationContext, str, str]:
    """A warm synthetic context (every output resident)."""
    config = ContextConfig(name=name, delta_d=2, delta_r=8, num_timesteps=64)
    driver = SyntheticDriver(config.geometry, prefix=name, cells=64)
    context = SimulationContext(
        config=config, driver=driver,
        perf=PerformanceModel(tau_sim=0.001, alpha_sim=0.0),
    )
    out = os.path.join(workdir, f"{name}-out")
    rst = os.path.join(workdir, f"{name}-rst")
    os.makedirs(out, exist_ok=True)
    os.makedirs(rst, exist_ok=True)
    driver.execute(driver.make_job(name, 0, 31, write_restarts=True), out, rst)
    return context, out, rst


class RawClient:
    """Protocol-level client (no DVLib reply matching, no listener
    thread): its own hello/negotiation and direct frame decode, so the
    numbers measure the wire path, not the client library."""

    def __init__(self, host: str, port: int, context: str, client_id: str) -> None:
        import socket as socketlib

        self.sock = socketlib.create_connection((host, port), timeout=10.0)
        self.sock.settimeout(None)
        self.sock.setsockopt(socketlib.IPPROTO_TCP, socketlib.TCP_NODELAY, 1)
        hello = {"op": "hello", "req": 0, "client_id": client_id,
                 "context": context, "vers": PROTOCOL_VERSION,
                 "codec": CODEC_BINARY}
        send_message(self.sock, hello)
        self.reader = MessageReader(self.sock)
        reply = self.reader.read_message()
        assert reply is not None and not reply.get("error"), reply
        self.codec = reply.get("codec", CODEC_LEGACY)
        if self.codec != CODEC_LEGACY:
            self.reader.set_codec(self.codec)

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


def _pipelined_opens(client: RawClient, context: str, filename: str,
                     window: int, stop_at: list[float]) -> int:
    """Drive pipelined packed open requests; count completed replies."""
    count = 0
    req = 0
    in_flight = 0

    def read_reply() -> bool:
        message = client.reader.read_message()
        if message is None:
            raise RuntimeError("connection closed mid-benchmark")
        return message.get("op") == "reply"

    while time.perf_counter() < stop_at[0]:
        while in_flight < window:
            req += 1
            client.sock.sendall(
                encode_open_request(req, context, filename, client.codec)
            )
            in_flight += 1
        if read_reply():
            in_flight -= 1
            count += 1
    while in_flight > 0:
        if read_reply():
            in_flight -= 1
            count += 1
    return count


def measure_per_node_capacity(sizing: dict) -> float:
    """Aggregate pipelined-open msgs/s of one daemon (live sockets)."""
    with tempfile.TemporaryDirectory(prefix="bench-cluster-cap-") as workdir:
        context, out, rst = build_context(workdir, "cap")
        server = DVServer()
        server.add_context(context, out, rst)
        server.start()
        try:
            host, port = server.address
            filename = context.filename_of(1)
            counts = [0] * sizing["clients"]
            errors: list[Exception] = []
            stop_at = [0.0]
            gate = threading.Event()

            def worker(slot: int) -> None:
                try:
                    client = RawClient(host, port, "cap", f"cap-{slot}")
                    try:
                        gate.wait()
                        counts[slot] = _pipelined_opens(
                            client, "cap", filename, sizing["window"], stop_at
                        )
                    finally:
                        client.close()
                except Exception as exc:
                    errors.append(exc)

            threads = [
                threading.Thread(target=worker, args=(slot,))
                for slot in range(sizing["clients"])
            ]
            for thread in threads:
                thread.start()
            time.sleep(0.2)
            stop_at[0] = time.perf_counter() + sizing["seconds"]
            begin = time.perf_counter()
            gate.set()
            for thread in threads:
                thread.join(timeout=60.0)
            elapsed = time.perf_counter() - begin
            if errors:
                raise errors[0]
            return sum(counts) / elapsed
        finally:
            server.stop(drain_timeout=0)


# --------------------------------------------------------------------- #
# Live forwarding overhead (two real nodes)
# --------------------------------------------------------------------- #
def measure_forwarding(sizing: dict) -> dict:
    """Sequential open RTT: owner-direct vs one gateway hop."""
    with tempfile.TemporaryDirectory(prefix="bench-cluster-fwd-") as workdir:
        context, out, rst = build_context(workdir, "fwd")
        ports = {"na": free_port(), "nb": free_port()}
        nodes = {
            nid: ClusterNode(
                nid, port=ports[nid],
                peers=[f"{o}@127.0.0.1:{ports[o]}" for o in ports if o != nid],
                vnodes=32, heartbeat_interval=0.5,
            )
            for nid in ports
        }
        try:
            for node in nodes.values():
                node.add_context(context, out, rst)
            for node in nodes.values():
                node.start()
            owner = nodes["na"].owner_of("fwd")
            gateway = "na" if owner == "nb" else "nb"
            filename = context.filename_of(1)

            def rtt_p50(node_id: str) -> float:
                host, port = nodes[node_id].address
                conn = TcpConnection(host, port, {}, {},
                                     client_id=f"fwd-{node_id}")
                try:
                    conn.attach("fwd")
                    samples = []
                    for _ in range(sizing["latency_ops"]):
                        begin = time.perf_counter_ns()
                        conn.open("fwd", filename)
                        samples.append(time.perf_counter_ns() - begin)
                    return statistics.median(samples) / 1e3
                finally:
                    conn.close()

            direct_us = rtt_p50(owner)
            gateway_us = rtt_p50(gateway)
            return {
                "direct_p50_us": round(direct_us, 1),
                "gateway_p50_us": round(gateway_us, 1),
                "hop_overhead_x": round(gateway_us / direct_us, 2),
            }
        finally:
            for node in nodes.values():
                try:
                    node.stop(drain_timeout=0)
                except Exception:
                    pass


# --------------------------------------------------------------------- #
# DES capacity model: node-count scaling in virtual time
# --------------------------------------------------------------------- #
class _ModelNode:
    """A DV daemon as a FIFO server with deterministic service time."""

    def __init__(self, engine: DESEngine, service_time: float) -> None:
        self.engine = engine
        self.service_time = service_time
        self.queue: collections.deque = collections.deque()
        self.busy = False
        self.completed = 0

    def submit(self, done) -> None:
        self.queue.append(done)
        self._kick()

    def _kick(self) -> None:
        if self.busy or not self.queue:
            return
        self.busy = True
        done = self.queue.popleft()

        def finish() -> None:
            self.busy = False
            self.completed += 1
            done()
            self._kick()

        self.engine.schedule(self.service_time, finish)


def model_aggregate(num_nodes: int, per_node_rate: float, sizing: dict,
                    gateway: bool) -> float:
    """Closed-loop aggregate msgs/s for a cluster of ``num_nodes``.

    Each node hosts independent contexts; every node has one client with
    a fixed in-flight window on its own contexts.  ``gateway=False`` is
    the cluster-aware one-hop path (op serviced at the owner only);
    ``gateway=True`` charges each op at the ingress *and* the owner —
    ring-unaware clients whose ingress is uniformly random, so a
    fraction (N-1)/N of ops pays the double service.
    """
    engine = DESEngine()
    service_time = 1.0 / per_node_rate
    nodes = [_ModelNode(engine, service_time) for _ in range(num_nodes)]
    total_ops = sizing["model_ops"]
    issued = [0]

    def launch(owner_idx: int, ingress_idx: int) -> None:
        if issued[0] >= total_ops:
            return
        issued[0] += 1

        def resubmit() -> None:
            launch(owner_idx, ingress_idx)

        if gateway and ingress_idx != owner_idx:
            # Two-stage: the ingress decodes/forwards, the owner executes.
            nodes[ingress_idx].submit(
                lambda: nodes[owner_idx].submit(resubmit)
            )
        else:
            nodes[owner_idx].submit(resubmit)

    window = sizing["window"]
    for owner_idx in range(num_nodes):
        for slot in range(window):
            # Ring-unaware ingress: spread deterministically over nodes.
            ingress_idx = (owner_idx + slot) % num_nodes if gateway else owner_idx
            launch(owner_idx, ingress_idx)
    makespan = engine.run()
    # Client-visible completions (a forwarded op is serviced twice but
    # completes once).
    return issued[0] / makespan if makespan > 0 else 0.0


def compute(sizing: dict) -> dict:
    per_node = measure_per_node_capacity(sizing)
    forwarding = measure_forwarding(sizing)
    direct = {
        str(n): round(model_aggregate(n, per_node, sizing, gateway=False), 1)
        for n in NODE_COUNTS
    }
    gateway = {
        str(n): round(model_aggregate(n, per_node, sizing, gateway=True), 1)
        for n in NODE_COUNTS
    }
    return {
        "per_node_capacity_msgs_per_sec": round(per_node, 1),
        "forwarding": forwarding,
        "aggregate_msgs_per_sec": {
            "model": "des-capacity-model calibrated with the live "
                     "per-node measurement (virtual time: host core count "
                     "does not cap the projection)",
            "direct": direct,
            "gateway": gateway,
        },
        "scaling_4_vs_1_direct": round(direct["4"] / direct["1"], 2),
        "scaling_4_vs_1_gateway": round(gateway["4"] / gateway["1"], 2),
        "sizing": sizing,
    }


def report(results: dict) -> None:
    aggregate = results["aggregate_msgs_per_sec"]
    emit(
        "cluster_scaling",
        "Aggregate open throughput by node count (DES capacity model)",
        ["nodes", "direct msgs/s", "gateway msgs/s"],
        [
            [n, aggregate["direct"][str(n)], aggregate["gateway"][str(n)]]
            for n in NODE_COUNTS
        ] + [
            ["4v1", results["scaling_4_vs_1_direct"],
             results["scaling_4_vs_1_gateway"]],
        ],
    )
    emit(
        "cluster_forwarding",
        "Gateway hop overhead (live two-node cluster, sequential opens)",
        ["path", "p50 us"],
        [
            ["direct", results["forwarding"]["direct_p50_us"]],
            ["gateway", results["forwarding"]["gateway_p50_us"]],
            ["overhead x", results["forwarding"]["hop_overhead_x"]],
        ],
    )
    path = emit_json("cluster", results)
    print(f"wrote {path}")


def test_cluster_scaling(benchmark):
    from _harness import run_once

    results = run_once(benchmark, lambda: compute(SMOKE))
    report(results)
    assert results["per_node_capacity_msgs_per_sec"] > 0
    # The acceptance floor: 4 independent nodes must deliver >= 1.7x one
    # node.  The direct model lands near 4x; even the gateway path (every
    # op decoded twice for 3/4 of the traffic) clears the floor.
    assert results["scaling_4_vs_1_direct"] >= 1.7
    assert results["scaling_4_vs_1_gateway"] >= 1.7
    assert results["forwarding"]["hop_overhead_x"] >= 1.0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="short run for CI (fewer ops, less time)")
    args = parser.parse_args(argv)
    results = compute(SMOKE if args.smoke else FULL)
    report(results)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
