"""HA-tier benchmark: client-observed open latency across an owner kill,
replication factor 1 vs 2 vs 3.

Two series, persisted as ``BENCH_ha.json`` at the repo root (part of the
perf-trajectory artifact the CI ``bench-smoke`` job uploads):

``live_recovery_seconds``
    Live measurement on a real three-node cluster: a *gateway* client
    (plain TcpConnection through a non-owner ingress — it cannot detect
    the kill itself) blocks on an open, the context's owner is killed,
    and we time from the kill to the client's ready notification.  At
    factor 1 recovery is cold (the ingress replays the waiter against
    the new owner, which re-simulates from scratch); at factor >= 2 the
    first ring successor promotes its replicated waiter table and the
    client never retries.  In a three-node LAN cluster both paths learn
    of the death by the forwarding link dropping, so the medians sit
    close together — the recovery-time series here is the honesty
    anchor showing HA costs nothing; the *detection* gap HA removes is
    the regime the DES series below projects (gossip-timeout detection,
    the multi-rack deployment).  Few trials (wall time is dominated by
    the deliberate simulation delay), so the stat is median and max.

``des_p99_wait_seconds``
    The p99 over many waiters comes from the DES mirror: 64 single-open
    clients all block against a four-node :class:`VirtualCluster` before
    the owner of their context dies mid-warmup.  Virtual time makes the
    tail deterministic and free of host noise; the honesty anchor is the
    live series next to it.  p99(factor>=2) must undercut p99(factor=1)
    by the detection gap (detect_delay - promote_delay).

Run directly (``python benchmarks/bench_ha.py [--quick]``) or under
pytest (``pytest benchmarks/bench_ha.py``).
"""

from __future__ import annotations

import argparse
import os
import statistics
import sys
import tempfile
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from _harness import emit, emit_json, free_port  # noqa: E402

from repro.client.dvlib import TcpConnection  # noqa: E402
from repro.cluster import ClusterNode  # noqa: E402
from repro.core.context import ContextConfig, SimulationContext  # noqa: E402
from repro.core.perfmodel import PerformanceModel  # noqa: E402
from repro.des.components import VirtualCluster  # noqa: E402
from repro.simulators import SyntheticDriver  # noqa: E402

NODE_IDS = ("n1", "n2", "n3")
FACTORS = (1, 2, 3)

FULL = {"trials": 3, "alpha_delay": 1.2, "des_clients": 64}
QUICK = {"trials": 1, "alpha_delay": 0.8, "des_clients": 64}


# --------------------------------------------------------------------- #
# Live: kill-the-owner recovery latency
# --------------------------------------------------------------------- #
def build_context(workdir: str, name: str) -> tuple[SimulationContext, str, str]:
    """A synthetic context with restart files but no outputs (every open
    is a miss that launches a re-simulation)."""
    config = ContextConfig(name=name, delta_d=2, delta_r=8, num_timesteps=32)
    driver = SyntheticDriver(config.geometry, prefix=name, cells=16)
    context = SimulationContext(
        config=config, driver=driver,
        perf=PerformanceModel(tau_sim=0.001, alpha_sim=0.0),
    )
    out = os.path.join(workdir, f"{name}-out")
    rst = os.path.join(workdir, f"{name}-rst")
    os.makedirs(out, exist_ok=True)
    os.makedirs(rst, exist_ok=True)
    produced = driver.execute(
        driver.make_job(name, 0, 4, write_restarts=True), out, rst
    )
    for fname in produced:
        os.unlink(os.path.join(out, fname))
    return context, out, rst


def live_trial(factor: int, alpha_delay: float) -> float:
    """Seconds from owner kill to the blocked client's ready."""
    with tempfile.TemporaryDirectory(prefix="bench-ha-") as workdir:
        context, out, rst = build_context(workdir, "ha")
        ports = {nid: free_port() for nid in NODE_IDS}
        specs = [f"{nid}@127.0.0.1:{ports[nid]}" for nid in NODE_IDS]
        nodes = {
            nid: ClusterNode(
                nid, port=ports[nid],
                peers=[s for s in specs if not s.startswith(f"{nid}@")],
                vnodes=32, heartbeat_interval=0.15, suspect_after=2,
                replication_factor=factor, repl_interval=0.05,
            )
            for nid in NODE_IDS
        }
        conn = None
        try:
            for node in nodes.values():
                node.add_context(context, out, rst, alpha_delay=alpha_delay)
            for node in nodes.values():
                node.start()
            with nodes["n1"]._lock:
                chain = nodes["n1"].ring.successors("ha", 3)
            owner = chain[0]
            # Ingress = the last node of the preference chain: never the
            # owner, never the first successor — and at factor 3 it is
            # itself a replica, the guaranteed survivor of the kill.
            host, port = nodes[chain[2]].address
            conn = TcpConnection(
                host, port, {"ha": out}, {"ha": rst},
                client_id="bench-ha-client",
            )
            conn.attach("ha")
            filename = context.filename_of(3)
            info = conn.open("ha", filename)
            assert not info.available, "context unexpectedly warm"
            if factor > 1:
                # The kill is only a fair HA test once the waiter has
                # reached the replica (one pump tick).
                replica = nodes[chain[1]]
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline:
                    entry = replica.repl.store.describe().get("ha")
                    if entry and entry["waiters"] >= 1:
                        break
                    time.sleep(0.02)
            else:
                time.sleep(0.2)  # same settling time, no replica to await
            begin = time.perf_counter()
            nodes[owner].stop(drain_timeout=0)
            assert conn.ready_table.wait("ha", filename, timeout=60.0), \
                "client never unblocked after the owner kill"
            return time.perf_counter() - begin
        finally:
            if conn is not None:
                conn.close()
            for node in nodes.values():
                try:
                    node.stop(drain_timeout=0)
                except Exception:
                    pass


def measure_live(sizing: dict) -> dict:
    series = {}
    for factor in FACTORS:
        samples = [
            live_trial(factor, sizing["alpha_delay"])
            for _ in range(sizing["trials"])
        ]
        series[str(factor)] = {
            "median_s": round(statistics.median(samples), 3),
            "max_s": round(max(samples), 3),
            "trials": len(samples),
        }
    return series


# --------------------------------------------------------------------- #
# DES: p99 open wait over many killed-owner waiters
# --------------------------------------------------------------------- #
def des_p99(factor: int, clients: int) -> dict:
    """p50/p99 of per-client blocked-open wait, owner killed mid-warmup."""
    cluster = VirtualCluster(
        node_ids=("a", "b", "c", "d"), detect_delay=2.0,
        replication_factor=factor, promote_delay=0.1,
        repl_lag=0.05, heal_rate=10.0,
    )
    config = ContextConfig(name="des-ha", delta_d=2, delta_r=8,
                           num_timesteps=64)
    driver = SyntheticDriver(config.geometry, prefix="des-ha")
    context = SimulationContext(
        config=config, driver=driver,
        perf=PerformanceModel(tau_sim=0.2, alpha_sim=5.0),
    )
    cluster.add_context(context)
    # Every client is already blocked (and replicated: the failure lands
    # well past repl_lag after the last open) when the owner dies at
    # t=2.0, still inside the alpha_sim warmup — the wait each client
    # observes is warmup plus exactly the recovery path's delay.
    analyses = [
        cluster.add_analysis(
            context, keys=[idx % 8 + 1], tau_cli=1.0,
            client_id=f"p99-{idx}", start_at=0.02 * idx,
        )
        for idx in range(clients)
    ]
    cluster.schedule_failure(cluster.owner_of("des-ha"), at=2.0)
    cluster.run()
    waits = sorted(a.wait_time for a in analyses)
    rank = max(0, min(len(waits) - 1, round(0.99 * len(waits)) - 1))
    return {
        "p50_s": round(statistics.median(waits), 3),
        "p99_s": round(waits[rank], 3),
        "clients": clients,
        "promotions": cluster.promotions,
        "lost_waiters": cluster.lost_waiters,
    }


def compute(sizing: dict) -> dict:
    live = measure_live(sizing)
    des = {str(f): des_p99(f, sizing["des_clients"]) for f in FACTORS}
    return {
        "live_recovery_seconds": live,
        "des_p99_wait_seconds": des,
        "sizing": sizing,
    }


def report(results: dict) -> None:
    live = results["live_recovery_seconds"]
    des = results["des_p99_wait_seconds"]
    emit(
        "ha_failover",
        "Client-observed open latency across an owner kill, by factor",
        ["factor", "live median s", "live max s", "des p50 s", "des p99 s"],
        [
            [f, live[str(f)]["median_s"], live[str(f)]["max_s"],
             des[str(f)]["p50_s"], des[str(f)]["p99_s"]]
            for f in FACTORS
        ],
    )
    path = emit_json("ha", results)
    print(f"wrote {path}")


def test_ha_failover(benchmark):
    from _harness import run_once

    results = run_once(benchmark, lambda: compute(QUICK))
    report(results)
    des = results["des_p99_wait_seconds"]
    # The HA tier's reason to exist: replication must cut the DES p99
    # below the cold-path baseline (it skips the detection delay).
    assert des["2"]["p99_s"] < des["1"]["p99_s"]
    assert des["3"]["p99_s"] <= des["2"]["p99_s"]
    for factor in FACTORS:
        assert results["live_recovery_seconds"][str(factor)]["median_s"] > 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="short run for CI (one live trial per factor)")
    args = parser.parse_args(argv)
    results = compute(QUICK if args.quick else FULL)
    report(results)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
